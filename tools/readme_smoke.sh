#!/usr/bin/env bash
# README quickstart smoke: execute the quickstart verbatim.
#
# Extracts every ```sh fenced block from README.md and runs the
# commands exactly as written, so the quickstart cannot drift from the
# binaries: a renamed subcommand, a dropped flag, or a stale crate name
# in the README fails CI here. `cargo test` lines are skipped (the
# tier-1 suite has its own job); everything else runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cleanup() {
    rm -f scenario.json
    rm -rf /tmp/sg-journal-demo
    # The sweep commands overwrite the committed trajectory artifacts;
    # restore them so a local run leaves the tree clean.
    git checkout -- BENCH_sweep.json BENCH_sweep_fixed.json 2>/dev/null || true
}
trap cleanup EXIT

mapfile -t lines < <(awk '/^```sh$/{f=1;next} /^```$/{f=0} f' README.md)
test "${#lines[@]}" -gt 0 || { echo "no \`\`\`sh blocks found in README.md"; exit 1; }

ran=0
for cmd in "${lines[@]}"; do
    case "$cmd" in
    "" | \#*) continue ;;
    "cargo test"*)
        echo "~ $cmd (skipped: covered by the test job)"
        continue
        ;;
    esac
    echo "+ $cmd"
    eval "timeout 600 $cmd"
    ran=$((ran + 1))
done

# Let the backgrounded daemon (stopped via --shutdown above) exit.
wait

test "$ran" -ge 8 || { echo "README quickstart shrank to $ran commands — update this gate or the README"; exit 1; }
echo "readme smoke ok: $ran quickstart commands ran"
