//! # shifting-gears — facade crate
//!
//! Re-exports the full public API of the reproduction of Bar-Noy, Dolev,
//! Dwork & Strong, *"Shifting Gears: Changing Algorithms on the Fly to
//! Expedite Byzantine Agreement"* (PODC 1987 / Information & Computation
//! 97:205–233, 1992).
//!
//! See the member crates for detail:
//!
//! * [`sim`] — synchronous round engine, adversary interface, metrics;
//! * [`eigtree`] — information-gathering trees, `resolve`/`resolve'`,
//!   fault discovery and masking;
//! * [`adversary`] — Byzantine strategy library;
//! * [`core`] — the protocols (Exponential, Algorithms A/B/C, Hybrid, and
//!   baselines);
//! * [`analysis`] — the paper's closed-form bounds and the experiment
//!   harness used to regenerate every table and figure;
//! * [`serve`] — the long-lived sweep service (`sg serve`/`sg submit`,
//!   wire protocol `sg-serve/1`);
//! * [`journal`] — the content-addressed result journal (`sg-journal/1`)
//!   behind `--journal` incremental sweeps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sg_adversary as adversary;
pub use sg_analysis as analysis;
pub use sg_core as core;
pub use sg_eigtree as eigtree;
pub use sg_journal as journal;
pub use sg_serve as serve;
pub use sg_sim as sim;
