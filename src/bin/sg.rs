//! `sg` — command-line driver for the shifting-gears reproduction.
//!
//! ```text
//! sg run --alg hybrid --b 3 --n 16 --adversary two-faced [--t 5]
//!        [--value 1] [--seed 7] [--source-faulty] [--trace]
//! sg plan --alg algorithm-b --b 3 --t 5 [--n 21]
//! sg compose --n 16 --spec a:3x2,b:3x1,c:4 [--t 5] [--run] [--adversary <name>]
//! sg gauntlet --alg optimal-king --n 10 [--t 3] [--b 3]
//! sg stability --alg hybrid --n 16 [--b 3] [--seed 7]
//! sg sweep --alg phase-king --n 16 [--t 5] [--seeds 100] [--adversary random-liar]
//!          [--expect-fingerprint <hex>] [--journal <dir>]
//! sg record --alg optimal-king --n 7 --adversary equivocate [--seed 3] [--out scenario.json]
//! sg replay tests/corpus/*.json [--quiet]
//! sg serve [--port 7411 | --addr 127.0.0.1:7411 | --socket /path] [--workers N]
//!          [--max-jobs N] [--max-queued-runs N] [--conn-jobs N] [--write-queue N]
//!          [--send-buffer <bytes>] [--journal <dir>]
//! sg submit [--addr …] --alg optimal-king --n 16 [--t 5] [--seeds 100]
//!           [--deadline-ms <ms>] [--retry-attempts <k>]
//!           [--expect-fingerprint <hex>] [--journal <dir>] [--shutdown]
//! sg journal stat|compact <dir>
//! sg ping [--addr …] [--timeout-ms <ms>] [--attempts <k>]
//! sg hammer [--connections N] [--jobs-per-conn K] [--seeds S] [--chaos gentle|hostile]
//! sg bounds --n 31
//! sg list
//! ```
//!
//! Every subcommand accepts `--jobs N` to size the sweep engine's worker
//! pool (default: all hardware threads), `--no-early-stop` to run
//! every execution for its full static schedule (by default the engine
//! terminates a run once every correct processor is ready to decide —
//! the paper's expedite behaviour), `--no-instance-pool` to rebuild
//! protocol and adversary instances every run (the fingerprint
//! cross-check escape hatch CI drives), and `--no-batch` to disable the
//! lock-step batch executor — the sweep engine's 64-runs-per-instruction
//! fast path — in favour of the scalar run loop (another fingerprint
//! cross-check escape hatch). Note `--no-early-stop` does not
//! freeze *dynamic* specs (`dynamic-king`): their gear shifts are part
//! of the schedule itself, not an engine observation. `serve` runs the long-lived sweep
//! daemon (wire protocol `sg-serve/1`, see `sg_serve::wire`); `submit`
//! sends the same grid `sweep` runs locally and must produce a
//! bit-identical fingerprint — CI's serve-e2e job holds the two paths to
//! that contract. The sweep grids take `--f <k>` to cap the *actual*
//! fault count below `t` (the rounds-vs-f workloads) and speak the full
//! wire vocabulary of adversary families — including the link/schedule
//! families (`partition`, `omission`, `equivocate`, `adaptive`) and
//! `trace` (replaying a recorded `sg-trace/1`/`sg-scenario/1` file via
//! `--trace-file`). `record` captures one run as an `sg-scenario/1`
//! JSON artifact; `replay` re-executes such artifacts and fails on any
//! verdict drift — CI's scenario-corpus job runs it over
//! `tests/corpus/`.
//!
//! `--journal <dir>` plugs the content-addressed result journal
//! (`sg-journal/1`, see `sg_journal`) into all three execution paths:
//! `sweep` runs incrementally (cells already stored under the current
//! engine epoch are read back, only the delta is computed and
//! appended), `serve` streams cached cells instantly and schedules only
//! the delta, and `submit` writes streamed cells through to a local
//! journal. Warm or cold, the report is bit-identical — a journal can
//! only save work, never change answers — and `sg journal
//! stat|compact` inspects or rewrites the store.
//!
//! The daemon runs under admission control (`--max-jobs`,
//! `--max-queued-runs`, per-connection `--conn-jobs`, slow-reader
//! `--write-queue`) and drains on SIGTERM; `submit` maps the resulting
//! `rejected`/`draining`/`deadline-exceeded` answers to distinct exit
//! codes (3/4/5) with one structured stderr line each; `hammer` is the
//! load harness (`sg_serve::load`) as a subcommand — N connections,
//! mixed grids, optional `--chaos`, `sg-serve-load/1` JSON on stdout.

use std::collections::HashMap;
use std::process::exit;

use serde::json::Value as Json;
use serde::{FromJson, ToJson};
use shifting_gears::adversary::{
    standard_suite, Adaptive, AdversaryTrace, ChainRevealer, Crash, DoubleTalk, Equivocate,
    EquivocatingSource, FaultSelection, Omission, Partition, RandomLiar, Silent, StaggeredSplit,
    Stealth, TwoFaced,
};
use shifting_gears::analysis::{lock_in, scenario, Scenario};
use shifting_gears::core::schedule::{algorithm_a_rounds_exact, algorithm_b_rounds_exact};
use shifting_gears::core::{
    execute, render_plan, t_a, t_b, t_c, AlgorithmSpec, HybridSchedule, ShiftPlanBuilder,
};
use shifting_gears::sim::{Adversary, NoFaults, RunConfig, TraceEvent, Value};

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         sg run --alg <name> --n <n> [--t <t>] [--b <b>] [--adversary <name>]\n         \
         [--value <v>] [--seed <s>] [--source-faulty] [--trace]\n  \
         sg plan --alg <name> --t <t> [--b <b>] [--n <n>]\n  \
         sg compose --n <n> --spec a:3x2,b:3x1,c:4 [--t <t>] [--run] [--adversary <name>]\n  \
         sg gauntlet --alg <name> --n <n> [--t <t>] [--b <b>]\n  \
         sg stability --alg <name> --n <n> [--t <t>] [--b <b>] [--seed <s>]\n  \
         sg sweep --alg <name> --n <n> [--t <t>] [--b <b>] [--seeds <k>]\n           \
         [--adversary random-liar|chain-revealer|crash|silent|partition|\n            \
         omission|equivocate|adaptive|trace|none]\n           \
         [--f <k>] [--source-faulty] [--base-seed <s>]\n           \
         [--split <k>] [--from <r>] [--to <r>] [--period <k>] [--phase <k>]\n           \
         [--start <r>] [--schedule <r,r,..>] [--trace-file <path>]\n           \
         [--expect-fingerprint <hex>] [--journal <dir>]\n  \
         sg record --alg <name> --n <n> [--t <t>] [--b <b>] [--adversary <name>]\n           \
         [--value <v>] [--seed <s>] [--source-faulty] [--out <path>]\n  \
         sg replay <scenario.json>.. [--quiet]\n  \
         sg serve [--port <p> | --addr <host:port> | --socket <path>]\n           \
         [--workers <N>] [--quantum <runs>] [--max-jobs <N>]\n           \
         [--max-queued-runs <N>] [--conn-jobs <N>] [--write-queue <N>]\n           \
         [--send-buffer <bytes>] [--journal <dir>]\n  \
         sg submit [--addr <host:port> | --socket <path>] [--timeout <secs>]\n           \
         <sweep grid flags> [--deadline-ms <ms>] [--retry-attempts <k>]\n           \
         [--expect-fingerprint <hex>] [--journal <dir>] [--shutdown]\n           \
         (exit 3 = saturated, 4 = draining, 5 = deadline-exceeded)\n  \
         sg journal stat|compact <dir>\n  \
         sg ping [--addr <host:port> | --socket <path>]\n           \
         [--timeout-ms <ms>] [--attempts <k>]\n  \
         sg hammer [--connections <N>] [--jobs-per-conn <K>] [--seeds <S>]\n           \
         [--workers <N>] [--max-jobs <N>] [--deadline-ms <ms>]\n           \
         [--chaos gentle|hostile] [--seed <s>]\n  \
         sg bounds --n <n>\n  \
         sg list\n\
         global: --jobs <N> sizes the sweep worker pool; --no-early-stop runs\n        \
         full fixed-length schedules; --no-instance-pool rebuilds protocol and\n        \
         adversary instances every run; --no-batch disables the lock-step\n        \
         batch executor (64 runs per instruction) in favour of the scalar path;\n        \
         --no-batch-adversary keeps the batch executor but drives each fault\n        \
         lane through the scalar adversary bridge"
    );
    exit(2);
}

fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut toggles = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                toggles.push(name.to_string());
                i += 1;
            }
        } else {
            eprintln!("unexpected argument '{a}'");
            usage();
        }
    }
    (flags, toggles)
}

fn parse_usize(flags: &HashMap<String, String>, key: &str) -> Option<usize> {
    flags.get(key).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--{key} expects a number, got '{v}'");
            usage();
        })
    })
}

fn algorithm(name: &str, b: usize) -> AlgorithmSpec {
    match name {
        "plain-exponential" => AlgorithmSpec::PlainExponential,
        "exponential" => AlgorithmSpec::Exponential,
        "exponential-prime" => AlgorithmSpec::ExponentialPrime,
        "algorithm-a" | "a" => AlgorithmSpec::AlgorithmA { b },
        "algorithm-b" | "b" => AlgorithmSpec::AlgorithmB { b },
        "algorithm-c" | "c" => AlgorithmSpec::AlgorithmC,
        "hybrid" => AlgorithmSpec::Hybrid { b },
        "phase-king" => AlgorithmSpec::PhaseKing,
        "optimal-king" => AlgorithmSpec::OptimalKing,
        "king-shift" => AlgorithmSpec::KingShift { b },
        "dynamic-king" => AlgorithmSpec::DynamicKing { b },
        "phase-queen" => AlgorithmSpec::PhaseQueen,
        "dolev-strong" => AlgorithmSpec::DolevStrong,
        other => {
            eprintln!("unknown algorithm '{other}' (try `sg list`)");
            exit(2);
        }
    }
}

fn adversary(name: &str, source_faulty: bool, seed: u64) -> Box<dyn Adversary> {
    let sel = if source_faulty {
        FaultSelection::with_source()
    } else {
        FaultSelection::without_source()
    };
    match name {
        "none" => Box::new(NoFaults),
        "silent" => Box::new(Silent::new(sel)),
        "crash" => Box::new(Crash::new(sel, 2)),
        "random-liar" => Box::new(RandomLiar::new(sel, seed)),
        "two-faced" => Box::new(TwoFaced::new(sel)),
        "equivocating-source" => Box::new(EquivocatingSource::new(FaultSelection::with_source())),
        "stealth" => Box::new(Stealth::new(sel)),
        "chain-revealer" => Box::new(ChainRevealer::new(sel, 2, 2, seed)),
        "double-talk" => Box::new(DoubleTalk::new(sel)),
        // The wire-portable link/schedule families at their suite shapes;
        // `sweep` exposes the tuning knobs (--split, --period, ...).
        "partition" => Box::new(Partition::new(sel.limit(1), 1, 2, 3)),
        "omission" => Box::new(Omission::new(sel, 2, 0)),
        "equivocate" => Box::new(Equivocate::new(sel, 3, 1)),
        "adaptive" => Box::new(Adaptive::new(sel, vec![2, 4])),
        other => {
            eprintln!("unknown adversary '{other}' (try `sg list`)");
            exit(2);
        }
    }
}

fn cmd_list() {
    println!("algorithms:");
    for a in [
        "plain-exponential",
        "exponential",
        "exponential-prime",
        "algorithm-a (needs --b)",
        "algorithm-b (needs --b)",
        "algorithm-c",
        "hybrid (needs --b)",
        "phase-king",
        "optimal-king",
        "king-shift (needs --b)",
        "dynamic-king (needs --b)",
        "phase-queen",
        "dolev-strong",
    ] {
        println!("  {a}");
    }
    println!("adversaries:");
    for a in [
        "none",
        "silent",
        "crash",
        "random-liar",
        "two-faced",
        "equivocating-source",
        "stealth",
        "chain-revealer",
        "double-talk",
        "partition",
        "omission",
        "equivocate",
        "adaptive",
    ] {
        println!("  {a}");
    }
}

fn cmd_bounds(n: usize) {
    println!("resilience at n = {n}:");
    println!("  exponential / algorithm A / hybrid : t <= {}", t_a(n));
    println!("  algorithm B / phase king           : t <= {}", t_b(n));
    println!("  algorithm C                        : t <= {}", t_c(n));
    println!(
        "  dolev-strong (authenticated)       : t <= {}",
        n.saturating_sub(2)
    );
    let ta = t_a(n);
    if ta >= 3 {
        println!("\nround counts (t at each algorithm's maximum):");
        println!("  b   A(b)   B(b)   hybrid(b)   [exponential/C: t+1]");
        for b in 3..=ta {
            let a = algorithm_a_rounds_exact(ta, b);
            let bb = if b < t_b(n) && t_b(n) >= 2 {
                algorithm_b_rounds_exact(t_b(n), b).to_string()
            } else {
                "-".to_string()
            };
            let h = HybridSchedule::compute(n, b).total_rounds();
            println!("  {b:<3} {a:<6} {bb:<6} {h}");
        }
    }
}

fn cmd_plan(flags: &HashMap<String, String>) {
    let alg = flags
        .get("alg")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let b = parse_usize(flags, "b").unwrap_or(3);
    let t = parse_usize(flags, "t").unwrap_or_else(|| usage());
    let n = parse_usize(flags, "n").unwrap_or(3 * t + 1);
    let spec = algorithm(alg, b);
    match spec.plan(n, t) {
        Some(plan) => print!(
            "{}",
            render_plan(&format!("{} (n={n}, t={t})", spec.name()), &plan)
        ),
        None => println!(
            "{} is not plan-driven; it runs {} rounds",
            spec.name(),
            spec.rounds(n, t)
        ),
    }
}

fn cmd_run(flags: &HashMap<String, String>, toggles: &[String]) {
    let alg = flags
        .get("alg")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let n = parse_usize(flags, "n").unwrap_or_else(|| usage());
    let b = parse_usize(flags, "b").unwrap_or(3);
    let spec = algorithm(alg, b);
    let t = parse_usize(flags, "t").unwrap_or_else(|| spec.max_resilience(n));
    let seed = parse_usize(flags, "seed").unwrap_or(7) as u64;
    let value = parse_usize(flags, "value").unwrap_or(1) as u16;
    let source_faulty = toggles.iter().any(|t| t == "source-faulty");
    let trace = toggles.iter().any(|t| t == "trace");
    let adv_name = flags
        .get("adversary")
        .map(String::as_str)
        .unwrap_or("chain-revealer");

    let mut config = RunConfig::new(n, t).with_source_value(Value(value));
    if trace {
        config = config.with_trace();
    }
    let mut adv = adversary(adv_name, source_faulty, seed);
    let outcome = match execute(spec, &config, adv.as_mut()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cannot run: {e}");
            exit(1);
        }
    };

    println!("algorithm : {}", spec.name());
    println!("system    : n={n} t={t} source=P0 value={value}");
    println!(
        "adversary : {} corrupting {}",
        outcome.adversary, outcome.faulty
    );
    println!(
        "rounds    : {} of {} scheduled{}",
        outcome.rounds_used,
        outcome.scheduled_rounds,
        if outcome.early_stopped {
            " (early stop)"
        } else {
            ""
        }
    );
    println!(
        "messages  : total {} ({} bits), largest {} values",
        outcome.metrics.total_messages(),
        outcome.metrics.total_bits(),
        outcome.metrics.max_message_values()
    );
    println!("local ops : max {}", outcome.metrics.max_local_ops());
    println!("agreement : {}", outcome.agreement());
    println!("validity  : {:?}", outcome.validity());
    println!("decision  : {:?}", outcome.decision());
    if trace {
        println!("\ntrace (discoveries and shifts):");
        for e in outcome.trace.entries() {
            match &e.event {
                TraceEvent::Discovered {
                    suspect,
                    during_conversion,
                } => println!(
                    "  round {:>2}  {} discovered {suspect}{}",
                    e.round,
                    e.who,
                    if *during_conversion {
                        " (conversion)"
                    } else {
                        ""
                    }
                ),
                TraceEvent::Shift {
                    conversion,
                    preferred,
                } => {
                    println!(
                        "  round {:>2}  {} shifted via {conversion}, prefers {preferred}",
                        e.round, e.who
                    );
                }
                _ => {}
            }
        }
    }
    if !outcome.agreement() {
        exit(1);
    }
}

/// Parses a composition DSL like `a:3x2,b:3x1,c:4,king` into a builder.
///
/// Segments: `a:<b>x<blocks>`, `b:<b>x<blocks>` (the `x<blocks>` suffix
/// defaults to 1), `c:<rounds>`, `king`.
fn parse_composition(n: usize, t: usize, spec: &str) -> ShiftPlanBuilder {
    let mut builder = ShiftPlanBuilder::new(n, t);
    for part in spec.split(',') {
        let part = part.trim();
        if part == "king" {
            builder = builder.king_tail();
            continue;
        }
        let Some((kind, rest)) = part.split_once(':') else {
            eprintln!(
                "bad segment '{part}' (want a:<b>x<blocks>, b:<b>x<blocks>, c:<rounds>, king)"
            );
            exit(2);
        };
        let parse = |s: &str| -> usize {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad number '{s}' in segment '{part}'");
                exit(2);
            })
        };
        let (b, blocks) = match rest.split_once('x') {
            Some((b, blocks)) => (parse(b), parse(blocks)),
            None => (parse(rest), 1),
        };
        builder = match kind {
            "a" => builder.a_blocks(b, blocks),
            "b" => builder.b_blocks(b, blocks),
            "c" => builder.c_tail(b),
            other => {
                eprintln!("unknown segment kind '{other}'");
                exit(2);
            }
        };
    }
    builder
}

fn cmd_compose(flags: &HashMap<String, String>, toggles: &[String]) {
    let n = parse_usize(flags, "n").unwrap_or_else(|| usage());
    let t = parse_usize(flags, "t").unwrap_or_else(|| t_a(n));
    let spec = flags
        .get("spec")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let builder = parse_composition(n, t, spec);
    let composition = match builder.build() {
        Ok(c) => c,
        Err(e) => {
            println!("REJECTED: {e}");
            exit(1);
        }
    };
    println!("composition : {}", composition.name());
    println!("system      : n={n} t={t}");
    println!("rounds      : {}", composition.rounds());
    println!("verdict     : safe (all §4.4 entry and terminal conditions hold)");
    if toggles.iter().any(|t| t == "run") {
        let seed = parse_usize(flags, "seed").unwrap_or(7) as u64;
        let adv_name = flags
            .get("adversary")
            .map(String::as_str)
            .unwrap_or("chain-revealer");
        let config = RunConfig::new(n, t).with_source_value(Value(1));
        let mut adv = adversary(adv_name, false, seed);
        let outcome = composition.execute(&config, adv.as_mut());
        println!(
            "adversary   : {} corrupting {}",
            outcome.adversary, outcome.faulty
        );
        println!("agreement   : {}", outcome.agreement());
        println!("validity    : {:?}", outcome.validity());
        println!("decision    : {:?}", outcome.decision());
        if !outcome.agreement() {
            exit(1);
        }
    }
}

fn cmd_gauntlet(flags: &HashMap<String, String>) {
    let alg = flags
        .get("alg")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let n = parse_usize(flags, "n").unwrap_or_else(|| usage());
    let b = parse_usize(flags, "b").unwrap_or(3);
    let spec = algorithm(alg, b);
    let t = parse_usize(flags, "t").unwrap_or_else(|| spec.max_resilience(n));
    let seed = parse_usize(flags, "seed").unwrap_or(7) as u64;
    println!(
        "gauntlet: {} at n={n}, t={t}, both source values, full adversary suite",
        spec.name()
    );
    let mut failures = 0usize;
    for mut adv in standard_suite(seed) {
        for value in [Value(0), Value(1)] {
            let config = RunConfig::new(n, t).with_source_value(value);
            match execute(spec, &config, adv.as_mut()) {
                Ok(outcome) => {
                    let ok = outcome.agreement() && outcome.validity().unwrap_or(true);
                    if !ok {
                        failures += 1;
                    }
                    println!(
                        "  {:<40} value={} rounds={:<3} {}",
                        outcome.adversary,
                        value,
                        outcome.rounds_used,
                        if ok { "ok" } else { "VIOLATION" }
                    );
                }
                Err(e) => {
                    eprintln!("cannot run: {e}");
                    exit(1);
                }
            }
        }
    }
    if failures > 0 {
        println!("{failures} violations");
        exit(1);
    }
    println!("all executions reached agreement with validity");
}

fn cmd_stability(flags: &HashMap<String, String>) {
    let alg = flags
        .get("alg")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let n = parse_usize(flags, "n").unwrap_or_else(|| usage());
    let b = parse_usize(flags, "b").unwrap_or(3);
    let spec = algorithm(alg, b);
    let t = parse_usize(flags, "t").unwrap_or_else(|| spec.max_resilience(n));
    let seed = parse_usize(flags, "seed").unwrap_or(7) as u64;
    println!(
        "decision lock-in for {} at n={n}, t={t} (staggered split-brain adversary):",
        spec.name()
    );
    println!("  f   rounds  lock-in  head-room");
    for f in 0..=t {
        let config = RunConfig::new(n, t)
            .with_source_value(Value(1))
            .with_trace();
        let _ = seed;
        let mut none = NoFaults;
        let mut split;
        let adv: &mut dyn Adversary = if f == 0 {
            &mut none
        } else {
            split = StaggeredSplit::new(FaultSelection::with_source().limit(f), 2, b);
            &mut split
        };
        let outcome = match execute(spec, &config, adv) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("cannot run: {e}");
                exit(1);
            }
        };
        let report = lock_in(&outcome);
        println!(
            "  {:<3} {:<7} {:<8} {}",
            f,
            outcome.rounds_used,
            report.system_lock_in().unwrap_or(0),
            report.headroom().unwrap_or(0)
        );
    }
}

/// Builds the single-cell sweep grid described by the shared
/// `sweep`/`submit` flags (`--alg --n [--t] [--b] [--seeds]
/// [--adversary] [--base-seed] [--source-faulty]`).
fn sweep_plan_from_flags(
    flags: &HashMap<String, String>,
    toggles: &[String],
) -> shifting_gears::analysis::SweepPlan {
    use shifting_gears::analysis::{AdversaryFamily, SweepConfig, SweepPlan};

    let alg = flags
        .get("alg")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let n = parse_usize(flags, "n").unwrap_or_else(|| usage());
    let b = parse_usize(flags, "b").unwrap_or(3);
    let spec = algorithm(alg, b);
    let t = parse_usize(flags, "t").unwrap_or_else(|| spec.max_resilience(n));
    let seeds = parse_usize(flags, "seeds").unwrap_or(100) as u64;
    if seeds == 0 {
        eprintln!("--seeds must be at least 1");
        exit(2);
    }
    let source_faulty = toggles.iter().any(|t| t == "source-faulty");
    let mut sel = if source_faulty {
        FaultSelection::with_source()
    } else {
        FaultSelection::without_source()
    };
    // The actual-fault-budget knob: corrupt only f <= t processors, the
    // regime where early stopping pays (rounds-vs-f sweeps).
    if let Some(f) = parse_usize(flags, "f") {
        sel = sel.limit(f);
    }
    let adv_name = flags
        .get("adversary")
        .map(String::as_str)
        .unwrap_or("random-liar");
    let family = match adv_name {
        "none" => AdversaryFamily::no_faults(),
        "random-liar" => AdversaryFamily::random_liar(sel),
        "chain-revealer" => AdversaryFamily::chain_revealer(sel, 2, 2),
        "crash" => AdversaryFamily::crash(sel, 2),
        "silent" => AdversaryFamily::silent(sel),
        "partition" => AdversaryFamily::partition(
            sel.limit(parse_usize(flags, "f").unwrap_or(1)),
            parse_usize(flags, "split").unwrap_or(1),
            parse_usize(flags, "from").unwrap_or(2),
            parse_usize(flags, "to").unwrap_or(3),
        ),
        "omission" => AdversaryFamily::omission(
            sel,
            parse_usize(flags, "period").unwrap_or(2),
            parse_usize(flags, "phase").unwrap_or(0),
        ),
        "equivocate" => AdversaryFamily::equivocate(
            sel,
            parse_usize(flags, "split").unwrap_or((n / 2).max(1)),
            parse_usize(flags, "start").unwrap_or(1),
        ),
        "adaptive" => AdversaryFamily::adaptive(sel, parse_schedule(flags)),
        "trace" => {
            let path = flags
                .get("trace-file")
                .map(String::as_str)
                .unwrap_or_else(|| {
                    eprintln!("--adversary trace needs --trace-file <path>");
                    exit(2);
                });
            let trace = load_trace(path);
            if trace.n != n || trace.t != t {
                eprintln!(
                    "trace in '{path}' was recorded at (n={}, t={}), grid is (n={n}, t={t})",
                    trace.n, trace.t
                );
                exit(2);
            }
            AdversaryFamily::replay(trace).unwrap_or_else(|e| {
                eprintln!("trace in '{path}' does not validate: {e}");
                exit(2);
            })
        }
        other => {
            eprintln!(
                "sweep supports adversaries none|random-liar|chain-revealer|crash|silent|\
                 partition|omission|equivocate|adaptive|trace, got '{other}'"
            );
            exit(2);
        }
    };
    let base_seed = parse_usize(flags, "base-seed").unwrap_or(0) as u64;
    SweepPlan::new(vec![SweepConfig::traced(spec, n, t)], vec![family], seeds)
        .with_base_seed(base_seed)
}

/// Parses `--schedule r,r,..` — one activation round per corrupted rank
/// for the adaptive family; defaults to the standard suite's `2,4`.
fn parse_schedule(flags: &HashMap<String, String>) -> Vec<usize> {
    let Some(raw) = flags.get("schedule") else {
        return vec![2, 4];
    };
    raw.split(',')
        .map(|part| {
            part.trim().parse().unwrap_or_else(|_| {
                eprintln!("--schedule expects comma-separated round numbers, got '{raw}'");
                exit(2);
            })
        })
        .collect()
}

/// Reads and parses a JSON file, exiting with a diagnostic on failure.
fn read_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read '{path}': {e}");
        exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("'{path}' is not valid JSON: {e}");
        exit(2);
    })
}

/// Extracts the adversary trace from an `sg-trace/1` or `sg-scenario/1`
/// JSON file (the scenario form carries a trace inside it).
fn load_trace(path: &str) -> AdversaryTrace {
    let json = read_json(path);
    let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
    let parsed = if schema == scenario::SCENARIO_SCHEMA {
        Scenario::from_json(&json).map(|s| s.trace)
    } else {
        AdversaryTrace::from_json(&json)
    };
    parsed.unwrap_or_else(|e| {
        eprintln!("cannot parse trace from '{path}': {e}");
        exit(2);
    })
}

/// Enforces `--expect-fingerprint`: on mismatch, reports and exits
/// non-zero so `&&` chains in CI cannot silently pass.
fn check_expected_fingerprint(flags: &HashMap<String, String>, actual: u64) {
    use shifting_gears::analysis::Fingerprint;

    let Some(expected) = flags.get("expect-fingerprint") else {
        return;
    };
    let Some(expected) = Fingerprint::parse_hex(expected) else {
        eprintln!("--expect-fingerprint expects a 16-digit hex fingerprint, got '{expected}'");
        exit(2);
    };
    match Fingerprint::cross_check(expected, actual) {
        Ok(line) => println!("{line}"),
        Err(report) => {
            eprintln!("{report}");
            exit(1);
        }
    }
}

/// Opens the result journal at `path`, exiting with the structured
/// error (locked by a live writer, unreadable directory, …) on failure.
fn open_journal(path: &str) -> shifting_gears::journal::Journal {
    match shifting_gears::journal::Journal::open(path) {
        Ok(journal) => {
            for warning in journal.warnings() {
                eprintln!("{warning}");
            }
            journal
        }
        Err(e) => {
            eprintln!("cannot open journal '{path}': {e}");
            exit(1);
        }
    }
}

fn cmd_sweep(flags: &HashMap<String, String>, toggles: &[String]) {
    let plan = sweep_plan_from_flags(flags, toggles);
    let started = std::time::Instant::now();
    let (report, cached) = match flags.get("journal") {
        None => (plan.run(), None),
        Some(path) => {
            let mut journal = open_journal(path);
            let warm = plan.run_with_journal(&mut journal, shifting_gears::analysis::sweep::jobs());
            for warning in &warm.warnings {
                eprintln!("{warning}");
            }
            (warm.report, Some((warm.hits, warm.computed)))
        }
    };
    let wall = started.elapsed();
    print!("{}", report.render());
    println!(
        "{} runs in {:.1} ms on {} worker(s) — {:.0} runs/sec",
        report.total_runs,
        wall.as_secs_f64() * 1e3,
        shifting_gears::analysis::sweep::jobs(),
        report.total_runs as f64 / wall.as_secs_f64().max(1e-9),
    );
    if let Some((hits, computed)) = cached {
        println!(
            "journal: {hits} cell(s) cached, {computed} computed (epoch {})",
            shifting_gears::analysis::engine_epoch()
        );
    }
    println!("report fingerprint: {}", report.fingerprint_hex());
    check_expected_fingerprint(flags, report.fingerprint());
}

/// `sg record`: one run of a named strategy under the recording wrapper,
/// written out as `sg-scenario/1` JSON (to `--out`, or stdout).
fn cmd_record(flags: &HashMap<String, String>, toggles: &[String]) {
    use shifting_gears::analysis::SweepConfig;

    let alg = flags
        .get("alg")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let n = parse_usize(flags, "n").unwrap_or_else(|| usage());
    let b = parse_usize(flags, "b").unwrap_or(3);
    let spec = algorithm(alg, b);
    let t = parse_usize(flags, "t").unwrap_or_else(|| spec.max_resilience(n));
    let seed = parse_usize(flags, "seed").unwrap_or(0) as u64;
    let source_faulty = toggles.iter().any(|t| t == "source-faulty");
    let name = flags
        .get("adversary")
        .map(String::as_str)
        .unwrap_or("random-liar");
    let adversary = adversary(name, source_faulty, seed);
    let mut config = SweepConfig::traced(spec, n, t);
    if let Some(v) = parse_usize(flags, "value") {
        let Ok(v) = u16::try_from(v) else {
            eprintln!("--value must fit in 16 bits, got {v}");
            exit(2);
        };
        config.source_value = Value(v);
    }
    let (recorded, _) = match scenario::record(&config, adversary) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("cannot record: {e}");
            exit(1);
        }
    };
    let text = recorded.to_json().to_string();
    let v = &recorded.verdict;
    match flags.get("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text.as_bytes()) {
                eprintln!("cannot write '{path}': {e}");
                exit(1);
            }
            println!(
                "recorded {} on {alg} (n={n}, t={t}): agreement={}, rounds={}{} -> {path}",
                recorded.trace.family,
                v.agreement,
                v.rounds_used,
                if v.early_stopped { " (early)" } else { "" },
            );
        }
        None => println!("{text}"),
    }
}

/// `sg replay`: re-execute recorded scenarios and check each verdict
/// reproduces bit-exactly. Exits non-zero on any parse failure, replay
/// desync, or verdict drift — the CI corpus gate.
fn cmd_replay(args: &[String]) {
    let mut files = Vec::new();
    let mut quiet = false;
    for a in args {
        match a.as_str() {
            "--quiet" => quiet = true,
            other if other.starts_with("--") => {
                eprintln!("unknown replay flag '{other}'");
                usage();
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("replay needs at least one scenario file");
        usage();
    }
    let mut failures = 0usize;
    for path in &files {
        let json = read_json(path);
        let outcome = match Scenario::from_json(&json) {
            Err(e) => Err(format!("parse error: {e}")),
            Ok(recorded) => match scenario::replay(&recorded) {
                Err(e) => Err(format!("replay error: {e}")),
                Ok(fresh) if fresh == recorded.verdict => Ok((recorded, fresh)),
                Ok(fresh) => Err(format!(
                    "verdict drift: recorded {:?}, replayed {:?}",
                    recorded.verdict, fresh
                )),
            },
        };
        match outcome {
            Ok((recorded, fresh)) => {
                if !quiet {
                    println!(
                        "ok   {path}: {} (agreement={}, rounds={}{})",
                        recorded.trace.family,
                        fresh.agreement,
                        fresh.rounds_used,
                        if fresh.early_stopped {
                            ", early-stopped"
                        } else {
                            ""
                        },
                    );
                }
            }
            Err(msg) => {
                failures += 1;
                eprintln!("FAIL {path}: {msg}");
            }
        }
    }
    println!("{} scenario(s) replayed, {failures} failed", files.len());
    if failures > 0 {
        exit(1);
    }
}

/// The default daemon address shared by `serve`, `submit`, and `ping`.
const DEFAULT_ADDR: &str = "127.0.0.1:7411";

fn serve_addr(flags: &HashMap<String, String>) -> String {
    if let Some(socket) = flags.get("socket") {
        return format!("unix:{socket}");
    }
    if let Some(port) = parse_usize(flags, "port") {
        return format!("127.0.0.1:{port}");
    }
    flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| DEFAULT_ADDR.to_string())
}

fn connect_client(flags: &HashMap<String, String>) -> shifting_gears::serve::Client {
    use shifting_gears::serve::Client;

    let addr = serve_addr(flags);
    let timeout = parse_usize(flags, "timeout").unwrap_or(10) as u64;
    match Client::connect(&addr, std::time::Duration::from_secs(timeout)) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot reach daemon at {addr}: {e}");
            exit(1);
        }
    }
}

/// Arranges for SIGTERM to drain the daemon (finish running jobs,
/// reject new submits, then `bye`) instead of killing it mid-job. The
/// handler only flips an atomic; a watcher thread does the real work —
/// the only async-signal-safe shape.
#[cfg(unix)]
fn install_sigterm_drain(drainer: shifting_gears::serve::Drainer) {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
    }
    let _ = std::thread::Builder::new()
        .name("sg-serve-sigterm".to_string())
        .spawn(move || loop {
            if TERM.load(Ordering::SeqCst) {
                // Log before initiating: an idle daemon stops inside
                // `drain()`, and main may exit before this thread gets
                // another word in.
                eprintln!("SIGTERM: draining");
                let active = drainer.drain();
                eprintln!("SIGTERM: drain begun ({active} active job(s))");
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
}

fn cmd_serve(flags: &HashMap<String, String>) {
    use shifting_gears::serve::{serve, Bind, ServeOptions};

    let bind = Bind::parse(&serve_addr(flags));
    let defaults = ServeOptions::default();
    let options = ServeOptions {
        workers: parse_usize(flags, "workers").unwrap_or(0),
        quantum: parse_usize(flags, "quantum").unwrap_or(64) as u64,
        max_jobs: parse_usize(flags, "max-jobs").unwrap_or(defaults.max_jobs),
        max_queued_runs: parse_usize(flags, "max-queued-runs")
            .map_or(defaults.max_queued_runs, |n| n as u64),
        max_jobs_per_conn: parse_usize(flags, "conn-jobs").unwrap_or(defaults.max_jobs_per_conn),
        write_queue: parse_usize(flags, "write-queue").unwrap_or(defaults.write_queue),
        send_buffer: parse_usize(flags, "send-buffer").unwrap_or(defaults.send_buffer),
        journal: flags.get("journal").map(std::path::PathBuf::from),
    };
    let handle = match serve(&bind, options) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot bind {bind:?}: {e}");
            exit(1);
        }
    };
    #[cfg(unix)]
    install_sigterm_drain(handle.drainer());
    match handle.tcp_addr() {
        Some(addr) => println!("sg-serve listening on {addr} (sg-serve/1)"),
        None => println!("sg-serve listening on {} (sg-serve/1)", serve_addr(flags)),
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.wait();
    println!("sg-serve stopped");
}

/// `sg submit` exit codes scripts can branch on: the daemon was full,
/// the daemon is going away, the job blew its own deadline.
const EXIT_SATURATED: i32 = 3;
const EXIT_DRAINING: i32 = 4;
const EXIT_DEADLINE: i32 = 5;

fn cmd_submit(flags: &HashMap<String, String>, toggles: &[String]) {
    use shifting_gears::serve::{ErrorCode, RejectCode, RetryPolicy, ServeError};

    // The early-stopping mode is engine-global, not part of the wire
    // plan: an external daemon runs grids in *its* mode regardless of
    // this client's flag. Reject rather than silently return wrong-mode
    // data; start the daemon with `sg serve --no-early-stop` instead.
    if toggles.iter().any(|t| t == "no-early-stop") {
        eprintln!(
            "--no-early-stop does not travel over sg-serve/1: the daemon's own mode \
             governs its runs. Launch the daemon with `sg serve --no-early-stop` instead."
        );
        exit(2);
    }
    let mut client = connect_client(flags);
    if toggles.iter().any(|t| t == "shutdown") {
        match client.shutdown_server() {
            Ok(()) => {
                println!("daemon acknowledged shutdown");
                return;
            }
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                exit(1);
            }
        }
    }
    let plan = sweep_plan_from_flags(flags, toggles);
    let deadline_ms = parse_usize(flags, "deadline-ms").map(|ms| ms as u64);
    let mut policy = RetryPolicy::deterministic(plan.base_seed);
    policy.attempts = parse_usize(flags, "retry-attempts").map_or(1, |n| n as u32);
    let handle = match client.submit_with_retry(&plan, deadline_ms, &policy) {
        Ok(handle) => handle,
        Err(ServeError::Rejected {
            code,
            detail,
            retry_after_ms,
        }) => {
            // One structured line + a distinct exit code per reason, so
            // scripts can branch without parsing prose.
            let hint = retry_after_ms.map_or(String::new(), |ms| format!(" retry_after_ms={ms}"));
            eprintln!(
                "submit rejected: code={}{hint} attempts={} detail=\"{detail}\"",
                code.as_str(),
                policy.attempts.max(1),
            );
            exit(match code {
                RejectCode::Saturated => EXIT_SATURATED,
                RejectCode::Draining => EXIT_DRAINING,
            });
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            exit(1);
        }
    };
    println!(
        "job {} accepted: {} cell(s), {} runs",
        handle.job, handle.cells, handle.total_runs
    );
    // `--journal` makes the client write-through: every streamed cell is
    // appended to a local journal under this process's engine epoch, so
    // a later `sg sweep --journal` (or a journal-backed daemon fed the
    // same directory) starts warm. Sound because the only toggle that
    // changes sweep bytes (`--no-early-stop`) is rejected above — the
    // other engine toggles are identity-preserving by contract.
    let mut journal = flags.get("journal").map(|path| open_journal(path));
    let epoch = shifting_gears::analysis::engine_epoch();
    let streamed = match client.collect(handle, |index, cell| {
        print!("{}", cell.render_line());
        if let Some(journal) = journal.as_mut() {
            if let Some(key) = plan.cell_key(index) {
                if let Err(e) = journal.append(key, epoch, &cell.to_json()) {
                    eprintln!("journal append failed: {e}");
                }
            }
        }
    }) {
        Ok(streamed) => streamed,
        Err(ServeError::Cancelled {
            job,
            cells_streamed,
        }) => {
            eprintln!("job {job} cancelled after {cells_streamed} cell(s)");
            exit(1);
        }
        Err(ServeError::Server {
            code: ErrorCode::DeadlineExceeded,
            detail,
        }) => {
            eprintln!(
                "submit failed: code=deadline-exceeded job={} detail=\"{detail}\"",
                handle.job
            );
            exit(EXIT_DEADLINE);
        }
        Err(e) => {
            eprintln!("stream failed: {e}");
            exit(1);
        }
    };
    println!(
        "job {} complete: {} runs in {:.1} ms (server wall) — report fingerprint: {:016x}",
        streamed.job, streamed.report.total_runs, streamed.wall_ms, streamed.fingerprint
    );
    if streamed.cached_cells > 0 {
        println!(
            "daemon journal: {} of {} cell(s) served from cache",
            streamed.cached_cells,
            streamed.report.cells.len()
        );
    }
    check_expected_fingerprint(flags, streamed.fingerprint);
}

/// `sg journal stat|compact <dir>`: inspect or compact a result journal.
fn cmd_journal(args: &[String]) {
    let (Some(op), Some(path)) = (args.first(), args.get(1)) else {
        eprintln!("journal needs an operation and a directory: sg journal stat|compact <dir>");
        usage();
    };
    let mut journal = open_journal(path);
    match op.as_str() {
        "stat" => {
            let stats = match journal.stat() {
                Ok(stats) => stats,
                Err(e) => {
                    eprintln!("cannot stat '{path}': {e}");
                    exit(1);
                }
            };
            println!("journal {path} ({}):", shifting_gears::journal::SCHEMA);
            println!("  segments      : {}", stats.segments);
            println!("  live entries  : {}", stats.entries);
            println!("  engine epochs : {}", stats.epochs);
            println!("  superseded    : {}", stats.superseded);
            println!("  corrupt lines : {}", stats.corrupt_lines);
            println!("  bytes on disk : {}", stats.bytes);
            println!(
                "  this process  : epoch {}",
                shifting_gears::analysis::engine_epoch()
            );
        }
        "compact" => match journal.compact() {
            Ok(report) => println!(
                "compacted {path}: {} segment(s) removed, {} entries kept, {} line(s) dropped",
                report.segments_removed, report.entries_kept, report.lines_dropped
            ),
            Err(e) => {
                eprintln!("cannot compact '{path}': {e}");
                exit(1);
            }
        },
        other => {
            eprintln!("unknown journal operation '{other}' (stat|compact)");
            usage();
        }
    }
}

fn cmd_ping(flags: &HashMap<String, String>) {
    use shifting_gears::serve::{Client, RetryPolicy};

    let addr = serve_addr(flags);
    // With --attempts / --timeout-ms the probe is *bounded*: at most
    // `attempts` connect tries with jittered backoff capped at
    // `timeout-ms` per delay, then a clear failure and exit 1. That is
    // what CI's wait-for-startup gate loops on. Without either flag the
    // legacy 10 s patient connect stays.
    let attempts = parse_usize(flags, "attempts");
    let timeout_ms = parse_usize(flags, "timeout-ms");
    let mut client = if attempts.is_some() || timeout_ms.is_some() {
        let policy = RetryPolicy {
            attempts: attempts.unwrap_or(5) as u32,
            base_ms: 40,
            max_ms: timeout_ms.unwrap_or(1_000) as u64,
            seed: 0x5047,
        };
        match Client::connect_with_retry(&addr, &policy) {
            Ok(client) => client,
            Err(e) => {
                eprintln!(
                    "daemon at {addr} unreachable after {} attempt(s): {e}",
                    policy.attempts.max(1)
                );
                exit(1);
            }
        }
    } else {
        connect_client(flags)
    };
    match client.ping_stats() {
        Ok((hits, misses)) => {
            println!("pong from {addr} (journal: {hits} hit(s), {misses} miss(es))")
        }
        Err(e) => {
            eprintln!("ping failed: {e}");
            exit(1);
        }
    }
}

fn cmd_hammer(flags: &HashMap<String, String>) {
    use shifting_gears::serve::{run_load, ChaosSpec, LoadOptions};

    let defaults = LoadOptions::default();
    let seed = parse_usize(flags, "seed").map_or(defaults.base_seed, |s| s as u64);
    let chaos = flags.get("chaos").map(|mode| match mode.as_str() {
        "gentle" => ChaosSpec::gentle(seed),
        "hostile" => ChaosSpec::hostile(seed),
        other => {
            eprintln!("--chaos expects gentle|hostile, got '{other}'");
            exit(2);
        }
    });
    let options = LoadOptions {
        connections: parse_usize(flags, "connections").unwrap_or(defaults.connections),
        jobs_per_connection: parse_usize(flags, "jobs-per-conn")
            .unwrap_or(defaults.jobs_per_connection),
        seeds_per_cell: parse_usize(flags, "seeds").map_or(defaults.seeds_per_cell, |s| s as u64),
        workers: parse_usize(flags, "workers").unwrap_or(defaults.workers),
        quantum: parse_usize(flags, "quantum").map_or(defaults.quantum, |q| q as u64),
        max_jobs: parse_usize(flags, "max-jobs").unwrap_or(defaults.max_jobs),
        max_queued_runs: parse_usize(flags, "max-queued-runs")
            .map_or(defaults.max_queued_runs, |n| n as u64),
        deadline_ms: parse_usize(flags, "deadline-ms").map(|ms| ms as u64),
        retry_attempts: parse_usize(flags, "retry-attempts")
            .map_or(defaults.retry_attempts, |n| n as u32),
        chaos,
        base_seed: seed,
    };
    let report = run_load(&options);
    print!("{}", report.to_json_string());
    if report.fingerprint_mismatches > 0 {
        eprintln!(
            "{} completed job(s) diverged from the batch fingerprint",
            report.fingerprint_mismatches
        );
        exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    // `replay` and `journal` take positional operands, which
    // parse_flags rejects.
    if cmd == "replay" {
        cmd_replay(&args[1..]);
        return;
    }
    if cmd == "journal" {
        cmd_journal(&args[1..]);
        return;
    }
    let (flags, toggles) = parse_flags(&args[1..]);
    if let Some(jobs) = parse_usize(&flags, "jobs") {
        shifting_gears::analysis::set_jobs(jobs);
    }
    if toggles.iter().any(|t| t == "no-early-stop") {
        shifting_gears::sim::set_early_stopping(false);
    }
    if toggles.iter().any(|t| t == "no-instance-pool") {
        shifting_gears::sim::set_instance_pooling(false);
    }
    if toggles.iter().any(|t| t == "no-batch") {
        shifting_gears::sim::set_batch_runs(false);
    }
    if toggles.iter().any(|t| t == "no-batch-adversary") {
        shifting_gears::sim::set_batch_adversaries(false);
    }
    match cmd.as_str() {
        "run" => cmd_run(&flags, &toggles),
        "plan" => cmd_plan(&flags),
        "compose" => cmd_compose(&flags, &toggles),
        "gauntlet" => cmd_gauntlet(&flags),
        "stability" => cmd_stability(&flags),
        "sweep" => cmd_sweep(&flags, &toggles),
        "record" => cmd_record(&flags, &toggles),
        "serve" => cmd_serve(&flags),
        "submit" => cmd_submit(&flags, &toggles),
        "ping" => cmd_ping(&flags),
        "hammer" => cmd_hammer(&flags),
        "bounds" => cmd_bounds(parse_usize(&flags, "n").unwrap_or_else(|| usage())),
        "list" => cmd_list(),
        _ => usage(),
    }
}
