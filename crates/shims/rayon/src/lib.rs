//! Offline shim for `rayon`.
//!
//! The build environment cannot fetch crates.io, so this crate implements
//! the slice of the rayon API that `sg_analysis::sweep` consumes:
//!
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — thread-count
//!   scoping (the pool is virtual: worker threads are spawned per
//!   terminal operation with `std::thread::scope`, not kept alive);
//! * [`prelude::IntoParallelIterator`] / parallel `map` / `collect` /
//!   `for_each` — executed by a shared LIFO work queue drained by the
//!   scoped workers.
//!
//! Ordering guarantee (the one the sweep engine's determinism proof
//! rests on): `collect` returns results **in input order** regardless of
//! which worker ran which item, and `install(1)` degrades to a plain
//! sequential loop on the calling thread. Work items are boxed, so this
//! shim is intended for coarse-grained tasks (one task = one simulator
//! execution or more), which is the only way the sweep engine uses it.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::Mutex;
use std::thread;

thread_local! {
    /// Thread count installed by [`ThreadPool::install`]; 0 = default.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads terminal operations on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        thread::available_parallelism().map_or(1, usize::from)
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (the shim never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the thread count; 0 means "hardware default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the (virtual) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A virtual thread pool: holds a thread-count setting that [`install`]
/// scopes onto the calling thread; workers are spawned per operation.
///
/// [`install`]: ThreadPool::install
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The thread count terminal operations inside `install` will use.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            thread::available_parallelism().map_or(1, usize::from)
        }
    }

    /// Runs `op` with this pool's thread count installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|cell| {
            let prev = cell.get();
            cell.set(self.current_num_threads());
            let out = op();
            cell.set(prev);
            out
        })
    }
}

type Job<T> = Box<dyn FnOnce() -> T + Send>;

/// Runs `jobs` on the currently installed thread count, returning results
/// in input order.
fn run_jobs<T: Send>(jobs: Vec<Job<T>>) -> Vec<T> {
    let threads = current_num_threads().min(jobs.len());
    if threads <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let n = jobs.len();
    // LIFO queue of (input index, job); results re-sorted by index below,
    // so drain order never shows in the output.
    let queue: Mutex<Vec<(usize, Job<T>)>> =
        Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap_or_else(|e| e.into_inner()).pop();
                let Some((i, job)) = job else { break };
                let out = job();
                results
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((i, out));
            });
        }
    });
    let mut out = results.into_inner().unwrap_or_else(|e| e.into_inner());
    out.sort_unstable_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Parallel iterator types and traits.
pub mod iter {
    use super::{run_jobs, Job};
    use std::ops::Range;
    use std::sync::Arc;

    /// A materialized parallel iterator: one boxed job per item.
    pub struct ParIter<T: Send> {
        jobs: Vec<Job<T>>,
    }

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Converts `self`.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send + 'static> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter {
                jobs: self
                    .into_iter()
                    .map(|item| Box::new(move || item) as Job<T>)
                    .collect(),
            }
        }
    }

    impl IntoParallelIterator for Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            self.collect::<Vec<usize>>().into_par_iter()
        }
    }

    /// Collection from a parallel iterator (ordered).
    pub trait FromParallelIterator<T: Send> {
        /// Builds the collection from ordered results.
        fn from_par_iter(results: Vec<T>) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter(results: Vec<T>) -> Self {
            results
        }
    }

    impl<T: Send + 'static> ParIter<T> {
        /// Maps each item through `f` (runs on the workers).
        pub fn map<R, F>(self, f: F) -> ParIter<R>
        where
            R: Send + 'static,
            F: Fn(T) -> R + Send + Sync + 'static,
        {
            let f = Arc::new(f);
            ParIter {
                jobs: self
                    .jobs
                    .into_iter()
                    .map(|job| {
                        let f = Arc::clone(&f);
                        Box::new(move || f(job())) as Job<R>
                    })
                    .collect(),
            }
        }

        /// Executes the pipeline, collecting results in input order.
        pub fn collect<C: FromParallelIterator<T>>(self) -> C {
            C::from_par_iter(run_jobs(self.jobs))
        }

        /// Executes the pipeline for side effects.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(T) + Send + Sync + 'static,
        {
            let _: Vec<()> = self.map(f).collect();
        }

        /// Number of items in the pipeline.
        pub fn len(&self) -> usize {
            self.jobs.len()
        }

        /// Whether the pipeline is empty.
        pub fn is_empty(&self) -> bool {
            self.jobs.is_empty()
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{FromParallelIterator, IntoParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_input_order() {
        let out: Vec<usize> = (0..64usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| i * 2)
            .collect();
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_eq!(nested.install(current_num_threads), 1));
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect()
        });
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn parallel_equals_serial() {
        let serial: Vec<u64> = (0..100u64).map(|i| i * i).collect();
        let par: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(|| {
                (0..100usize)
                    .into_par_iter()
                    .map(|i| (i as u64) * (i as u64))
                    .collect()
            });
        assert_eq!(serial, par);
    }
}
