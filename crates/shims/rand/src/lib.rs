//! Offline shim for `rand`.
//!
//! Provides the subset of the `rand` 0.8 API this workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`] — on top of a deterministic xoshiro256** core
//! seeded through SplitMix64 (the same construction the real `rand`
//! documents for `seed_from_u64`). The stream is stable across runs and
//! platforms, which is exactly what the adversary strategies need:
//! `seed` fully determines behaviour.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be produced uniformly by an RNG (stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let span = (hi as u128) - (lo as u128);
                // Debiased via 128-bit multiply-shift (Lemire's method).
                let x = rng.next_u64() as u128;
                lo + ((x * span) >> 64) as $ty
            }
        }
        impl Standard for $ty {
            fn from_rng(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level convenience methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_half_open(range.start, range.end, self)
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256** with SplitMix64
    /// seeding. Deterministic and platform-independent.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(0u16..5);
            assert!(v < 5);
            let w = rng.gen_range(10usize..12);
            assert!((10..12).contains(&w));
        }
    }
}
