//! Offline shim for `serde_derive`.
//!
//! The workspace only uses `#[derive(serde::Serialize, serde::Deserialize)]`
//! as forward-looking annotations on plain data types; nothing in the tree
//! serializes through serde itself (the JSON the harness emits is written
//! by hand). These derives therefore expand to nothing: the types still
//! compile, and swapping in the real serde restores full codegen with no
//! source changes.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
