//! Offline shim for `serde` (+ the `serde_json` document model).
//!
//! Re-exports the no-op derive macros from the sibling `serde_derive`
//! shim, declares the marker traits earlier PRs introduced, and — since
//! the `sg-serve` wire protocol (PR 3) — provides a real minimal JSON
//! layer in [`json`] together with the [`ToJson`]/[`FromJson`] traits
//! the workspace's wire types implement. As with every shim under
//! `crates/shims/`, this is exactly the API surface the workspace uses:
//! swapping in the real `serde`/`serde_json` would replace [`json`] with
//! `serde_json::Value` and these traits with derived impls.

#![forbid(unsafe_code)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; the no-op derive
/// generates no impls, so write explicit impls if a bound ever appears).
pub trait SerializeMarker {}

/// Marker stand-in for `serde::Deserialize` (see [`SerializeMarker`]).
pub trait DeserializeMarker {}

/// Conversion into the [`json::Value`] document model — the
/// serialization half of the wire-protocol surface.
pub trait ToJson {
    /// Renders `self` as a JSON document.
    fn to_json(&self) -> json::Value;
}

/// Conversion from the [`json::Value`] document model — the
/// deserialization half of the wire-protocol surface.
pub trait FromJson: Sized {
    /// Decodes `self` from a parsed JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`json::JsonError`] describing the first missing or
    /// ill-typed field.
    fn from_json(v: &json::Value) -> Result<Self, json::JsonError>;
}
