//! Offline shim for `serde`.
//!
//! Re-exports the no-op derive macros from the sibling `serde_derive`
//! shim and declares empty marker traits so that `T: serde::Serialize`
//! bounds would still compile if a future change introduces them. See
//! the `serde_derive` shim for why this is sound in this workspace.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; the no-op derive
/// generates no impls, so write explicit impls if a bound ever appears).
pub trait SerializeMarker {}

/// Marker stand-in for `serde::Deserialize` (see [`SerializeMarker`]).
pub trait DeserializeMarker {}
