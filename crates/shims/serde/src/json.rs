//! Minimal JSON document model, parser, and writer.
//!
//! The `sg-serve` wire protocol (see `crates/serve`) speaks
//! newline-delimited JSON; this module is the offline stand-in for the
//! `serde_json` layer a crates.io build would use. It deliberately keeps
//! the `serde_json::Value`-style document model rather than the full
//! `Serializer`/`Deserializer` machinery: the workspace's types implement
//! [`crate::ToJson`]/[`crate::FromJson`] against [`Value`] directly,
//! which is the entire API surface this repository consumes.
//!
//! Integers and floats are kept distinct ([`Value::Int`] holds an `i128`,
//! wide enough for any `u64` seed or fingerprint) so 64-bit quantities
//! round-trip exactly instead of being squeezed through an `f64`. Floats
//! are written with Rust's shortest-round-trip `Display`, so
//! `f64 → text → f64` is also exact.

use std::fmt;

/// A parsed JSON document.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction or exponent). `i128` covers the
    /// full `u64` and `i64` ranges exactly.
    Int(i128),
    /// A floating-point literal.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved (duplicate keys keep the
    /// last occurrence on lookup, matching common JSON parsers).
    Obj(Vec<(String, Value)>),
}

/// A parse or decode failure, with a byte offset for parse errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub detail: String,
    /// Byte offset in the input where the parser gave up (0 for
    /// decode-stage errors raised on an already-parsed document).
    pub at: usize,
}

impl JsonError {
    /// A decode-stage error (no meaningful input offset).
    pub fn msg(detail: impl Into<String>) -> Self {
        JsonError {
            detail: detail.into(),
            at: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.at > 0 {
            write!(f, "{} (at byte {})", self.detail, self.at)
        } else {
            write!(f, "{}", self.detail)
        }
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth beyond which the parser refuses input. The wire
/// protocol's documents are a few levels deep; the limit keeps a
/// maliciously nested frame from overflowing the daemon's stack.
const MAX_DEPTH: usize = 128;

impl Value {
    /// Parses one JSON document, requiring it to span the whole input
    /// (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first malformed byte; inputs
    /// nested deeper than an internal safety limit are rejected rather
    /// than risking stack exhaustion.
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if this is a non-negative integer
    /// in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The integer payload as `usize`, if this is a non-negative integer
    /// in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The numeric payload as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Required-field lookup with a decode error naming the field.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if `self` is not an object or lacks `key`.
    pub fn need(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::msg(format!("missing field '{key}'")))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i128)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i128)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl fmt::Display for Value {
    /// Writes compact (single-line) JSON — one frame per line is exactly
    /// what the NDJSON wire format needs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Num(x) => {
                if x.is_finite() {
                    // Guarantee a float-shaped literal so it parses back
                    // as Num, not Int.
                    let s = format!("{x}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no NaN/Inf; null is the conventional spill.
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

use fmt::Write as _;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> JsonError {
        JsonError {
            detail: detail.into(),
            at: self.pos.max(1),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}' in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b. The
                    // input is a &str, so the sequence is valid.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.eat(b'.') {
            float = true;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if self.peek() == Some(b'e') || self.peek() == Some(b'E') {
            float = true;
            self.pos += 1;
            if self.peek() == Some(b'+') || self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| self.err(format!("invalid number '{text}'")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("invalid number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::from("optimal-king")),
            ("n".into(), Value::from(16u64)),
            ("seed".into(), Value::Int(u64::MAX as i128)),
            ("mean".into(), Value::Num(1.25)),
            ("whole".into(), Value::Num(2.0)),
            (
                "flags".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null]),
            ),
            ("text".into(), Value::from("a\"b\\c\nd\u{1F600}")),
        ]);
        let text = doc.to_string();
        assert_eq!(Value::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("42.0").unwrap(), Value::Num(42.0));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Num(1000.0));
        assert_eq!(Value::Num(3.0).to_string(), "3.0");
        let big = u64::MAX;
        assert_eq!(Value::from(big).to_string(), big.to_string());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"unterminated",
            "nul",
            "01x",
            "{\"a\":1} trailing",
            "\"bad \\q escape\"",
            "\"lone \\ud800 surrogate\"",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Value::parse(&deep).is_err(), "accepted 500-deep nesting");
    }

    #[test]
    fn string_escapes_decode() {
        let v = Value::parse("\"\\u0041\\n\\t\\\\ \\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("A\n\t\\ \u{1F600}"));
    }

    #[test]
    fn accessors_and_need() {
        let v = Value::parse("{\"a\":1,\"b\":[2],\"c\":\"x\",\"d\":true}").unwrap();
        assert_eq!(v.need("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert!(v.need("missing").is_err());
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
    }
}
