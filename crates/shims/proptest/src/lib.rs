//! Offline shim for `proptest`.
//!
//! The build environment cannot fetch crates.io, so this crate implements
//! the slice of the proptest API the workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_shuffle` / `boxed`, integer-range and tuple strategies,
//! [`strategy::Just`], [`arbitrary::any`], [`collection::vec`] /
//! [`collection::btree_set`], [`option::of`], [`prop_oneof!`], the
//! `prop_assert*` / [`prop_assume!`] macros, and enough of
//! [`test_runner`] (`TestRunner`, `ValueTree::current`) for strategy
//! sanity tests.
//!
//! Differences from real proptest, chosen deliberately:
//!
//! * **No shrinking.** A failing case panics with the values' debug line
//!   unminimized. The seed is derived from the test's module path, so
//!   failures reproduce exactly on re-run.
//! * **Deterministic.** Each test function owns a fixed RNG stream; there
//!   is no persistence file because there is nothing nondeterministic to
//!   persist.
//! * **32 cases by default**, not real proptest's 256 — a CI-speed
//!   trade-off. Tests in this workspace all set an explicit
//!   `ProptestConfig::with_cases(..)`, so only ad-hoc `proptest!` blocks
//!   see the lower default; expect an 8× test-time jump (and more cases
//!   explored) when swapping in the real crate.
//!
//! Swapping in real proptest restores shrinking with no source changes.

#![forbid(unsafe_code)]

/// Deterministic RNG used by strategies, backed by the `rand` shim's
/// xoshiro256** core so the two shims cannot diverge.
pub mod rng {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// The generator handed to [`crate::strategy::Strategy::new_value`].
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A generator seeded from `seed` via SplitMix64.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw from `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Test-case plumbing: configuration, runner, error type.
pub mod test_runner {
    use crate::rng::TestRng;

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!`; it is retried, not failed.
        Reject(String),
        /// The case failed a `prop_assert*`.
        Fail(String),
    }

    /// Result type the [`crate::proptest!`] macro threads through bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives strategies; owns the RNG stream.
    #[derive(Clone, Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::new(ProptestConfig::default())
        }
    }

    impl TestRunner {
        /// A runner with a fixed default seed.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: TestRng::seed_from_u64(0x5EED_CA5E_0000_0001),
            }
        }

        /// A runner whose seed is derived from `name` (used by
        /// [`crate::proptest!`] so every test owns a stable stream).
        pub fn new_for_test(config: ProptestConfig, name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                config,
                rng: TestRng::seed_from_u64(h),
            }
        }

        /// The active configuration.
        pub fn config(&self) -> &ProptestConfig {
            &self.config
        }

        /// Mutable access to the RNG (strategies draw from this).
        pub fn rng_mut(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// Strategies: value generators composable with `prop_map` etc.
pub mod strategy {
    use crate::rng::TestRng;
    use crate::test_runner::TestRunner;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generated value plus (vestigial) shrinking interface.
    pub trait ValueTree {
        /// The value type.
        type Value;
        /// The current value.
        fn current(&self) -> Self::Value;
    }

    /// The shim's only tree shape: a value with no shrink moves.
    #[derive(Clone, Debug)]
    pub struct JustValueTree<V: Clone>(pub V);

    impl<V: Clone> ValueTree for JustValueTree<V> {
        type Value = V;
        fn current(&self) -> V {
            self.0.clone()
        }
    }

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Draws one value wrapped in a (non-shrinking) tree.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<JustValueTree<Self::Value>, String>
        where
            Self: Sized,
            Self::Value: Clone,
        {
            Ok(JustValueTree(self.new_value(runner.rng_mut())))
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Uniformly permutes generated `Vec`s.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle(self)
        }

        /// Type-erases the strategy (for [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Always produces a clone of its payload.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn new_value(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Output of [`Strategy::prop_shuffle`].
    #[derive(Clone, Debug)]
    pub struct Shuffle<S>(S);

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<T> {
            let mut items = self.0.new_value(rng);
            // Fisher–Yates.
            for i in (1..items.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                items.swap(i, j);
            }
            items
        }
    }

    /// Output of [`crate::prop_oneof!`]: a uniform choice among options.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let x = ((rng.next_u64() as u128 * span) >> 64) as $ty;
                    self.start + x
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    let x = ((rng.next_u64() as u128 * span) >> 64) as $ty;
                    lo + x
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Output of [`crate::arbitrary::any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<A>(pub(crate) PhantomData<A>);

    impl Strategy for Any<u64> {
        type Value = u64;
        fn new_value(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn new_value(&self, rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` — strategies for "any value of T".
pub mod arbitrary {
    use crate::strategy::Any;
    use std::marker::PhantomData;

    /// A strategy producing arbitrary values of `A` (shim: `u64`, `u32`,
    /// `bool`).
    pub fn any<A>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An (inclusive) size window for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec`s of `element` values with sizes in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of `element` values with sizes in `size`.
    ///
    /// Like real proptest, the generated set may be smaller than the
    /// drawn target when the element domain is too small to supply
    /// enough distinct values.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 20 {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Optional-value strategies.
pub mod option {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy for `Option<S::Value>`, `None` one time in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. See the crate docs for shim semantics
/// (generate-only, deterministic per-test seed, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::new_for_test(
                config.clone(),
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(100),
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $(
                        let $pat = $crate::strategy::Strategy::new_value(
                            &($strat),
                            runner.rng_mut(),
                        );
                    )+
                    #[allow(unused_mut)]
                    let mut case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    case()
                };
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed in {} (case {}): {}",
                            stringify!($name), passed, msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

/// Vetoes the current case (it is retried with fresh values).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case if `$cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case if the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+),
        );
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right,
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0u16..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u8..4, 1usize..3).prop_map(|(a, b)| (a as usize) * b),
            v in crate::collection::vec(0u16..2, 5),
            opt in crate::option::of(0u32..7),
            choice in prop_oneof![Just(1usize), Just(2)],
        ) {
            prop_assert!(pair < 12);
            prop_assert_eq!(v.len(), 5);
            if let Some(x) = opt { prop_assert!(x < 7); }
            prop_assert!(choice == 1 || choice == 2);
        }

        #[test]
        fn assume_retries(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn shuffle_permutes(v in Just((0..8usize).collect::<Vec<_>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn btree_set_respects_bounds() {
        use crate::strategy::{Strategy, ValueTree};
        let mut runner = crate::test_runner::TestRunner::default();
        for _ in 0..32 {
            let set = crate::collection::btree_set(0usize..10, 0..=3)
                .new_tree(&mut runner)
                .unwrap()
                .current();
            assert!(set.len() <= 3);
            assert!(set.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn deterministic_per_test_seed() {
        use crate::strategy::Strategy;
        use crate::test_runner::{ProptestConfig, TestRunner};
        let mut a = TestRunner::new_for_test(ProptestConfig::default(), "x");
        let mut b = TestRunner::new_for_test(ProptestConfig::default(), "x");
        let s = 0u64..1000;
        for _ in 0..8 {
            assert_eq!(s.new_value(a.rng_mut()), s.new_value(b.rng_mut()));
        }
    }
}
