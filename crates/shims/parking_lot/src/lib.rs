//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so this crate
//! provides exactly the subset of the `parking_lot` API the workspace
//! uses: [`Mutex`] and [`RwLock`] whose `lock`/`read`/`write` return
//! guards directly (no `Result`). Poisoning is translated into a panic,
//! which matches `parking_lot`'s abort-free but poison-free semantics
//! closely enough for this workspace (protocol code never panics while
//! holding a lock except on assertion failures that abort the test
//! anyway).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
