//! Offline shim for `criterion`.
//!
//! Implements the API subset the `sg-bench` benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! with a deliberately simple measurement loop: a short warm-up, then a
//! timed run long enough to report a stable mean (no statistics, no
//! HTML reports). Results print as `group/id  time: <mean> (<iters>
//! iters)`. Swapping in real criterion restores full statistics with no
//! source changes to the benches.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier (`name`, or `name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter component.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// An id carrying only a parameter component.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    /// Measured mean time per iteration, filled in by [`Bencher::iter`].
    mean: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: run until ~10ms or 5 iterations.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_iters < 5 || calib_start.elapsed() < Duration::from_millis(10) {
            black_box(routine());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calib_start.elapsed() / calib_iters as u32;
        // Timed run sized to the budget.
        let target = self
            .budget
            .as_nanos()
            .checked_div(per_iter.as_nanos().max(1))
            .unwrap_or(1)
            .clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean = elapsed / target as u32;
        self.iters = target;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time
    /// budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            mean: Duration::ZERO,
            iters: 0,
            budget: self.budget,
        };
        f(&mut bencher);
        self.criterion.report(&self.name, &id.into_id(), &bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.into_id(), |bencher| f(bencher, input))
    }

    /// Finishes the group (printing happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; the shim ignores argv filters.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            budget,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
        self
    }

    fn report(&self, group: &str, id: &str, bencher: &Bencher) {
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        println!(
            "{label:<56} time: {:>12?}  ({} iters)",
            bencher.mean, bencher.iters
        );
    }
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("n9").to_string(), "n9");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.measurement_time(Duration::from_millis(5));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
