//! Closed-form predictions from the paper's theorems.
//!
//! Round counts live in `sg_core::schedule`; this module adds the
//! message-length and local-computation predictions needed to compare
//! measurements against Proposition 1, Theorems 2–4 and the Main Theorem.

/// Falling factorial `(n−1)(n−2)⋯(n−k)` — the number of nodes at level
/// `k` of the no-repetition tree — as `u128` to survive large sweeps.
pub fn level_size(n: usize, k: usize) -> u128 {
    let mut size: u128 = 1;
    for j in 1..=k {
        size *= (n - j) as u128;
    }
    size
}

/// Largest honest message of the Exponential Algorithm, in values: the
/// round-`(t+1)` broadcast carries level `t−1` of the round-`t` tree.
pub fn exponential_max_message_values(n: usize, t: usize) -> u128 {
    level_size(n, t.saturating_sub(1))
}

/// Largest honest message of a blocked family with block length `b`, in
/// values: the last gather round of a full block broadcasts level `b−1`.
/// The paper bounds this by O(n^b) bits (Theorems 2 and 3).
pub fn blocked_max_message_values(n: usize, b: usize) -> u128 {
    level_size(n, b.saturating_sub(1))
}

/// Largest honest message of Algorithm C, in values: the intermediate
/// vector, `n` values (Theorem 4's O(n) bits).
pub fn c_max_message_values(n: usize) -> u128 {
    n as u128
}

/// Theorem 2's local-computation bound for Algorithm A:
/// `O(n^{b+1} (t−1)/(b−2))`, evaluated with constant 1.
pub fn a_local_bound(n: usize, t: usize, b: usize) -> u128 {
    pow(n, b + 1) * ((t.max(2) - 1) as u128) / ((b - 2).max(1) as u128)
}

/// Theorem 3's local-computation bound for Algorithm B:
/// `O(n^{b+1} (t−1)/(b−1))`, evaluated with constant 1.
pub fn b_local_bound(n: usize, t: usize, b: usize) -> u128 {
    pow(n, b + 1) * ((t.max(2) - 1) as u128) / ((b - 1) as u128)
}

/// Theorem 4's local-computation bound for Algorithm C: `O(n^{2.5})`,
/// evaluated with constant 1 (rounded down).
pub fn c_local_bound(n: usize) -> u128 {
    let n2 = (n * n) as u128;
    n2 * super::isqrt_u128((n) as u128)
}

/// Integer power as `u128` (saturating at `u128::MAX`).
pub fn pow(base: usize, exp: usize) -> u128 {
    let mut out: u128 = 1;
    for _ in 0..exp {
        out = out.saturating_mul(base as u128);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_sizes_are_falling_factorials() {
        assert_eq!(level_size(5, 0), 1);
        assert_eq!(level_size(5, 2), 12);
        assert_eq!(level_size(10, 3), 9 * 8 * 7);
    }

    #[test]
    fn exponential_messages_grow_exponentially() {
        assert_eq!(exponential_max_message_values(7, 2), 6);
        assert_eq!(exponential_max_message_values(10, 3), 9 * 8);
        assert!(exponential_max_message_values(13, 4) > exponential_max_message_values(10, 3));
    }

    #[test]
    fn blocked_messages_depend_on_b_not_t() {
        assert_eq!(blocked_max_message_values(21, 3), 20 * 19);
        assert_eq!(blocked_max_message_values(21, 2), 20);
    }

    #[test]
    fn local_bounds_monotone_in_b() {
        assert!(a_local_bound(16, 5, 4) > a_local_bound(16, 5, 3) / 10);
        assert!(b_local_bound(21, 5, 3) > 0);
        assert!(c_local_bound(32) >= 32 * 32 * 5);
    }

    #[test]
    fn pow_saturates() {
        assert_eq!(pow(2, 3), 8);
        assert_eq!(pow(10, 0), 1);
        assert_eq!(pow(usize::MAX, 40), u128::MAX);
    }
}
