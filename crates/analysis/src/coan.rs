//! Analytical model of Coan's algorithm families (Coan 1986, 1987).
//!
//! The paper's headline comparison (§1, §4) is that Algorithms A and B
//! "obtain the same rounds to message length trade-off as do Coan's
//! families but do not require the exponential local computation time
//! (and space) of his algorithms". Coan's construction is specified in a
//! separate thesis and was never released as code; the paper itself
//! compares against his *stated bounds*, not an implementation. We do the
//! same: this module models Coan's family with
//!
//! * rounds `t + 1 + O(t/b)` — the same trade-off curve as Theorem 3,
//! * messages of `O(n^b)` bits — same as Theorems 2 and 3,
//! * local computation exponential in `n` — the canonical-form
//!   construction enumerates runs of the simulated protocol, which is the
//!   exponential blow-up our families avoid.
//!
//! See DESIGN.md §5 (Substitutions) for why an analytical comparator
//! preserves the comparison the paper actually makes. The exponential
//! local-computation term is *qualitative*: the point of the trade-off
//! figure is its shape (flat polynomial vs. exponential wall), not its
//! constant.

use crate::bounds::pow;

/// Modelled round count of a Coan-family member with block parameter `b`:
/// the same `t + 1 + ⌊(t−1)/(b−1)⌋` trade-off curve the paper credits to
/// both Coan's families and Algorithm B.
pub fn coan_rounds(t: usize, b: usize) -> usize {
    if b >= t {
        t + 1
    } else {
        t + 1 + (t - 1) / (b - 1)
    }
}

/// Modelled maximum message size in values: `O(n^b)` like the shifted
/// families, evaluated with constant 1 as `n^{b−1}` values (matching how
/// we count the shifted families' biggest broadcast).
pub fn coan_max_message_values(n: usize, b: usize) -> u128 {
    crate::bounds::blocked_max_message_values(n, b)
}

/// Modelled per-processor local computation: exponential in `n`.
///
/// Coan's canonical-form transformation has each processor locally
/// simulate the underlying exponential-information protocol over all
/// consistent message assignments; we charge `n^b · 2^n` as a
/// conservative stand-in for "polynomial traffic, exponential local
/// work". Saturates at `u128::MAX` for large `n`.
pub fn coan_local_ops(n: usize, b: usize) -> u128 {
    pow(n, b).saturating_mul(pow(2, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_match_algorithm_b_tradeoff() {
        for t in 3..20 {
            for b in 2..t {
                assert_eq!(
                    coan_rounds(t, b),
                    sg_core::schedule::algorithm_b_rounds_bound(t, b)
                );
            }
        }
    }

    #[test]
    fn local_ops_explode_with_n() {
        assert!(coan_local_ops(31, 3) > coan_local_ops(21, 3) * 1000);
        // Our families stay polynomial; Coan's model crosses any
        // polynomial bound even at modest n.
        assert!(coan_local_ops(31, 3) > crate::bounds::b_local_bound(31, 10, 3) * 1_000_000);
    }

    #[test]
    fn messages_match_blocked_families() {
        assert_eq!(coan_max_message_values(21, 3), 20 * 19);
    }
}
