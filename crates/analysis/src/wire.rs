//! Wire (JSON) forms of the sweep types — the vocabulary of `sg-serve/1`.
//!
//! See `docs/WIRE.md` at the repository root for the consolidated
//! catalogue of every schema the repo speaks and their compatibility
//! notes; this module is the codec for the plan/cell/sample vocabulary
//! those schemas share.
//!
//! The `sg-serve` daemon (see `crates/serve`) accepts [`SweepPlan`]s and
//! streams [`CellReport`]s over newline-delimited JSON; this module
//! defines how those types look on the wire, via the serde shim's
//! [`ToJson`]/[`FromJson`] traits. The encodings are documented field by
//! field in ROADMAP.md's "Sweep service" convention; the invariant that
//! matters is **round-trip exactness**: `decode(encode(x)) == x` for
//! every encodable value, including `u64` seeds (carried as JSON
//! integers, never through `f64`) and summary statistics (floats written
//! with shortest-round-trip precision).
//!
//! Two deliberate gaps:
//!
//! * [`AdversaryFamily`] values built from arbitrary closures
//!   ([`AdversaryFamily::new`]) have no wire form — only the named
//!   constructors (`no-faults`, `random-liar`, `chain-revealer`) travel.
//!   Encoding such a family returns [`Json::Null`]; plans containing one
//!   are rejected at submit time, not silently altered.
//! * [`crate::SweepReport`] has no single-document decode: the service streams
//!   cells one frame at a time precisely so a report never has to exist
//!   in one buffer; consumers reassemble it from [`CellReport`] frames.

use serde::json::{JsonError, Value as Json};
use serde::{FromJson, ToJson};
use sg_adversary::{AdversaryTrace, FaultSelection, Move};
use sg_core::AlgorithmSpec;
use sg_sim::{ProcessId, Value};

use crate::montecarlo::{Sample, Summary};
use crate::sweep::FamilyWire;
use crate::{AdversaryFamily, CellReport, SweepConfig, SweepPlan};

fn bad(detail: impl Into<String>) -> JsonError {
    JsonError::msg(detail)
}

fn field_usize(v: &Json, key: &str) -> Result<usize, JsonError> {
    v.need(key)?
        .as_usize()
        .ok_or_else(|| bad(format!("'{key}' must be a non-negative integer")))
}

fn field_u64(v: &Json, key: &str) -> Result<u64, JsonError> {
    v.need(key)?
        .as_u64()
        .ok_or_else(|| bad(format!("'{key}' must be a non-negative integer")))
}

fn field_str<'v>(v: &'v Json, key: &str) -> Result<&'v str, JsonError> {
    v.need(key)?
        .as_str()
        .ok_or_else(|| bad(format!("'{key}' must be a string")))
}

/// Encodes an [`AlgorithmSpec`] as `{"alg":"<cli-name>"}` plus a `"b"`
/// field for the block-parameterised families — the same names `sg run
/// --alg` accepts.
pub fn spec_to_json(spec: AlgorithmSpec) -> Json {
    let (alg, b) = match spec {
        AlgorithmSpec::PlainExponential => ("plain-exponential", None),
        AlgorithmSpec::Exponential => ("exponential", None),
        AlgorithmSpec::ExponentialPrime => ("exponential-prime", None),
        AlgorithmSpec::AlgorithmA { b } => ("algorithm-a", Some(b)),
        AlgorithmSpec::AlgorithmB { b } => ("algorithm-b", Some(b)),
        AlgorithmSpec::AlgorithmC => ("algorithm-c", None),
        AlgorithmSpec::Hybrid { b } => ("hybrid", Some(b)),
        AlgorithmSpec::PhaseKing => ("phase-king", None),
        AlgorithmSpec::OptimalKing => ("optimal-king", None),
        AlgorithmSpec::KingShift { b } => ("king-shift", Some(b)),
        AlgorithmSpec::DynamicKing { b } => ("dynamic-king", Some(b)),
        AlgorithmSpec::PhaseQueen => ("phase-queen", None),
        AlgorithmSpec::DolevStrong => ("dolev-strong", None),
    };
    let mut fields = vec![("alg".to_string(), Json::from(alg))];
    if let Some(b) = b {
        fields.push(("b".to_string(), Json::from(b)));
    }
    Json::Obj(fields)
}

/// Decodes [`spec_to_json`]'s encoding.
///
/// # Errors
///
/// Returns a [`JsonError`] for unknown algorithm names or a missing `b`
/// on the block-parameterised families.
pub fn spec_from_json(v: &Json) -> Result<AlgorithmSpec, JsonError> {
    let alg = field_str(v, "alg")?;
    let b = || field_usize(v, "b");
    Ok(match alg {
        "plain-exponential" => AlgorithmSpec::PlainExponential,
        "exponential" => AlgorithmSpec::Exponential,
        "exponential-prime" => AlgorithmSpec::ExponentialPrime,
        "algorithm-a" => AlgorithmSpec::AlgorithmA { b: b()? },
        "algorithm-b" => AlgorithmSpec::AlgorithmB { b: b()? },
        "algorithm-c" => AlgorithmSpec::AlgorithmC,
        "hybrid" => AlgorithmSpec::Hybrid { b: b()? },
        "phase-king" => AlgorithmSpec::PhaseKing,
        "optimal-king" => AlgorithmSpec::OptimalKing,
        "king-shift" => AlgorithmSpec::KingShift { b: b()? },
        "dynamic-king" => AlgorithmSpec::DynamicKing { b: b()? },
        "phase-queen" => AlgorithmSpec::PhaseQueen,
        "dolev-strong" => AlgorithmSpec::DolevStrong,
        other => return Err(bad(format!("unknown algorithm '{other}'"))),
    })
}

impl ToJson for SweepConfig {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("spec".to_string(), spec_to_json(self.spec)),
            ("n".to_string(), Json::from(self.n)),
            ("t".to_string(), Json::from(self.t)),
            (
                "source_value".to_string(),
                Json::from(u64::from(self.source_value.raw())),
            ),
            ("trace".to_string(), Json::Bool(self.trace)),
        ])
    }
}

impl FromJson for SweepConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let raw = field_u64(v, "source_value")?;
        let raw = u16::try_from(raw).map_err(|_| bad("source_value must fit in 16 bits"))?;
        Ok(SweepConfig {
            spec: spec_from_json(v.need("spec")?)?,
            n: field_usize(v, "n")?,
            t: field_usize(v, "t")?,
            source_value: Value(raw),
            trace: v
                .need("trace")?
                .as_bool()
                .ok_or_else(|| bad("'trace' must be a boolean"))?,
        })
    }
}

impl ToJson for AdversaryFamily {
    /// `{"family":"random-liar","selection":{…}}`-style tagged objects;
    /// closure-built families encode as `null` (see the module docs).
    fn to_json(&self) -> Json {
        let Some(wire) = self.wire() else {
            return Json::Null;
        };
        match wire {
            FamilyWire::NoFaults => {
                Json::Obj(vec![("family".to_string(), Json::from("no-faults"))])
            }
            FamilyWire::RandomLiar(selection) => Json::Obj(vec![
                ("family".to_string(), Json::from("random-liar")),
                ("selection".to_string(), selection.to_json()),
            ]),
            FamilyWire::ChainRevealer {
                selection,
                start,
                block,
            } => Json::Obj(vec![
                ("family".to_string(), Json::from("chain-revealer")),
                ("selection".to_string(), selection.to_json()),
                ("start".to_string(), Json::from(*start)),
                ("block".to_string(), Json::from(*block)),
            ]),
            FamilyWire::Crash { selection, round } => Json::Obj(vec![
                ("family".to_string(), Json::from("crash")),
                ("selection".to_string(), selection.to_json()),
                ("round".to_string(), Json::from(*round)),
            ]),
            FamilyWire::Silent(selection) => Json::Obj(vec![
                ("family".to_string(), Json::from("silent")),
                ("selection".to_string(), selection.to_json()),
            ]),
            FamilyWire::Partition {
                selection,
                split,
                from,
                to,
            } => Json::Obj(vec![
                ("family".to_string(), Json::from("partition")),
                ("selection".to_string(), selection.to_json()),
                ("split".to_string(), Json::from(*split)),
                ("from".to_string(), Json::from(*from)),
                ("to".to_string(), Json::from(*to)),
            ]),
            FamilyWire::Omission {
                selection,
                period,
                phase,
            } => Json::Obj(vec![
                ("family".to_string(), Json::from("omission")),
                ("selection".to_string(), selection.to_json()),
                ("period".to_string(), Json::from(*period)),
                ("phase".to_string(), Json::from(*phase)),
            ]),
            FamilyWire::Equivocate {
                selection,
                split,
                start,
            } => Json::Obj(vec![
                ("family".to_string(), Json::from("equivocate")),
                ("selection".to_string(), selection.to_json()),
                ("split".to_string(), Json::from(*split)),
                ("start".to_string(), Json::from(*start)),
            ]),
            FamilyWire::Adaptive {
                selection,
                schedule,
            } => Json::Obj(vec![
                ("family".to_string(), Json::from("adaptive")),
                ("selection".to_string(), selection.to_json()),
                (
                    "schedule".to_string(),
                    Json::Arr(schedule.iter().map(|&r| Json::from(r)).collect()),
                ),
            ]),
            FamilyWire::Tape { members, tape } => Json::Obj(vec![
                ("family".to_string(), Json::from("tape")),
                (
                    "members".to_string(),
                    Json::Arr(members.iter().map(|p| Json::from(p.index())).collect()),
                ),
                (
                    "tape".to_string(),
                    Json::Arr(tape.iter().map(|m| Json::from(m.as_str())).collect()),
                ),
            ]),
            FamilyWire::Trace(trace) => Json::Obj(vec![
                ("family".to_string(), Json::from("replay")),
                ("trace".to_string(), trace.to_json()),
            ]),
        }
    }
}

impl FromJson for AdversaryFamily {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match field_str(v, "family")? {
            "no-faults" => Ok(AdversaryFamily::no_faults()),
            "random-liar" => Ok(AdversaryFamily::random_liar(FaultSelection::from_json(
                v.need("selection")?,
            )?)),
            "chain-revealer" => Ok(AdversaryFamily::chain_revealer(
                FaultSelection::from_json(v.need("selection")?)?,
                field_usize(v, "start")?,
                field_usize(v, "block")?,
            )),
            "crash" => Ok(AdversaryFamily::crash(
                FaultSelection::from_json(v.need("selection")?)?,
                field_usize(v, "round")?,
            )),
            "silent" => Ok(AdversaryFamily::silent(FaultSelection::from_json(
                v.need("selection")?,
            )?)),
            "partition" => Ok(AdversaryFamily::partition(
                FaultSelection::from_json(v.need("selection")?)?,
                field_usize(v, "split")?,
                field_usize(v, "from")?,
                field_usize(v, "to")?,
            )),
            "omission" => Ok(AdversaryFamily::omission(
                FaultSelection::from_json(v.need("selection")?)?,
                field_usize(v, "period")?,
                field_usize(v, "phase")?,
            )),
            "equivocate" => Ok(AdversaryFamily::equivocate(
                FaultSelection::from_json(v.need("selection")?)?,
                field_usize(v, "split")?,
                field_usize(v, "start")?,
            )),
            "adaptive" => {
                let schedule = v
                    .need("schedule")?
                    .as_arr()
                    .ok_or_else(|| bad("'schedule' must be an array"))?
                    .iter()
                    .map(|e| {
                        e.as_usize()
                            .ok_or_else(|| bad("schedule rounds must be integers"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(AdversaryFamily::adaptive(
                    FaultSelection::from_json(v.need("selection")?)?,
                    schedule,
                ))
            }
            "tape" => {
                let members = v
                    .need("members")?
                    .as_arr()
                    .ok_or_else(|| bad("'members' must be an array"))?
                    .iter()
                    .map(|e| {
                        e.as_usize()
                            .map(ProcessId)
                            .ok_or_else(|| bad("tape members must be integers"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let tape = v
                    .need("tape")?
                    .as_arr()
                    .ok_or_else(|| bad("'tape' must be an array"))?
                    .iter()
                    .map(|e| {
                        e.as_str()
                            .and_then(Move::from_name)
                            .ok_or_else(|| bad("tape entries must be move names"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                AdversaryFamily::tape(members, tape).map_err(|e| bad(e.to_string()))
            }
            "replay" => {
                let trace = AdversaryTrace::from_json(v.need("trace")?)?;
                AdversaryFamily::replay(trace).map_err(|e| bad(e.to_string()))
            }
            other => Err(bad(format!("unknown adversary family '{other}'"))),
        }
    }
}

impl ToJson for SweepPlan {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "configs".to_string(),
                Json::Arr(self.configs.iter().map(ToJson::to_json).collect()),
            ),
            (
                "adversaries".to_string(),
                Json::Arr(self.adversaries.iter().map(ToJson::to_json).collect()),
            ),
            (
                "seeds_per_cell".to_string(),
                Json::from(self.seeds_per_cell),
            ),
            ("base_seed".to_string(), Json::from(self.base_seed)),
        ])
    }
}

impl FromJson for SweepPlan {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let configs = v
            .need("configs")?
            .as_arr()
            .ok_or_else(|| bad("'configs' must be an array"))?
            .iter()
            .map(SweepConfig::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let adversaries = v
            .need("adversaries")?
            .as_arr()
            .ok_or_else(|| bad("'adversaries' must be an array"))?
            .iter()
            .map(AdversaryFamily::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepPlan {
            configs,
            adversaries,
            seeds_per_cell: field_u64(v, "seeds_per_cell")?,
            base_seed: field_u64(v, "base_seed")?,
        })
    }
}

impl ToJson for Sample {
    /// Compact positional form `[lock_in, discoveries, total_bits,
    /// max_local_ops, rounds, early_stopped]` — cell frames carry
    /// `seeds_per_cell` of these. Decoding also accepts the pre-rounds
    /// 4-element form (rounds 0, not early-stopped) for compatibility
    /// with frames recorded before the early-stopping engine.
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::from(self.lock_in),
            Json::from(self.discoveries),
            Json::from(self.total_bits),
            Json::from(self.max_local_ops),
            Json::from(self.rounds),
            Json::Bool(self.early_stopped),
        ])
    }
}

impl FromJson for Sample {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v
            .as_arr()
            .filter(|items| items.len() == 4 || items.len() == 6)
            .ok_or_else(|| bad("sample must be a 4- or 6-element array"))?;
        let get = |i: usize| {
            items[i]
                .as_u64()
                .ok_or_else(|| bad("sample entries must be non-negative integers"))
        };
        let (rounds, early_stopped) = if items.len() == 6 {
            (
                get(4)?,
                items[5]
                    .as_bool()
                    .ok_or_else(|| bad("sample entry 5 must be a boolean"))?,
            )
        } else {
            (0, false)
        };
        Ok(Sample {
            lock_in: get(0)?,
            discoveries: get(1)?,
            total_bits: get(2)?,
            max_local_ops: get(3)?,
            rounds,
            early_stopped,
        })
    }
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("samples".to_string(), Json::from(self.samples)),
            ("min".to_string(), Json::from(self.min)),
            ("max".to_string(), Json::from(self.max)),
            ("mean".to_string(), Json::Num(self.mean)),
            ("stddev".to_string(), Json::Num(self.stddev)),
        ])
    }
}

impl FromJson for Summary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let float = |key: &str| {
            v.need(key)?
                .as_f64()
                .ok_or_else(|| bad(format!("'{key}' must be a number")))
        };
        Ok(Summary {
            samples: field_usize(v, "samples")?,
            min: field_u64(v, "min")?,
            max: field_u64(v, "max")?,
            mean: float("mean")?,
            stddev: float("stddev")?,
        })
    }
}

impl ToJson for CellReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("spec_name".to_string(), Json::from(self.spec_name.as_str())),
            ("n".to_string(), Json::from(self.n)),
            ("t".to_string(), Json::from(self.t)),
            ("adversary".to_string(), Json::from(self.adversary.as_str())),
            ("first_seed".to_string(), Json::from(self.first_seed)),
            (
                "early_stop_rate".to_string(),
                Json::Num(self.early_stop_rate),
            ),
            (
                "samples".to_string(),
                Json::Arr(self.samples.iter().map(ToJson::to_json).collect()),
            ),
            (
                "summaries".to_string(),
                Json::Arr(self.summaries.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for CellReport {
    /// Decodes the extended cell frame. Pre-early-stopping frames (four
    /// summaries, no `early_stop_rate`) are accepted compatibly: the
    /// rounds summary is recomputed from the decoded samples and the
    /// rate defaults from their `early_stopped` flags.
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let samples = v
            .need("samples")?
            .as_arr()
            .ok_or_else(|| bad("'samples' must be an array"))?
            .iter()
            .map(Sample::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let mut summaries: Vec<Summary> = v
            .need("summaries")?
            .as_arr()
            .ok_or_else(|| bad("'summaries' must be an array"))?
            .iter()
            .map(Summary::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if summaries.len() == 4 {
            // Legacy frame: synthesize the rounds summary from samples.
            summaries.push(if samples.is_empty() {
                Summary {
                    samples: 0,
                    min: 0,
                    max: 0,
                    mean: 0.0,
                    stddev: 0.0,
                }
            } else {
                Summary::of(samples.iter().map(|s| s.rounds))
            });
        }
        let summaries: [Summary; 5] = summaries
            .try_into()
            .map_err(|_| bad("'summaries' must have 4 or 5 entries"))?;
        let early_stop_rate = match v.get("early_stop_rate") {
            Some(rate) => rate
                .as_f64()
                .ok_or_else(|| bad("'early_stop_rate' must be a number"))?,
            None => crate::montecarlo::early_stop_rate(&samples),
        };
        Ok(CellReport {
            spec_name: field_str(v, "spec_name")?.to_string(),
            n: field_usize(v, "n")?,
            t: field_usize(v, "t")?,
            adversary: field_str(v, "adversary")?.to_string(),
            first_seed: field_u64(v, "first_seed")?,
            early_stop_rate,
            samples,
            summaries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_adversary::FaultSelection;

    fn plan() -> SweepPlan {
        SweepPlan::new(
            vec![
                SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
                SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
            ],
            vec![
                AdversaryFamily::random_liar(FaultSelection::without_source()),
                AdversaryFamily::chain_revealer(FaultSelection::with_source().limit(2), 2, 2),
                AdversaryFamily::no_faults(),
            ],
            3,
        )
        .with_base_seed(u64::MAX - 7)
    }

    #[test]
    fn specs_round_trip() {
        for spec in [
            AlgorithmSpec::PlainExponential,
            AlgorithmSpec::Exponential,
            AlgorithmSpec::ExponentialPrime,
            AlgorithmSpec::AlgorithmA { b: 4 },
            AlgorithmSpec::AlgorithmB { b: 3 },
            AlgorithmSpec::AlgorithmC,
            AlgorithmSpec::Hybrid { b: 5 },
            AlgorithmSpec::PhaseKing,
            AlgorithmSpec::OptimalKing,
            AlgorithmSpec::KingShift { b: 3 },
            AlgorithmSpec::DynamicKing { b: 3 },
            AlgorithmSpec::PhaseQueen,
            AlgorithmSpec::DolevStrong,
        ] {
            let text = spec_to_json(spec).to_string();
            let back = spec_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec, "through {text}");
        }
        assert!(spec_from_json(&Json::parse("{\"alg\":\"nope\"}").unwrap()).is_err());
        assert!(spec_from_json(&Json::parse("{\"alg\":\"hybrid\"}").unwrap()).is_err());
    }

    #[test]
    fn plans_round_trip_bit_identically() {
        let original = plan();
        let text = original.to_json().to_string();
        let decoded = SweepPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded.seeds_per_cell, original.seeds_per_cell);
        assert_eq!(decoded.base_seed, original.base_seed);
        assert_eq!(decoded.configs, original.configs);
        // Families compare by behaviour: the decoded plan must produce
        // the exact report of the original.
        assert_eq!(decoded.run_with_jobs(1), original.run_with_jobs(1));
    }

    #[test]
    fn fault_budget_families_round_trip() {
        // The actual-fault-budget vocabulary: named families carrying a
        // `limit` knob (f_actual <= t), plus the crash-early and
        // go-silent families.
        let plan = SweepPlan::new(
            vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
            vec![
                AdversaryFamily::random_liar(FaultSelection::without_source().limit(1)),
                AdversaryFamily::crash(FaultSelection::without_source().limit(1), 2),
                AdversaryFamily::silent(FaultSelection::with_source()),
            ],
            2,
        );
        let text = plan.to_json().to_string();
        let decoded = SweepPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded.run_with_jobs(1), plan.run_with_jobs(1));
    }

    #[test]
    fn widened_fault_vocabulary_round_trips() {
        // The trace-era families: partitions, per-edge omission,
        // equivocation schedules, adaptive corruption, and enumerated
        // tapes all travel the wire and reproduce the batch report.
        let plan = SweepPlan::new(
            vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
            vec![
                AdversaryFamily::partition(FaultSelection::with_source().limit(1), 1, 2, 3),
                AdversaryFamily::omission(FaultSelection::without_source(), 2, 1),
                AdversaryFamily::equivocate(FaultSelection::with_source(), 3, 2),
                AdversaryFamily::adaptive(FaultSelection::without_source(), vec![2, 4]),
                AdversaryFamily::tape(
                    vec![sg_sim::ProcessId(1)],
                    vec![Move::AllOne, Move::Silent, Move::FlipFirst],
                )
                .unwrap(),
            ],
            2,
        );
        let text = plan.to_json().to_string();
        let decoded = SweepPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded.run_with_jobs(1), plan.run_with_jobs(1));
    }

    #[test]
    fn recorded_trace_family_round_trips_and_reproduces() {
        // Record one run, wrap the trace as a family, ship it through
        // JSON, and check the replayed grid reproduces the original
        // family's single-seed report bit-exactly.
        let config = SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2);
        let family = AdversaryFamily::equivocate(FaultSelection::with_source(), 3, 1);
        let reference = SweepPlan::new(vec![config], vec![family.clone()], 1).run_with_jobs(1);
        // Seed 0 is what the sweep's seeding scheme hands cell (0, 0)'s
        // first run under the default base seed.
        let mut recorder = sg_adversary::RecordingAdversary::new(family.instantiate(0));
        let run_config = sg_sim::RunConfig::new(config.n, config.t)
            .with_source_value(config.source_value)
            .with_trace();
        let _ = sg_core::execute(config.spec, &run_config, &mut recorder).unwrap();
        let trace = recorder.finish().unwrap();
        let replay_family = AdversaryFamily::replay(trace).unwrap();
        let plan = SweepPlan::new(vec![config], vec![replay_family], 1);
        let text = plan.to_json().to_string();
        let decoded = SweepPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        let replayed = decoded.run_with_jobs(1);
        assert_eq!(replayed.cells[0].samples, reference.cells[0].samples);
    }

    #[test]
    fn legacy_four_field_samples_and_summaries_decode() {
        // Frames recorded before the early-stopping engine: positional
        // 4-element samples, 4 summaries, no early_stop_rate.
        let legacy = "{\"spec_name\":\"optimal-king\",\"n\":7,\"t\":2,\
                      \"adversary\":\"no-faults\",\"first_seed\":0,\
                      \"samples\":[[1,0,60,30,0,false],[1,0,60,30,0,false]],\
                      \"summaries\":[\
                      {\"samples\":2,\"min\":1,\"max\":1,\"mean\":1.0,\"stddev\":0.0},\
                      {\"samples\":2,\"min\":0,\"max\":0,\"mean\":0.0,\"stddev\":0.0},\
                      {\"samples\":2,\"min\":60,\"max\":60,\"mean\":60.0,\"stddev\":0.0},\
                      {\"samples\":2,\"min\":30,\"max\":30,\"mean\":30.0,\"stddev\":0.0}]}";
        let cell = CellReport::from_json(&Json::parse(legacy).unwrap()).unwrap();
        assert_eq!(cell.summaries[4].max, 0, "rounds synthesized from samples");
        assert!((cell.early_stop_rate - 0.0).abs() < f64::EPSILON);
        let short = Sample::from_json(&Json::parse("[1,2,3,4]").unwrap()).unwrap();
        assert_eq!(short.rounds, 0);
        assert!(!short.early_stopped);
        assert!(Sample::from_json(&Json::parse("[1,2,3,4,5]").unwrap()).is_err());
    }

    #[test]
    fn closure_families_have_no_wire_form() {
        let custom = AdversaryFamily::new("custom", |_| Box::new(sg_sim::NoFaults));
        assert_eq!(custom.to_json(), Json::Null);
        assert!(AdversaryFamily::from_json(&Json::Null).is_err());
    }

    #[test]
    fn cell_reports_round_trip() {
        let report = plan().run_with_jobs(2);
        for cell in &report.cells {
            let text = cell.to_json().to_string();
            let back = CellReport::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(&back, cell, "through {text}");
        }
    }

    #[test]
    fn summaries_survive_float_round_trip() {
        let summary = Summary::of([3, 1, 4, 1, 5, 9, 2, 6]);
        let text = summary.to_json().to_string();
        let back = Summary::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "{}",
            "{\"configs\":[],\"adversaries\":3,\"seeds_per_cell\":1,\"base_seed\":0}",
            "{\"configs\":[{\"spec\":{\"alg\":\"hybrid\",\"b\":3},\"n\":10,\"t\":3,\
             \"source_value\":99999,\"trace\":true}],\"adversaries\":[],\
             \"seeds_per_cell\":1,\"base_seed\":0}",
        ] {
            assert!(
                SweepPlan::from_json(&Json::parse(bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
    }
}
