//! Minimal ASCII charts for terminal reports.
//!
//! The repro harness and examples render trade-off curves as horizontal
//! bar charts; log-scale bars keep the Coan model's exponential
//! local-computation column on the same screen as our polynomial ones.

/// A labelled series of non-negative quantities.
#[derive(Clone, PartialEq, Debug)]
pub struct Series {
    /// Series label (e.g. "Algorithm A rounds").
    pub label: String,
    /// One (tick label, value) pair per bar.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates a series from `(tick, value)` pairs.
    pub fn new(label: impl Into<String>, points: impl IntoIterator<Item = (String, f64)>) -> Self {
        Series {
            label: label.into(),
            points: points.into_iter().collect(),
        }
    }
}

/// Renders horizontal bars, linearly scaled to `width` columns.
///
/// # Examples
///
/// ```
/// use sg_analysis::chart::{bar_chart, Series};
///
/// let s = Series::new("rounds", [("b=3".to_string(), 16.0), ("b=4".to_string(), 12.0)]);
/// let text = bar_chart(&[s], 20, false);
/// assert!(text.contains("b=3"));
/// assert!(text.contains('█'));
/// ```
pub fn bar_chart(series: &[Series], width: usize, log_scale: bool) -> String {
    let mut out = String::new();
    let transform = |v: f64| -> f64 {
        if log_scale {
            (v.max(1.0)).log10()
        } else {
            v
        }
    };
    let max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(_, v)| transform(*v)))
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let tick_width = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(t, _)| t.len()))
        .max()
        .unwrap_or(0);
    for s in series {
        out.push_str(&format!(
            "{}{}:\n",
            s.label,
            if log_scale { " (log scale)" } else { "" }
        ));
        for (tick, v) in &s.points {
            let filled = ((transform(*v) / max) * width as f64).round() as usize;
            let filled = filled.min(width);
            out.push_str(&format!(
                "  {tick:<tick_width$}  {}{} {v}\n",
                "█".repeat(filled),
                " ".repeat(width - filled),
            ));
        }
    }
    out
}

/// Renders the per-round largest-message profile of an execution — the
/// picture of the gears shifting. Each bar is one round's largest honest
/// message in values (log scale: EIG levels grow exponentially while king
/// rounds carry one value).
///
/// # Examples
///
/// ```
/// use sg_analysis::chart::message_profile;
/// use sg_core::{execute, AlgorithmSpec};
/// use sg_sim::{NoFaults, RunConfig};
///
/// let config = RunConfig::new(16, 5);
/// let outcome = execute(AlgorithmSpec::Hybrid { b: 3 }, &config, &mut NoFaults)?;
/// let chart = message_profile(&outcome, 40);
/// assert!(chart.contains("r01"));
/// # Ok::<(), sg_core::SpecError>(())
/// ```
pub fn message_profile(outcome: &sg_sim::Outcome, width: usize) -> String {
    let series = Series::new(
        format!(
            "largest message per round, in values ({})",
            outcome.adversary
        ),
        outcome
            .metrics
            .per_round
            .iter()
            .map(|r| (format!("r{:02}", r.round), r.max_message_values as f64)),
    );
    bar_chart(&[series], width, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        Series::new(
            "test",
            [
                ("a".to_string(), 10.0),
                ("bb".to_string(), 5.0),
                ("c".to_string(), 0.0),
            ],
        )
    }

    #[test]
    fn linear_bars_scale_to_max() {
        let text = bar_chart(&[series()], 10, false);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains(&"█".repeat(10)));
        assert!(lines[2].contains(&"█".repeat(5)));
        assert!(!lines[3].contains('█'));
    }

    #[test]
    fn log_scale_compresses_large_ratios() {
        let s = Series::new(
            "wide",
            [("small".to_string(), 10.0), ("huge".to_string(), 1e12)],
        );
        let text = bar_chart(&[s], 12, true);
        // log10: 1 vs 12 -> the small bar still visible (1 column).
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains('█'));
        assert!(lines[2].contains(&"█".repeat(12)));
    }

    #[test]
    fn tick_labels_are_aligned() {
        let text = bar_chart(&[series()], 4, false);
        for line in text.lines().skip(1) {
            // "  " + tick padded to 2 + 2 spaces before bars.
            assert!(line.starts_with("  "));
        }
    }

    #[test]
    fn message_profile_shows_gear_shift() {
        use sg_core::{execute, AlgorithmSpec};
        use sg_sim::{NoFaults, RunConfig};
        let config = RunConfig::new(16, 5);
        let outcome = execute(AlgorithmSpec::Hybrid { b: 3 }, &config, &mut NoFaults).unwrap();
        let chart = message_profile(&outcome, 30);
        // One bar per round, labelled r01..r12.
        assert!(chart.contains("r01"));
        assert!(chart.contains("r12"));
        // The A-phase peak (r04 carries the depth-3 level) dwarfs the
        // C-phase rounds, which carry O(n) values.
        assert!(chart.lines().count() >= 13);
    }

    #[test]
    fn zero_only_series_does_not_divide_by_zero() {
        let s = Series::new("flat", [("x".to_string(), 0.0)]);
        let text = bar_chart(&[s], 8, false);
        assert!(text.contains('x'));
    }
}
