//! Journal-backed sweep execution: content addressing + the warm path.
//!
//! Every sweep cell is a pure function of its *coordinate* — spec, `n`,
//! `t`, adversary family, seed stream, samples per cell — and of the
//! *engine* that executes it. This module derives the two halves of the
//! [`sg_journal`] address from those facts:
//!
//! * [`SweepPlan::cell_key`] fingerprints the coordinate's canonical
//!   wire form (the same [`crate::wire`] encodings `sg-serve/1` and the
//!   scenario format speak, so the address is stable across processes
//!   and machines);
//! * [`engine_epoch`] fingerprints the execution environment: the four
//!   engine fast-path toggles and [`ENGINE_VERSION_TAG`]. Flip any
//!   toggle — or land an engine change that bumps the tag — and every
//!   lookup misses, which is the entire invalidation story.
//!
//! [`SweepPlan::run_with_journal`] is then the incremental executor:
//! partition the grid into hits and misses, compute only the misses
//! (through the *same* chunked parallel executor as a cold run, so the
//! computed bytes are identical), append them, and splice the streams
//! back in grid order. The merged [`SweepReport`] is bit-identical to a
//! cold [`SweepPlan::run`] — same cells, same samples, same
//! fingerprint.
//!
//! Cache discipline is the instance pool's "absent, never wrong": an
//! undecodable payload, a shape mismatch, a closure-built family with no
//! wire form — each demotes the cell to a miss with a structured
//! warning. The journal can only ever save work, not change answers.

use serde::{FromJson, ToJson};
use sg_journal::{CellKey, EngineEpoch, Journal};

use crate::sweep::{CellReport, Fingerprint, SweepPlan, SweepReport};

/// Compiled-in engine version tag, mixed into every [`engine_epoch`].
///
/// Bump this whenever an engine or protocol change may alter sweep
/// bytes (new kernel, changed tally rule, different accounting): the
/// epoch moves, every journal entry written before the change misses,
/// and `sg journal compact` reclaims the dead epoch.
pub const ENGINE_VERSION_TAG: &str = "sg-engine/9";

/// The engine epoch of this process right now: [`epoch_for`] over the
/// live toggle set and [`ENGINE_VERSION_TAG`].
pub fn engine_epoch() -> EngineEpoch {
    epoch_for(
        ENGINE_VERSION_TAG,
        [
            sg_sim::early_stopping_enabled(),
            sg_sim::instance_pooling_enabled(),
            sg_sim::batch_runs_enabled(),
            sg_sim::packed_broadcast_enabled(),
        ],
    )
}

/// Fingerprints an engine configuration: `tag` plus the toggle set
/// (early-stop, instance-pool, batch, packed-broadcast, in that order).
/// Public so invalidation tests can enumerate neighbouring epochs.
pub fn epoch_for(tag: &str, toggles: [bool; 4]) -> EngineEpoch {
    let mut fp = Fingerprint::new();
    fp.mix_bytes(tag.as_bytes());
    for toggle in toggles {
        fp.mix_u64(u64::from(toggle));
    }
    EngineEpoch(fp.value())
}

/// A journal-backed sweep's outcome: the merged report plus the
/// hit/miss split that produced it.
#[derive(Debug)]
pub struct JournalSweep {
    /// The merged report — bit-identical to a cold [`SweepPlan::run`].
    pub report: SweepReport,
    /// Cells streamed from the journal without recomputation.
    pub hits: usize,
    /// Cells computed (and appended) this run.
    pub computed: usize,
    /// Structured validation warnings (undecodable or mismatched cached
    /// payloads that were demoted to misses). Load-time segment warnings
    /// live on [`Journal::warnings`].
    pub warnings: Vec<String>,
}

impl SweepPlan {
    /// The content address of flat cell `cell`, or `None` when the
    /// cell's adversary family was built from closures and has no wire
    /// form — such cells are simply always computed.
    ///
    /// The key fingerprints the canonical JSON wire encodings of the
    /// cell's [`SweepConfig`](crate::SweepConfig) (spec, `n`, `t`,
    /// source value, trace flag) and adversary family, plus the cell's
    /// first seed and the samples-per-cell count — everything that
    /// determines the cell's bytes besides the engine itself, which
    /// [`engine_epoch`] covers.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= cell_count()`.
    pub fn cell_key(&self, cell: usize) -> Option<CellKey> {
        let (ci, ai) = self.cell_coords(cell);
        let family = self.adversaries[ai].to_json();
        if matches!(family, serde::json::Value::Null) {
            return None;
        }
        let mut fp = Fingerprint::new();
        fp.mix_bytes(self.configs[ci].to_json().to_string().as_bytes());
        // A non-JSON byte between the two encodings, so no config text
        // can alias into a family text.
        fp.mix_bytes(&[0xFF]);
        fp.mix_bytes(family.to_string().as_bytes());
        fp.mix_u64(self.seed_for(ci, ai, 0));
        fp.mix_u64(self.seeds_per_cell);
        Some(CellKey(fp.value()))
    }

    /// Looks flat cell `cell` up in `journal` under `epoch` and
    /// validates the payload. `Ok(Some)` is a usable hit, `Ok(None)` a
    /// plain miss (including keyless closure families), and `Err` a
    /// *demoted* miss — a stored entry that decoded badly or described a
    /// different cell, with the structured warning explaining why. The
    /// caller recomputes on `Ok(None)` and `Err` alike; the error never
    /// aborts anything.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= cell_count()`.
    pub fn cached_cell(
        &self,
        journal: &Journal,
        epoch: EngineEpoch,
        cell: usize,
    ) -> Result<Option<CellReport>, String> {
        let Some(key) = self.cell_key(cell) else {
            return Ok(None);
        };
        let Some(doc) = journal.get(key, epoch) else {
            return Ok(None);
        };
        match CellReport::from_json(doc) {
            Ok(cached) if self.cell_shape_matches(cell, &cached) => Ok(Some(cached)),
            Ok(_) => Err(format!(
                "journal: entry {key} decodes to a different cell shape — recomputing"
            )),
            Err(e) => Err(format!(
                "journal: entry {key} payload undecodable ({e}) — recomputing"
            )),
        }
    }

    /// Executes the plan against `journal`: cells already stored under
    /// the current [`engine_epoch`] are streamed back, only the rest are
    /// computed (with `jobs` workers, through the cold path's exact
    /// chunked executor) and appended.
    ///
    /// # Panics
    ///
    /// Panics if the plan is empty or any computed run violates
    /// agreement, exactly like [`SweepPlan::run_with_jobs`].
    pub fn run_with_journal(&self, journal: &mut Journal, jobs: usize) -> JournalSweep {
        assert!(
            !self.configs.is_empty() && !self.adversaries.is_empty() && self.seeds_per_cell > 0,
            "empty sweep plan"
        );
        let epoch = engine_epoch();
        let count = self.cell_count();
        let keys: Vec<Option<CellKey>> = (0..count).map(|c| self.cell_key(c)).collect();
        let mut slots: Vec<Option<CellReport>> = Vec::new();
        slots.resize_with(count, || None);
        let mut warnings = Vec::new();
        for cell in 0..count {
            match self.cached_cell(journal, epoch, cell) {
                Ok(hit) => slots[cell] = hit,
                Err(warning) => warnings.push(warning),
            }
        }
        let misses: Vec<usize> = (0..count).filter(|&c| slots[c].is_none()).collect();
        let computed = self.run_cells_with_jobs(&misses, jobs);
        for (&cell, report) in misses.iter().zip(computed) {
            if let Some(key) = keys[cell] {
                if let Err(e) = journal.append(key, epoch, &report.to_json()) {
                    warnings.push(format!("journal: append of entry {key} failed ({e})"));
                }
            }
            slots[cell] = Some(report);
        }
        let cells: Vec<CellReport> = slots
            .into_iter()
            .map(|slot| slot.expect("every cell is a hit or was computed"))
            .collect();
        JournalSweep {
            report: SweepReport {
                total_runs: self.total_runs(),
                cells,
            },
            hits: count - misses.len(),
            computed: misses.len(),
            warnings,
        }
    }

    /// Belt-and-braces validation of a cached payload against the
    /// plan's expectation for `cell`. The address already covers all of
    /// this; the check exists so that even a key collision (or a
    /// hand-edited store) degrades to a recompute, never a wrong cell.
    fn cell_shape_matches(&self, cell: usize, cached: &CellReport) -> bool {
        let (ci, ai) = self.cell_coords(cell);
        let config = &self.configs[ci];
        cached.spec_name == config.spec.name()
            && cached.n == config.n
            && cached.t == config.t
            && cached.adversary == self.adversaries[ai].name()
            && cached.first_seed == self.seed_for(ci, ai, 0)
            && cached.samples.len() as u64 == self.seeds_per_cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepConfig;
    use crate::AdversaryFamily;
    use sg_adversary::FaultSelection;
    use sg_core::AlgorithmSpec;

    fn plan(seeds: u64) -> SweepPlan {
        SweepPlan::new(
            vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
            vec![AdversaryFamily::random_liar(
                FaultSelection::without_source(),
            )],
            seeds,
        )
    }

    #[test]
    fn keys_are_coordinate_pure() {
        let a = plan(5);
        let b = plan(5);
        assert_eq!(a.cell_key(0), b.cell_key(0));
        assert_ne!(a.cell_key(0), plan(6).cell_key(0), "seed count is keyed");
        assert_ne!(
            a.cell_key(0),
            plan(5).with_base_seed(1).cell_key(0),
            "seed stream is keyed"
        );
    }

    #[test]
    fn closure_families_have_no_key() {
        let plan = SweepPlan::new(
            vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
            vec![AdversaryFamily::new("bespoke", |_seed| {
                Box::new(sg_sim::NoFaults)
            })],
            3,
        );
        assert_eq!(plan.cell_key(0), None);
    }

    #[test]
    fn epoch_moves_with_every_toggle_and_the_tag() {
        let base = epoch_for(ENGINE_VERSION_TAG, [true; 4]);
        assert_ne!(base, epoch_for("sg-engine/next", [true; 4]));
        for flip in 0..4 {
            let mut toggles = [true; 4];
            toggles[flip] = false;
            assert_ne!(base, epoch_for(ENGINE_VERSION_TAG, toggles));
        }
    }
}
