//! The experiment harness: regenerates every table and figure.
//!
//! The paper is a theory paper; its "evaluation" is the set of stated
//! bounds (Proposition 1, Theorems 2–4, the Main Theorem) plus three
//! figures. Each `experiment_*` function runs the relevant algorithm
//! sweep on the simulator under a stress adversary, measures the exact
//! quantities the theorems bound (rounds, message bits, local steps), and
//! tabulates *paper-predicted vs. measured*. `cargo run -p sg-bench --bin
//! repro` prints them all; EXPERIMENTS.md archives the output.

use sg_adversary::{ChainRevealer, FaultSelection};
use sg_core::schedule::{
    algorithm_a_rounds_bound, algorithm_a_rounds_exact, algorithm_b_rounds_bound,
    algorithm_b_rounds_exact,
};
use sg_core::{t_a, t_b, t_c, AlgorithmSpec, HybridSchedule};
use sg_sim::{RunConfig, TraceEvent, Value};

use crate::bounds::{
    blocked_max_message_values, c_max_message_values, exponential_max_message_values,
};
use crate::coan::{coan_local_ops, coan_max_message_values, coan_rounds};
use crate::table::{fmt_count, Table};

/// How big a sweep to run: `Quick` for CI-style tests, `Full` for the
/// repro binary and EXPERIMENTS.md.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Small parameters, seconds.
    Quick,
    /// The full sweeps reported in EXPERIMENTS.md.
    Full,
}

/// Exact measurements from one execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Measured {
    /// Rounds executed.
    pub rounds: usize,
    /// Largest single honest message, in values.
    pub max_message_values: u64,
    /// Largest single honest message, in bits.
    pub max_message_bits: u64,
    /// Total honest traffic in bits.
    pub total_bits: u64,
    /// Largest per-processor local-computation charge.
    pub max_local_ops: u64,
    /// Peak live tree nodes at any processor.
    pub peak_tree_nodes: u64,
}

/// Runs one execution of `spec` under a chain-revealing stress adversary
/// and returns exact measurements.
///
/// # Panics
///
/// Panics if the execution violates agreement or validity — experiments
/// double as correctness checks.
pub fn measure(spec: AlgorithmSpec, n: usize, t: usize, seed: u64) -> Measured {
    let config = RunConfig::new(n, t).with_source_value(Value(1));
    let mut adversary = ChainRevealer::new(FaultSelection::without_source(), 2, 2, seed);
    let outcome = sg_core::execute(spec, &config, &mut adversary)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
    outcome.assert_correct();
    Measured {
        rounds: outcome.rounds_used,
        max_message_values: outcome.metrics.max_message_values(),
        max_message_bits: outcome.metrics.max_message_bits(),
        total_bits: outcome.metrics.total_bits(),
        max_local_ops: outcome.metrics.max_local_ops(),
        peak_tree_nodes: outcome.metrics.peak_tree_nodes,
    }
}

/// Runs a set of measurement cells on the sweep engine's pool (input
/// order preserved, worker count set by `--jobs` /
/// [`crate::sweep::set_jobs`]).
fn measure_cells<T, R, F>(cells: Vec<T>, f: F) -> Vec<(T, R)>
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
{
    crate::sweep::sweep_map(cells, move |cell| {
        let result = f(&cell);
        (cell, result)
    })
}

/// EXP-P1 — Proposition 1: the Exponential Algorithm reaches agreement in
/// `t+1` rounds with messages of `O(n^t)` values.
pub fn experiment_p1(scale: Scale) -> Table {
    let cases: Vec<(usize, usize)> = match scale {
        Scale::Quick => vec![(4, 1), (7, 2)],
        Scale::Full => vec![(4, 1), (7, 2), (10, 3), (13, 4)],
    };
    let mut table = Table::new(
        "EXP-P1 — Proposition 1 (Exponential Algorithm)",
        "Rounds are exactly t+1; the largest message carries the deepest \
         gathered level, (n−1)(n−2)⋯(n−t+1) values — exponential in t.",
        vec![
            "n",
            "t",
            "rounds (paper)",
            "rounds (measured)",
            "max msg values (paper)",
            "max msg values (measured)",
            "max local ops",
        ],
    );
    let results = measure_cells(cases, move |&(n, t)| {
        measure(AlgorithmSpec::Exponential, n, t, 11)
    });
    for ((n, t), m) in results {
        table.push_row(vec![
            n.to_string(),
            t.to_string(),
            (t + 1).to_string(),
            m.rounds.to_string(),
            fmt_count(exponential_max_message_values(n, t)),
            fmt_count(m.max_message_values as u128),
            fmt_count(m.max_local_ops as u128),
        ]);
    }
    table
}

/// EXP-T3 — Theorem 3: Algorithm B's rounds / message-length /
/// local-computation trade-off across `b`.
pub fn experiment_t3(scale: Scale) -> Table {
    let cases: Vec<(usize, usize)> = match scale {
        Scale::Quick => {
            vec![(13, 2), (13, 3)]
        }
        Scale::Full => {
            let mut v = Vec::new();
            for n in [17, 21, 29] {
                let t = t_b(n);
                for b in 2..=t.min(4) {
                    v.push((n, b));
                }
            }
            v
        }
    };
    let mut table = Table::new(
        "EXP-T3 — Theorem 3 (Algorithm B)",
        "t = ⌊(n−1)/4⌋. Measured rounds match the exact schedule and never \
         exceed the bound t+1+⌊(t−1)/(b−1)⌋; the largest message carries \
         O(n^b) bits (level b−1 values); local computation stays polynomial.",
        vec![
            "n",
            "t",
            "b",
            "rounds bound (paper)",
            "rounds (measured)",
            "max msg values (paper)",
            "max msg values (measured)",
            "max local ops",
        ],
    );
    let results = measure_cells(cases, move |&(n, b)| {
        measure(AlgorithmSpec::AlgorithmB { b }, n, t_b(n), 13)
    });
    for ((n, b), m) in results {
        let t = t_b(n);
        assert_eq!(m.rounds, algorithm_b_rounds_exact(t, b));
        table.push_row(vec![
            n.to_string(),
            t.to_string(),
            b.to_string(),
            algorithm_b_rounds_bound(t, b).to_string(),
            m.rounds.to_string(),
            fmt_count(blocked_max_message_values(n, b.min(t))),
            fmt_count(m.max_message_values as u128),
            fmt_count(m.max_local_ops as u128),
        ]);
    }
    table
}

/// EXP-T2 — Theorem 2: Algorithm A's trade-off across `b`.
pub fn experiment_t2(scale: Scale) -> Table {
    let cases: Vec<(usize, usize)> = match scale {
        Scale::Quick => vec![(13, 3), (16, 3)],
        Scale::Full => {
            let mut v = Vec::new();
            for n in [16, 22, 31] {
                let t = t_a(n);
                for b in 3..=t.min(4) {
                    v.push((n, b));
                }
            }
            v
        }
    };
    let mut table = Table::new(
        "EXP-T2 — Theorem 2 (Algorithm A)",
        "t = ⌊(n−1)/3⌋. Measured rounds match the exact schedule and never \
         exceed t+2+2⌊(t−1)/(b−2)⌋; messages carry O(n^b) bits; local \
         computation stays polynomial (vs. Coan's exponential).",
        vec![
            "n",
            "t",
            "b",
            "rounds bound (paper)",
            "rounds (measured)",
            "max msg values (paper)",
            "max msg values (measured)",
            "max local ops",
        ],
    );
    let results = measure_cells(cases, move |&(n, b)| {
        measure(AlgorithmSpec::AlgorithmA { b }, n, t_a(n), 17)
    });
    for ((n, b), m) in results {
        let t = t_a(n);
        assert_eq!(m.rounds, algorithm_a_rounds_exact(t, b));
        table.push_row(vec![
            n.to_string(),
            t.to_string(),
            b.to_string(),
            algorithm_a_rounds_bound(t, b).to_string(),
            m.rounds.to_string(),
            fmt_count(blocked_max_message_values(n, b.min(t))),
            fmt_count(m.max_message_values as u128),
            fmt_count(m.max_local_ops as u128),
        ]);
    }
    table
}

/// EXP-T4 — Theorem 4: Algorithm C runs in `t+1` rounds with `O(n)`-value
/// messages and `O(n^2.5)` local computation.
pub fn experiment_t4(scale: Scale) -> Table {
    let cases: Vec<usize> = match scale {
        Scale::Quick => vec![18, 32],
        Scale::Full => vec![18, 32, 50, 72, 98],
    };
    let mut table = Table::new(
        "EXP-T4 — Theorem 4 (Algorithm C)",
        "t = largest value satisfying Proposition 4's constraints (≈ √(n/2)). \
         Rounds are exactly t+1 and the largest message carries n values — \
         constant in t, linear in n.",
        vec![
            "n",
            "t (≈ √(n/2))",
            "rounds (paper)",
            "rounds (measured)",
            "max msg values (paper)",
            "max msg values (measured)",
            "max local ops",
            "O(n^2.5) bound",
        ],
    );
    let results = measure_cells(cases, move |&n| {
        measure(AlgorithmSpec::AlgorithmC, n, t_c(n), 19)
    });
    for (n, m) in results {
        let t = t_c(n);
        table.push_row(vec![
            n.to_string(),
            t.to_string(),
            (t + 1).to_string(),
            m.rounds.to_string(),
            fmt_count(c_max_message_values(n)),
            fmt_count(m.max_message_values as u128),
            fmt_count(m.max_local_ops as u128),
            fmt_count(crate::bounds::c_local_bound(n)),
        ]);
    }
    table
}

/// EXP-T1 — Main Theorem: the hybrid's rounds match
/// `t + 2⌊(t_AB−1)/(b−2)⌋ + ⌊t_BC/(b−1)⌋ + 4` with `O(n^b)`-bit messages.
pub fn experiment_t1(scale: Scale) -> Table {
    let cases: Vec<(usize, usize)> = match scale {
        Scale::Quick => vec![(13, 3), (16, 3)],
        Scale::Full => {
            let mut v = Vec::new();
            for n in [13, 16, 25, 31] {
                let t = t_a(n);
                for b in 3..=t.min(4) {
                    v.push((n, b));
                }
            }
            v
        }
    };
    let mut table = Table::new(
        "EXP-T1 — Main Theorem (Hybrid A→B→C)",
        "t = ⌊(n−1)/3⌋. Measured rounds equal the Main Theorem's closed \
         form; the phase split (k_AB, k_BC, C rounds) is the schedule of \
         Fig. 3; messages stay O(n^b) bits.",
        vec![
            "n",
            "t",
            "b",
            "t_AB/t_AC",
            "k_AB+k_BC+C",
            "rounds (theorem)",
            "rounds (measured)",
            "max msg values (measured)",
            "max local ops",
        ],
    );
    let results = measure_cells(cases, move |&(n, b)| {
        measure(AlgorithmSpec::Hybrid { b }, n, t_a(n), 23)
    });
    for ((n, b), m) in results {
        let s = HybridSchedule::compute(n, b);
        assert_eq!(m.rounds, s.total_rounds());
        table.push_row(vec![
            n.to_string(),
            s.t.to_string(),
            b.to_string(),
            format!("{}/{}", s.t_ab, s.t_ac),
            format!("{}+{}+{}", s.k_ab, s.k_bc, s.c_rounds),
            s.main_theorem_rounds().to_string(),
            m.rounds.to_string(),
            fmt_count(m.max_message_values as u128),
            fmt_count(m.max_local_ops as u128),
        ]);
    }
    table
}

/// EXP-TRADEOFF — the §1/§4 comparison: rounds vs. message length vs.
/// local computation for A, B, the hybrid and the Coan model.
pub fn experiment_tradeoff(scale: Scale) -> Table {
    let n = match scale {
        Scale::Quick => 13,
        Scale::Full => 21,
    };
    let ta = t_a(n);
    let tb = t_b(n);
    let bs: Vec<usize> = match scale {
        Scale::Quick => vec![3],
        Scale::Full => vec![3, 4, 5],
    };
    let mut table = Table::new(
        "EXP-TRADEOFF — rounds vs. message length vs. local computation",
        format!(
            "n = {n}; Algorithm A and the hybrid run at t = {ta}, Algorithm B \
             and the Coan model at t = {tb}. The shifted families match \
             Coan's rounds/message trade-off while keeping local computation \
             polynomial — the Coan column explodes exponentially in n."
        ),
        vec![
            "b",
            "A rounds",
            "hybrid rounds",
            "B rounds",
            "Coan rounds (model)",
            "max msg values (A/B measured)",
            "A max local ops",
            "B max local ops",
            "Coan local ops (model)",
        ],
    );
    let results = measure_cells(bs, move |&b| {
        let a = measure(AlgorithmSpec::AlgorithmA { b }, n, ta, 29);
        let h = measure(AlgorithmSpec::Hybrid { b }, n, ta, 29);
        let bb = measure(AlgorithmSpec::AlgorithmB { b }, n, tb, 29);
        (a, h, bb)
    });
    for (b, (a, h, bb)) in results {
        // Sanity: our measured biggest broadcast stays within the O(n^b)
        // envelope shared with the Coan model.
        assert!(
            (a.max_message_values.max(bb.max_message_values) as u128)
                <= coan_max_message_values(n, b).max(1) * n as u128,
            "message envelope exceeded at b={b}"
        );
        table.push_row(vec![
            b.to_string(),
            a.rounds.to_string(),
            h.rounds.to_string(),
            bb.rounds.to_string(),
            coan_rounds(tb, b).to_string(),
            fmt_count(a.max_message_values.max(bb.max_message_values) as u128),
            fmt_count(a.max_local_ops as u128),
            fmt_count(bb.max_local_ops as u128),
            fmt_count(coan_local_ops(n, b)),
        ]);
    }
    table
}

/// EXP-DOM — §4.4's dominance claim: at equal `(n, t, b)` the hybrid never
/// needs more rounds than Algorithm A, at identical resilience.
pub fn experiment_dominance(scale: Scale) -> Table {
    let ns: Vec<usize> = match scale {
        Scale::Quick => vec![13, 16],
        Scale::Full => vec![13, 16, 25, 31, 43],
    };
    let mut table = Table::new(
        "EXP-DOM — the hybrid dominates Algorithm A (§4.4)",
        "Both tolerate t = ⌊(n−1)/3⌋ with the same message-size bound; the \
         hybrid saves rounds by shifting into B and then C.",
        vec!["n", "t", "b", "A rounds", "hybrid rounds", "saved"],
    );
    for n in ns {
        let t = t_a(n);
        // Dominance is claimed for b < t: at b = t Algorithm A already
        // degenerates to the optimal (t+1)-round Exponential Algorithm.
        for b in 3..t.min(6) {
            let a = algorithm_a_rounds_exact(t, b);
            let h = HybridSchedule::compute(n, b).total_rounds();
            assert!(h <= a, "hybrid must dominate A at n={n} b={b}");
            table.push_row(vec![
                n.to_string(),
                t.to_string(),
                b.to_string(),
                a.to_string(),
                h.to_string(),
                (a - h).to_string(),
            ]);
        }
    }
    table
}

/// EXP-DETECT — the §4 progress argument: under a one-fault-per-block
/// reveal, how quickly each revealed fault becomes *globally* detected.
pub fn experiment_detect(scale: Scale) -> Table {
    let (n, b) = match scale {
        Scale::Quick => (13, 3),
        Scale::Full => (16, 3),
    };
    let t = t_a(n);
    let config = RunConfig::new(n, t)
        .with_source_value(Value(1))
        .with_trace();
    let mut adversary = ChainRevealer::new(FaultSelection::without_source(), 2, b, 31);
    let outcome = sg_core::execute(AlgorithmSpec::AlgorithmA { b }, &config, &mut adversary)
        .expect("valid spec");
    outcome.assert_correct();

    let correct: Vec<usize> = (0..n)
        .filter(|&i| !outcome.faulty.contains(sg_sim::ProcessId(i)))
        .collect();
    let mut table = Table::new(
        "EXP-DETECT — global fault detection under chain reveal (Algorithm A)",
        format!(
            "n = {n}, t = {t}, b = {b}; fault j starts equivocating in round \
             2+{b}j. A fault is globally detected once every correct \
             processor lists it; masked thereafter, it cannot block a \
             persistent value (the paper's per-block progress argument)."
        ),
        vec![
            "fault",
            "reveals in round",
            "first discovery",
            "globally detected by",
            "discovered by #procs",
        ],
    );
    for (rank, f) in outcome.faulty.iter().enumerate() {
        let mut rounds: Vec<usize> = Vec::new();
        for e in outcome.trace.entries() {
            if let TraceEvent::Discovered { suspect, .. } = &e.event {
                if *suspect == f {
                    rounds.push(e.round);
                }
            }
        }
        let discoverers = rounds.len();
        let first = rounds.iter().min().copied();
        let global = (discoverers >= correct.len()).then(|| rounds.iter().max().copied());
        table.push_row(vec![
            f.to_string(),
            (2 + b * rank).to_string(),
            first.map_or("never".to_string(), |r| r.to_string()),
            global.flatten().map_or("—".to_string(), |r| r.to_string()),
            discoverers.to_string(),
        ]);
    }
    table
}

/// EXP-STAB — the detect-or-persist property in action: the round at
/// which every correct processor's preferred value stops changing, as a
/// function of the *actual* number of faults `f ≤ t`. Proposition 4's
/// progress argument says every round of Algorithm C either globally
/// detects a new fault or yields a persistent value; an equivocating
/// source is therefore caught and masked within one round, and the
/// outcome locks in at round 2 no matter how many co-conspirators exist
/// — far inside the fixed `t+1`-round schedule.
pub fn experiment_stability(scale: Scale) -> Table {
    let (n, spec_name, spec): (usize, &str, fn(usize) -> AlgorithmSpec) = match scale {
        Scale::Quick => (18, "algorithm-c", |_| AlgorithmSpec::AlgorithmC),
        Scale::Full => (50, "algorithm-c", |_| AlgorithmSpec::AlgorithmC),
    };
    let t = t_c(n);
    let mut table = Table::new(
        "EXP-STAB — value stabilization vs. actual fault count",
        format!(
            "{spec_name} at n = {n}, t = {t} under an equivocating source \
             plus f−1 honest-shadowing co-conspirators (f = 0 is \
             fault-free). 'Stable from' is the first round after which no \
             correct processor's preferred value changes again. The source \
             is globally detected and masked within one round of its \
             equivocation (Proposition 4's detect-or-persist step), so the \
             outcome locks in at round 2 regardless of f — far inside the \
             fixed t+1-round schedule."
        ),
        vec!["actual faults f", "rounds (schedule)", "stable from round"],
    );
    let cells: Vec<usize> = (0..=t).collect();
    let results = measure_cells(cells, move |&f| {
        let config = RunConfig::new(n, t)
            .with_source_value(Value(1))
            .with_trace();
        let mut equivocator;
        let mut fault_free = sg_sim::NoFaults;
        let adversary: &mut dyn sg_sim::Adversary = if f == 0 {
            &mut fault_free
        } else {
            equivocator =
                sg_adversary::EquivocatingSource::new(FaultSelection::with_source().limit(f));
            &mut equivocator
        };
        let outcome = sg_core::execute(spec(f), &config, adversary).expect("valid");
        outcome.assert_correct();
        // Last round in which any correct processor's traced preferred
        // value differed from its decision.
        let mut last_unstable = 0usize;
        for (i, decision) in outcome.decisions.iter().enumerate() {
            let Some(decision) = decision else { continue };
            for e in outcome.trace.by(sg_sim::ProcessId(i)) {
                let value = match &e.event {
                    TraceEvent::Preferred { value } => Some(*value),
                    TraceEvent::Shift { preferred, .. } => Some(*preferred),
                    _ => None,
                };
                if let Some(v) = value {
                    if v != *decision {
                        last_unstable = last_unstable.max(e.round);
                    }
                }
            }
        }
        (outcome.rounds_used, last_unstable + 1)
    });
    for (f, (rounds, stable_from)) in results {
        table.push_row(vec![
            f.to_string(),
            rounds.to_string(),
            stable_from.to_string(),
        ]);
    }
    table
}

/// EXP-ES — early-deciding head-room vs. actual fault count (the
/// Dolev–Reischuk–Strong early-stopping lens on the hybrid).
///
/// The schedules are fixed, but the decision value *locks in* early when
/// few faults occur: every block either yields a persistent value or
/// detects-and-masks faults. This sweep varies the number of actually
/// corrupted processors `f` from `0` to `t` under the chain-revealing
/// stress adversary and reports the system-wide lock-in round — the round
/// from which no correct processor's preferred value changes again — and
/// the head-room an early-stopping variant would harvest.
pub fn experiment_early_stopping(scale: Scale) -> Table {
    let (n, b) = match scale {
        Scale::Quick => (10, 3),
        Scale::Full => (16, 3),
    };
    let t = t_a(n);
    let spec = AlgorithmSpec::Hybrid { b };
    let mut table = Table::new(
        "EXP-ES — decision lock-in vs. actual fault count (DRS early-stopping head-room)",
        format!(
            "hybrid(b={b}) at n = {n}, t = {t} under a coordinated adversary \
             (staggered split-brain, source included, one conspirator \
             activating per block) corrupting exactly f processors (f = 0 is \
             fault-free). 'Lock-in' is \
             the first round after which no correct processor's preferred value \
             changes; 'head-room' is the fixed schedule length minus lock-in — \
             the rounds an early-stopping rule (Dolev–Reischuk–Strong 1986, the \
             lineage of Algorithm C) could save. Fault-free runs lock in at \
             round 1 (persistence); attacked runs lock in at the first block \
             boundary, where the shift's conversion restores unanimity — the \
             detect-or-persist structure that makes DRS-style early stopping \
             possible."
        ),
        vec![
            "actual faults f",
            "rounds (schedule)",
            "lock-in round",
            "head-room",
        ],
    );
    let cells: Vec<usize> = (0..=t).collect();
    let results = measure_cells(cells, move |&f| {
        let config = RunConfig::new(n, t)
            .with_source_value(Value(1))
            .with_trace();
        let mut none = sg_sim::NoFaults;
        let mut split;
        let adversary: &mut dyn sg_sim::Adversary = if f == 0 {
            &mut none
        } else {
            split = sg_adversary::StaggeredSplit::new(FaultSelection::with_source().limit(f), 2, b);
            &mut split
        };
        let outcome = sg_core::execute(spec, &config, adversary).expect("valid");
        outcome.assert_correct();
        let report = crate::stability::lock_in(&outcome);
        (
            outcome.rounds_used,
            report.system_lock_in().unwrap_or(0),
            report.headroom().unwrap_or(0),
        )
    });
    for (f, (rounds, lock, headroom)) in results {
        table.push_row(vec![
            f.to_string(),
            rounds.to_string(),
            lock.to_string(),
            headroom.to_string(),
        ]);
    }
    table
}

/// EXP-KING — the §5 king-family extensions against the paper's own
/// algorithms at full `⌊(n−1)/3⌋` resilience.
///
/// Berman–Garay–Perry-style king protocols (the successors §5 surveys)
/// trade rounds for constant-size messages; the A→King shift keeps the
/// paper's fast persistence path while capping the large-message phase at
/// one A block. The shape claim: king messages stay at 1 value for any
/// `n` while A/hybrid messages grow as `O(n^b)`, and the kings pay
/// roughly `3t` rounds for it.
pub fn experiment_king(scale: Scale) -> Table {
    let ns: Vec<usize> = match scale {
        Scale::Quick => vec![10, 16],
        Scale::Full => vec![10, 16, 22, 31],
    };
    let mut table = Table::new(
        "EXP-KING — constant-message king protocols vs. the shifted families (§5)",
        "All algorithms run at t = ⌊(n−1)/3⌋ under the chain-revealing stress \
         adversary. optimal-king is the three-round-per-phase n > 3t Phase King; \
         king-shift(3) runs one Algorithm A block, shifts via resolve', and \
         finishes with optimal-king. King messages stay at O(1) values at every \
         n; the tree algorithms' messages grow polynomially but finish in fewer \
         rounds.",
        vec![
            "n",
            "t",
            "algorithm",
            "rounds",
            "max msg values",
            "total bits",
            "max local ops",
        ],
    );
    let mut cells: Vec<(usize, AlgorithmSpec)> = Vec::new();
    for &n in &ns {
        cells.push((n, AlgorithmSpec::AlgorithmA { b: 3 }));
        cells.push((n, AlgorithmSpec::Hybrid { b: 3 }));
        cells.push((n, AlgorithmSpec::KingShift { b: 3 }));
        cells.push((n, AlgorithmSpec::OptimalKing));
    }
    let results = measure_cells(cells, move |&(n, spec)| measure(spec, n, t_a(n), 13));
    for ((n, spec), m) in results {
        table.push_row(vec![
            n.to_string(),
            t_a(n).to_string(),
            spec.name(),
            m.rounds.to_string(),
            fmt_count(m.max_message_values.into()),
            fmt_count(m.total_bits.into()),
            fmt_count(m.max_local_ops.into()),
        ]);
    }
    table
}

/// EXP-COMPOSE — the shift-composition framework (§6's open question).
///
/// A gallery of compositions fed to the safety validator: accepted ones
/// are executed under the stress adversary and must agree; rejected ones
/// are reported with the violated paper condition.
pub fn experiment_compositions(scale: Scale) -> Table {
    use sg_core::compose::ShiftPlanBuilder;

    let n = 16;
    let t = t_a(n);
    let mut table = Table::new(
        "EXP-COMPOSE — validated shift compositions (§6's open question, operationalized)",
        format!(
            "Each candidate composition at n = {n}, t = {t} is checked against \
             the paper's §4.4 sufficient conditions (detection-ledger entry \
             requirements, terminal conclusiveness). Accepted compositions run \
             under the chain-revealing adversary and must reach agreement; \
             rejected ones report the violated condition. 'A(b=3)x2' means two \
             Algorithm A blocks of 3 gather rounds."
        ),
        vec!["composition", "verdict", "rounds", "agreement"],
    );
    let candidates: Vec<(&str, ShiftPlanBuilder)> = vec![
        (
            "paper hybrid shape",
            ShiftPlanBuilder::new(n, t)
                .a_blocks(3, 2)
                .b_blocks(3, 1)
                .c_tail(4),
        ),
        (
            "A->C (skip B)",
            ShiftPlanBuilder::new(n, t).a_blocks(4, 2).c_tail(2),
        ),
        (
            "A->King",
            ShiftPlanBuilder::new(n, t).a_blocks(3, 1).king_tail(),
        ),
        (
            "mixed-b A(4)->B(2)x2->C",
            ShiftPlanBuilder::new(n, t)
                .a_blocks(4, 1)
                .b_blocks(2, 2)
                .c_tail(3),
        ),
        (
            "terminal exponential-A",
            ShiftPlanBuilder::new(n, t).a_blocks(t, 1),
        ),
        (
            "straight into B (unsafe)",
            ShiftPlanBuilder::new(n, t).b_blocks(3, 3).c_tail(4),
        ),
        (
            "premature C (unsafe)",
            ShiftPlanBuilder::new(n, t).a_blocks(3, 1).c_tail(6),
        ),
        (
            "short C tail (inconclusive)",
            ShiftPlanBuilder::new(n, t).a_blocks(5, 1).c_tail(1),
        ),
    ];
    let full = matches!(scale, Scale::Full);
    for (label, builder) in candidates {
        match builder.build() {
            Ok(composition) => {
                let config = RunConfig::new(n, t).with_source_value(Value(1));
                let mut adversary = ChainRevealer::new(FaultSelection::without_source(), 2, 2, 17);
                let outcome = composition.execute(&config, &mut adversary);
                let agreement = outcome.agreement() && outcome.validity().unwrap_or(true);
                assert!(agreement, "accepted composition {label} must agree");
                table.push_row(vec![
                    label.to_string(),
                    "safe".to_string(),
                    composition.rounds().to_string(),
                    "yes".to_string(),
                ]);
            }
            Err(e) => {
                let verdict = if full {
                    format!("rejected: {e}")
                } else {
                    "rejected".to_string()
                };
                table.push_row(vec![
                    label.to_string(),
                    verdict,
                    "—".to_string(),
                    "—".to_string(),
                ]);
            }
        }
    }
    table
}

/// EXP-F2/F3 — the executable round plans of Figures 2 and 3.
pub fn plan_figures() -> String {
    let mut out = String::new();
    out.push_str(&sg_core::render_plan(
        "Figure 2 — Algorithm B(b=3), t=5 (n=21)",
        &AlgorithmSpec::AlgorithmB { b: 3 }
            .plan(21, 5)
            .expect("plan"),
    ));
    out.push('\n');
    out.push_str(&sg_core::render_plan(
        "Figure 3 — Hybrid(b=3), n=16 (t=5)",
        &AlgorithmSpec::Hybrid { b: 3 }.plan(16, 5).expect("plan"),
    ));
    out
}

/// The rounds-vs-f table: measured `rounds_used` under the crash/silent
/// scenario families at every actual fault count `f ∈ 0..=t`, comparing
/// the static gear plan (`compose[A(b)×k→King]`) against its dynamic
/// counterparts — the same composition with runtime checkpoints
/// ([`sg_core::ShiftPlanBuilder::dynamic`]) and the `dynamic-king` spec —
/// with Dolev–Strong's `min(f+2, t+1)` early-stopping staircase
/// alongside. The scenario adversaries are deterministic (crashes ignore
/// their seed), so each cell is one execution.
pub fn experiment_rounds_vs_f(scale: Scale) -> Table {
    let (n, b) = match scale {
        Scale::Quick => (10, 3),
        Scale::Full => (16, 3),
    };
    let t = t_a(n);
    let blocks = sg_core::dynamic_king_blocks(t, b);
    let static_comp = sg_core::ShiftPlanBuilder::new(n, t)
        .a_blocks(b, blocks)
        .king_tail()
        .build()
        .expect("A-blocks + king tail validate");
    let dynamic_comp = sg_core::ShiftPlanBuilder::new(n, t)
        .a_blocks(b, blocks)
        .king_tail()
        .dynamic()
        .build()
        .expect("dynamic A-blocks + king tail validate");
    let mut table = Table::new(
        "EXP-RF — rounds used vs. actual fault count (static vs dynamic gear plans)",
        format!(
            "n = {n}, t = {t}, b = {b}: the crash (silent from round 2), \
             silent (never speak) and chain-revealer (staged lies that force \
             tree discoveries) families corrupting exactly f processors — \
             the actual-fault-budget knob of the expedite question. \
             'dolev-strong' is the authenticated baseline whose quiescence \
             rule pins the min(f+2, t+1) lemma; \
             'compose[A(b)x{blocks}->King]' is the static gear plan (its tree \
             prefix never stops early); 'dynamic' is the same composition \
             with runtime checkpoints, and 'dynamic-king' the spec-level \
             dynamic hybrid — both shift into the king tail as soon as a \
             block under-delivers fault detections, so quiet adversaries \
             (crash/silent, and any f << t) surrender the worst-case prefix \
             immediately, while detection-forcing ones hold it longer."
        ),
        vec![
            "family",
            "f",
            "min(f+2,t+1)",
            "dolev-strong",
            "static compose",
            "dynamic compose",
            "dynamic-king",
        ],
    );
    let cells: Vec<(usize, usize)> = (0..3usize)
        .flat_map(|family| (0..=t).map(move |f| (family, f)))
        .collect();
    let results = measure_cells(cells, move |&(family, f)| {
        let config = RunConfig::new(n, t)
            .with_source_value(Value(1))
            .with_trace();
        let adversary = || -> Box<dyn sg_sim::Adversary> {
            let sel = FaultSelection::without_source().limit(f);
            match family {
                0 => Box::new(sg_adversary::Crash::new(sel, 2)),
                1 => Box::new(sg_adversary::Silent::new(sel)),
                // The detection-forcing contrast: staged reveals keep
                // blocks delivering discoveries, so the dynamic plans
                // hold their prefix longer as f grows.
                _ => Box::new(ChainRevealer::new(sel, 2, 2, 7)),
            }
        };
        let run = |spec: AlgorithmSpec| {
            let outcome = sg_core::execute(spec, &config, adversary().as_mut()).expect("valid");
            outcome.assert_correct();
            outcome.rounds_used
        };
        let compose = |comp: &sg_core::ShiftComposition| {
            let outcome = comp.execute(&config, adversary().as_mut());
            outcome.assert_correct();
            outcome.rounds_used
        };
        (
            run(AlgorithmSpec::DolevStrong),
            compose(&static_comp),
            compose(&dynamic_comp),
            run(AlgorithmSpec::DynamicKing { b }),
        )
    });
    for ((family, f), (ds, stat, dynamic, dyn_king)) in results {
        let family = ["crash", "silent", "chain-revealer"][family];
        table.push_row(vec![
            family.to_string(),
            f.to_string(),
            (f + 2).min(t + 1).to_string(),
            ds.to_string(),
            stat.to_string(),
            dynamic.to_string(),
            dyn_king.to_string(),
        ]);
    }
    table
}

/// Every tabulated experiment at the given scale, in presentation order.
pub fn all_experiments(scale: Scale) -> Vec<Table> {
    vec![
        experiment_p1(scale),
        experiment_t2(scale),
        experiment_t3(scale),
        experiment_t4(scale),
        experiment_t1(scale),
        experiment_tradeoff(scale),
        experiment_dominance(scale),
        experiment_detect(scale),
        experiment_stability(scale),
        experiment_early_stopping(scale),
        experiment_king(scale),
        experiment_compositions(scale),
        experiment_rounds_vs_f(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiments_produce_tables() {
        for table in all_experiments(Scale::Quick) {
            assert!(!table.rows.is_empty(), "{} empty", table.title);
        }
    }

    #[test]
    fn plan_figures_cover_both_figures() {
        let text = plan_figures();
        assert!(text.contains("Figure 2"));
        assert!(text.contains("Figure 3"));
        assert!(text.contains("resolve'"));
    }
}
