//! Plain-text / markdown tables for experiment reports.

use std::fmt;

/// A rectangular report table with a title and caption.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Table {
    /// Table identifier (e.g. "EXP-T3 — Theorem 3, Algorithm B").
    pub title: String,
    /// One-paragraph caption explaining what the table shows.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells; each row must have `headers.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, caption: impl Into<String>, headers: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            caption: caption.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as RFC-4180-style CSV (header row first; cells containing
    /// commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n{}\n\n", self.title, self.caption);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Fixed-width text rendering for terminals.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", self.caption)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a large count with thousands separators for readability.
pub fn fmt_count(x: u128) -> String {
    let digits = x.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_header_rule_and_rows() {
        let mut t = Table::new("T", "caption", vec!["a", "b"]);
        t.push_row(vec!["1".to_string(), "2".to_string()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T", "c", vec!["a", "b"]);
        t.push_row(vec!["1".to_string()]);
    }

    #[test]
    fn counts_are_separated() {
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(12), "12");
    }

    #[test]
    fn csv_quotes_awkward_cells() {
        let mut t = Table::new("T", "c", vec!["a", "b"]);
        t.push_row(vec!["1,5".to_string(), "say \"hi\"".to_string()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n");
        assert_eq!(fmt_count(0), "0");
    }

    #[test]
    fn display_renders_fixed_width() {
        let mut t = Table::new("T", "c", vec!["col", "x"]);
        t.push_row(vec!["longer".to_string(), "1".to_string()]);
        let text = t.to_string();
        assert!(text.contains("longer"));
        assert!(text.contains("---"));
    }
}
