//! Monte-Carlo sweeps: distributions over randomized adversaries.
//!
//! The paper's bounds are worst-case; this module measures the *typical*
//! case by running many seeded executions and summarizing the spread.
//! Round counts are fixed by the schedules, but lock-in rounds, fault
//! discoveries, and traffic all depend on what the adversary does — their
//! distributions quantify how far typical executions sit from the
//! worst-case bounds the paper proves.

use sg_adversary::FaultSelection;
use sg_core::AlgorithmSpec;
use sg_sim::{Outcome, TraceEvent};

use crate::stability::lock_in;
use crate::sweep::{AdversaryFamily, SweepConfig, SweepPlan};

/// Summary statistics of a sample of non-negative integers.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Summary {
    /// Number of samples.
    pub samples: usize,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Summarizes `values` in one streaming pass (Welford's online
    /// moments), so callers can feed iterators of any size without an
    /// intermediate buffer.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty — an empty experiment is a bug, not a
    /// statistic.
    pub fn of<I: IntoIterator<Item = u64>>(values: I) -> Summary {
        let mut samples = 0usize;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for v in values {
            samples += 1;
            min = min.min(v);
            max = max.max(v);
            let x = v as f64;
            let delta = x - mean;
            mean += delta / samples as f64;
            m2 += delta * (x - mean);
        }
        assert!(samples > 0, "cannot summarize an empty sample");
        Summary {
            samples,
            min,
            max,
            mean,
            stddev: (m2 / samples as f64).sqrt(),
        }
    }

    /// Renders as `min/mean±stddev/max`.
    pub fn render(&self) -> String {
        format!(
            "{}/{:.1}±{:.1}/{}",
            self.min, self.mean, self.stddev, self.max
        )
    }
}

/// One execution's sampled quantities.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Sample {
    /// System-wide decision lock-in round (see [`crate::stability`]).
    pub lock_in: u64,
    /// Number of (discoverer, suspect) fault-discovery events among
    /// correct processors.
    pub discoveries: u64,
    /// Total honest traffic in bits.
    pub total_bits: u64,
    /// Largest per-processor local-computation charge.
    pub max_local_ops: u64,
    /// Rounds actually executed (`Outcome::rounds_used`): equals the
    /// static schedule unless the run early-stopped.
    pub rounds: u64,
    /// Whether the run terminated before its static schedule ended.
    pub early_stopped: bool,
}

/// Extracts a [`Sample`] from a traced outcome.
pub fn sample_of(outcome: &Outcome) -> Sample {
    let discoveries = outcome
        .trace
        .entries()
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::Discovered { .. }))
        .count() as u64;
    Sample {
        lock_in: lock_in(outcome).system_lock_in().unwrap_or(0) as u64,
        discoveries,
        total_bits: outcome.metrics.total_bits(),
        max_local_ops: outcome.metrics.max_local_ops(),
        rounds: outcome.rounds_used as u64,
        early_stopped: outcome.early_stopped,
    }
}

/// Distribution of [`Sample`]s for `spec` over `seeds` random-liar
/// executions (faulty set includes the source, so validity is stressed
/// where it is vacuous and agreement everywhere).
///
/// Runs on the parallel sweep engine ([`crate::sweep`]); the single-cell
/// plan's seed stream starts at 0, so run `i` sees adversary seed `i` —
/// the exact seeds the original sequential loop used — and the returned
/// samples are in seed order regardless of worker count.
///
/// # Panics
///
/// Panics if any execution violates agreement, or `seeds` is 0.
pub fn random_liar_sweep(spec: AlgorithmSpec, n: usize, t: usize, seeds: u64) -> Vec<Sample> {
    assert!(seeds > 0, "need at least one seed");
    let plan = SweepPlan::new(
        vec![SweepConfig::traced(spec, n, t)],
        vec![AdversaryFamily::random_liar(FaultSelection::with_source())],
        seeds,
    );
    let mut report = plan.run();
    report.cells.swap_remove(0).samples
}

/// Summaries (lock-in, discoveries, bits, ops, rounds) of a sample set.
pub fn summarize(samples: &[Sample]) -> [Summary; 5] {
    [
        Summary::of(samples.iter().map(|s| s.lock_in)),
        Summary::of(samples.iter().map(|s| s.discoveries)),
        Summary::of(samples.iter().map(|s| s.total_bits)),
        Summary::of(samples.iter().map(|s| s.max_local_ops)),
        Summary::of(samples.iter().map(|s| s.rounds)),
    ]
}

/// Fraction of `samples` whose run terminated before its schedule ended
/// (0.0 for an empty slice).
pub fn early_stop_rate(samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|s| s.early_stopped).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics_are_exact() {
        let s = Summary::of([2u64, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(s.samples, 8);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 9);
        assert!((s.mean - 5.0).abs() < 1e-9);
        assert!((s.stddev - 2.0).abs() < 1e-9);
        assert_eq!(s.render(), "2/5.0±2.0/9");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_summary_panics() {
        let _ = Summary::of(Vec::<u64>::new());
    }

    #[test]
    fn random_liar_sweep_is_deterministic_per_seed() {
        let a = random_liar_sweep(AlgorithmSpec::Exponential, 7, 2, 4);
        let b = random_liar_sweep(AlgorithmSpec::Exponential, 7, 2, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn hybrid_lock_in_distribution_sits_inside_schedule() {
        let samples = random_liar_sweep(AlgorithmSpec::Hybrid { b: 3 }, 13, 4, 6);
        let [lock, disc, bits, ops, rounds] = summarize(&samples);
        let schedule = AlgorithmSpec::Hybrid { b: 3 }.rounds(13, 4) as u64;
        assert!(lock.max <= schedule);
        assert!(disc.max >= disc.min);
        assert!(bits.min > 0);
        assert!(ops.min > 0);
        // The hybrid is a tree algorithm: it never stops early.
        assert_eq!(rounds.min, schedule);
        assert_eq!(rounds.max, schedule);
        assert!((early_stop_rate(&samples) - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn early_stop_rate_counts_expedited_runs() {
        assert!((early_stop_rate(&[]) - 0.0).abs() < f64::EPSILON);
        let samples = random_liar_sweep(AlgorithmSpec::OptimalKing, 7, 2, 4);
        // Source-faulty random liars still let correct processors lock
        // quickly at n = 7, t = 2; at minimum the rate is well-defined.
        let rate = early_stop_rate(&samples);
        assert!((0.0..=1.0).contains(&rate));
        let [.., rounds] = summarize(&samples);
        assert!(rounds.max <= AlgorithmSpec::OptimalKing.rounds(7, 2) as u64);
    }
}
