//! # sg-analysis — bounds, the Coan model, and the experiment harness
//!
//! The quantitative half of the reproduction: closed-form predictions for
//! every bound the paper states (Proposition 1, Theorems 2–4, the Main
//! Theorem), an analytical model of Coan's families for the §1/§4
//! trade-off comparison, and the experiment harness that regenerates
//! every table and figure as *paper-predicted vs. measured* tables (see
//! EXPERIMENTS.md and `cargo run -p sg-bench --bin repro`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod chart;
pub mod coan;
pub mod experiments;
pub mod journal;
pub mod montecarlo;
pub mod scenario;
pub mod stability;
pub mod sweep;
pub mod table;
pub mod wire;

pub use experiments::{all_experiments, measure, plan_figures, Measured, Scale};
pub use journal::{engine_epoch, epoch_for, JournalSweep, ENGINE_VERSION_TAG};
pub use montecarlo::{early_stop_rate, random_liar_sweep, sample_of, summarize, Sample, Summary};
pub use scenario::{Scenario, ScenarioError, Verdict, SCENARIO_SCHEMA};
pub use stability::{lock_in, StabilityReport};
pub use sweep::{
    set_jobs, sweep_map, AdversaryFamily, CellCursor, CellReport, Fingerprint, SweepConfig,
    SweepPlan, SweepReport,
};
pub use table::{fmt_count, Table};

/// Integer square root (floor) over `u128`, used by the `O(n^2.5)` bound.
pub fn isqrt_u128(x: u128) -> u128 {
    if x < 2 {
        return x;
    }
    let mut r = (x as f64).sqrt() as u128;
    while (r + 1) * (r + 1) <= x {
        r += 1;
    }
    while r * r > x {
        r -= 1;
    }
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn isqrt_u128_exact() {
        for x in 0..500u128 {
            let r = super::isqrt_u128(x);
            assert!(r * r <= x && (r + 1) * (r + 1) > x);
        }
    }
}
