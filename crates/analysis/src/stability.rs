//! Decision lock-in analysis — the early-stopping lens on executions.
//!
//! The paper's Algorithm C descends from Dolev, Reischuk & Strong's
//! *Early Stopping in Byzantine Agreement* (1986), whose theme is that the
//! `t + 1`-round worst case is only needed when `t` faults actually
//! occur: with `f < t` faults, agreement can be reached in `min(f+2, t+1)`
//! rounds. The paper's algorithms run fixed schedules, but their
//! *detect-or-persist* structure (§4) means the eventual decision value
//! usually **locks in** long before the schedule ends — every block either
//! produces a persistent value (which never changes again) or detects
//! faults (whose masking hastens persistence).
//!
//! This module measures that lock-in from execution traces: for each
//! correct processor, the first round after which its preferred value
//! never differs from its eventual decision. The gap between the lock-in
//! round and the schedule length is exactly the head-room an
//! early-stopping variant (à la DRS) would harvest.

use sg_sim::{Outcome, ProcessId, TraceEvent, Value};

/// Per-execution lock-in report; build with [`lock_in`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StabilityReport {
    /// Lock-in round per processor: the first round from which the traced
    /// preferred value always equals the decision. `None` for faulty
    /// processors (no decision) and untraced runs.
    pub per_processor: Vec<Option<usize>>,
    /// Rounds the schedule ran.
    pub rounds_total: usize,
}

impl StabilityReport {
    /// The last correct processor's lock-in round (the system-wide
    /// stabilization point), if any processor was traced.
    pub fn system_lock_in(&self) -> Option<usize> {
        self.per_processor.iter().flatten().copied().max()
    }

    /// The earliest lock-in round among correct processors.
    pub fn first_lock_in(&self) -> Option<usize> {
        self.per_processor.iter().flatten().copied().min()
    }

    /// Rounds of head-room an early-stopping rule could harvest:
    /// schedule length minus the system lock-in.
    pub fn headroom(&self) -> Option<usize> {
        self.system_lock_in()
            .map(|l| self.rounds_total.saturating_sub(l))
    }
}

/// The preferred-value snapshots a processor emitted, in round order:
/// `Preferred` events and the post-shift values of `Shift` events.
fn preferred_snapshots<'a>(
    outcome: &'a Outcome,
    who: ProcessId,
) -> impl Iterator<Item = (usize, Value)> + 'a {
    outcome.trace.by(who).filter_map(|e| match &e.event {
        TraceEvent::Preferred { value } => Some((e.round, *value)),
        TraceEvent::Shift { preferred, .. } => Some((e.round, *preferred)),
        _ => None,
    })
}

/// Computes the lock-in report for a traced execution.
///
/// A processor with no snapshots (tracing disabled, or a faulty slot)
/// reports `None`. Snapshots only appear in rounds where the preferred
/// value *can* change (round 1, conversions, Algorithm C rounds, king
/// rounds), so the computed lock-in is exact for every protocol in this
/// crate family.
pub fn lock_in(outcome: &Outcome) -> StabilityReport {
    let n = outcome.config.n;
    let mut per_processor = vec![None; n];
    for i in 0..n {
        let Some(decision) = outcome.decisions[i] else {
            continue;
        };
        // A preferred value persists until the *next* snapshot (tree
        // roots only change at conversions), so the lock-in round is the
        // round of the first snapshot after the last divergent one —
        // computed in one allocation-free pass: a divergent snapshot
        // clears the candidate, the first agreeing snapshot after it
        // becomes the new candidate.
        let mut any = false;
        let mut candidate: Option<usize> = None;
        for (round, value) in preferred_snapshots(outcome, ProcessId(i)) {
            any = true;
            if value != decision {
                candidate = None;
            } else if candidate.is_none() {
                candidate = Some(round);
            }
        }
        if any {
            // No agreeing snapshot after the last divergence: the value
            // only settles when the schedule ends.
            per_processor[i] = Some(candidate.unwrap_or(outcome.rounds_used));
        }
    }
    StabilityReport {
        per_processor,
        rounds_total: outcome.rounds_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_adversary::{ChainRevealer, FaultSelection};
    use sg_core::{execute, AlgorithmSpec};
    use sg_sim::{NoFaults, RunConfig};

    #[test]
    fn fault_free_run_locks_in_at_round_one() {
        let config = RunConfig::new(10, 3)
            .with_source_value(Value(1))
            .with_trace();
        let outcome = execute(AlgorithmSpec::Exponential, &config, &mut NoFaults).unwrap();
        let report = lock_in(&outcome);
        // Every correct processor's first and only preferred value is the
        // source's, set in round 1.
        assert_eq!(report.system_lock_in(), Some(1));
        assert_eq!(report.first_lock_in(), Some(1));
        assert_eq!(report.headroom(), Some(outcome.rounds_used - 1));
    }

    #[test]
    fn untraced_run_reports_none() {
        let config = RunConfig::new(7, 2);
        let outcome = execute(AlgorithmSpec::Exponential, &config, &mut NoFaults).unwrap();
        let report = lock_in(&outcome);
        assert_eq!(report.system_lock_in(), None);
        assert_eq!(report.headroom(), None);
    }

    #[test]
    fn faulty_processors_have_no_lock_in() {
        let config = RunConfig::new(10, 3).with_trace();
        let mut adversary = ChainRevealer::new(FaultSelection::without_source(), 2, 2, 5);
        let outcome = execute(AlgorithmSpec::Exponential, &config, &mut adversary).unwrap();
        let report = lock_in(&outcome);
        for f in outcome.faulty.iter() {
            assert_eq!(report.per_processor[f.index()], None);
        }
        assert!(report.system_lock_in().is_some());
    }

    #[test]
    fn lock_in_never_exceeds_schedule() {
        for spec in [
            AlgorithmSpec::AlgorithmC,
            AlgorithmSpec::Hybrid { b: 3 },
            AlgorithmSpec::OptimalKing,
        ] {
            let (n, t) = match spec {
                AlgorithmSpec::AlgorithmC => (18, 3),
                _ => (16, 5),
            };
            let config = RunConfig::new(n, t).with_trace();
            let mut adversary = ChainRevealer::new(FaultSelection::without_source(), 2, 2, 9);
            let outcome = execute(spec, &config, &mut adversary).unwrap();
            let report = lock_in(&outcome);
            let lock = report.system_lock_in().unwrap();
            assert!(lock <= outcome.rounds_used, "{}: {lock}", spec.name());
        }
    }
}
