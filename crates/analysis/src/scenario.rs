//! Recorded scenarios: one run, its adversary trace, and its verdict.
//!
//! A [`Scenario`] (schema `sg-scenario/1`) is the committed-artifact
//! form of one execution: the cell configuration, the full
//! [`AdversaryTrace`] of the faulty behaviour, and the [`Verdict`] the
//! run produced. [`record`] captures one while the wrapped strategy
//! plays; [`replay`] re-executes the trace and returns the fresh
//! verdict, so callers (the `sg replay` subcommand, the corpus
//! regression test, CI's `scenario-corpus` job) can assert that a
//! recorded violation or survival still reproduces bit-exactly.
//!
//! Replay drives [`sg_core::execute`] directly — *not* the sweep
//! executor, which asserts agreement and would turn a recorded
//! violation into a panic. Scenarios are exactly the place where
//! disagreement is a legitimate, preservable result.

use std::sync::Arc;

use serde::json::{JsonError, Value as Json};
use serde::{FromJson, ToJson};
use sg_adversary::{AdversaryTrace, RecordingAdversary, ReplayAdversary, TraceError};
use sg_core::SpecError;
use sg_sim::{Adversary, Outcome, RunConfig, Value};

use crate::montecarlo::{sample_of, Sample};
use crate::SweepConfig;

/// Schema tag for the serialized scenario form.
pub const SCENARIO_SCHEMA: &str = "sg-scenario/1";

/// What one run concluded — the complete drift-detection surface for a
/// replayed scenario. `sample` carries the fingerprint-relevant metrics
/// ([`sample_of`]), so bit-exact reproduction is checked with plain
/// equality.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// Whether all correct processors agreed.
    pub agreement: bool,
    /// The validity condition; `None` when the source was faulty.
    pub validity: Option<bool>,
    /// The common decision, if agreement held.
    pub decision: Option<Value>,
    /// Rounds actually executed.
    pub rounds_used: usize,
    /// Whether the run stopped before its static schedule.
    pub early_stopped: bool,
    /// The fingerprint-relevant metric sample of the run.
    pub sample: Sample,
}

impl Verdict {
    /// Extracts the verdict of a finished run.
    pub fn of(outcome: &Outcome) -> Verdict {
        Verdict {
            agreement: outcome.agreement(),
            validity: outcome.validity(),
            decision: outcome.decision(),
            rounds_used: outcome.rounds_used,
            early_stopped: outcome.early_stopped,
            sample: sample_of(outcome),
        }
    }
}

impl ToJson for Verdict {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("agreement".to_string(), Json::Bool(self.agreement)),
            (
                "validity".to_string(),
                match self.validity {
                    None => Json::Null,
                    Some(v) => Json::Bool(v),
                },
            ),
            (
                "decision".to_string(),
                match self.decision {
                    None => Json::Null,
                    Some(v) => Json::from(u64::from(v.raw())),
                },
            ),
            ("rounds_used".to_string(), Json::from(self.rounds_used)),
            ("early_stopped".to_string(), Json::Bool(self.early_stopped)),
            ("sample".to_string(), self.sample.to_json()),
        ])
    }
}

impl FromJson for Verdict {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let agreement = v
            .need("agreement")?
            .as_bool()
            .ok_or_else(|| JsonError::msg("'agreement' must be a boolean"))?;
        let validity = match v.need("validity")? {
            Json::Null => None,
            other => Some(
                other
                    .as_bool()
                    .ok_or_else(|| JsonError::msg("'validity' must be a boolean or null"))?,
            ),
        };
        let decision = match v.need("decision")? {
            Json::Null => None,
            other => Some(Value(
                other
                    .as_usize()
                    .and_then(|raw| u16::try_from(raw).ok())
                    .ok_or_else(|| JsonError::msg("'decision' must fit u16 or be null"))?,
            )),
        };
        let rounds_used = v
            .need("rounds_used")?
            .as_usize()
            .ok_or_else(|| JsonError::msg("'rounds_used' must be an integer"))?;
        let early_stopped = v
            .need("early_stopped")?
            .as_bool()
            .ok_or_else(|| JsonError::msg("'early_stopped' must be a boolean"))?;
        let sample = Sample::from_json(v.need("sample")?)?;
        Ok(Verdict {
            agreement,
            validity,
            decision,
            rounds_used,
            early_stopped,
            sample,
        })
    }
}

/// One recorded execution: configuration + adversary trace + verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// The cell the run executed (spec, n, t, source value, tracing).
    pub config: SweepConfig,
    /// The verdict the recorded run produced.
    pub verdict: Verdict,
    /// The complete faulty behaviour of the run.
    pub trace: AdversaryTrace,
}

/// Failure of scenario recording or replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The cell configuration cannot run (spec validation failed).
    Spec(String),
    /// The trace could not be recorded, validated, or replayed.
    Trace(TraceError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Spec(detail) => write!(f, "invalid scenario config: {detail}"),
            ScenarioError::Trace(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<TraceError> for ScenarioError {
    fn from(err: TraceError) -> Self {
        ScenarioError::Trace(err)
    }
}

impl From<SpecError> for ScenarioError {
    fn from(err: SpecError) -> Self {
        ScenarioError::Spec(err.to_string())
    }
}

fn run_config(config: &SweepConfig) -> RunConfig {
    let rc = RunConfig::new(config.n, config.t).with_source_value(config.source_value);
    if config.trace {
        rc.with_trace()
    } else {
        rc
    }
}

/// Executes `config` against `adversary`, recording the run into a
/// [`Scenario`].
///
/// The recorded run is bit-identical to an unrecorded one (the recorder
/// forwards every adversary call unchanged), so the captured verdict is
/// exactly what the bare strategy would have produced.
///
/// # Errors
///
/// Returns [`ScenarioError::Spec`] if the cell cannot run and
/// [`ScenarioError::Trace`] if the strategy's behaviour has no
/// serializable form (signed-relay payloads).
pub fn record(
    config: &SweepConfig,
    adversary: Box<dyn Adversary>,
) -> Result<(Scenario, Outcome), ScenarioError> {
    let mut recorder = RecordingAdversary::new(adversary);
    let outcome = sg_core::execute(config.spec, &run_config(config), &mut recorder)?;
    let trace = recorder.finish()?;
    let scenario = Scenario {
        config: *config,
        verdict: Verdict::of(&outcome),
        trace,
    };
    Ok((scenario, outcome))
}

/// Re-executes a scenario's trace and returns the fresh verdict.
///
/// Callers compare the returned verdict against `scenario.verdict` to
/// detect drift; the run itself never panics on a damaged trace — any
/// divergence from the recorded call sequence surfaces as
/// [`ScenarioError::Trace`].
///
/// # Errors
///
/// Returns [`ScenarioError::Trace`] for a malformed trace or a replay
/// desync, [`ScenarioError::Spec`] if the cell cannot run.
pub fn replay(scenario: &Scenario) -> Result<Verdict, ScenarioError> {
    let mut replayer = ReplayAdversary::new(Arc::new(scenario.trace.clone()))?;
    let outcome = sg_core::execute(
        scenario.config.spec,
        &run_config(&scenario.config),
        &mut replayer,
    )?;
    replayer.verify()?;
    Ok(Verdict::of(&outcome))
}

impl ToJson for Scenario {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::from(SCENARIO_SCHEMA)),
            ("config".to_string(), self.config.to_json()),
            ("verdict".to_string(), self.verdict.to_json()),
            ("trace".to_string(), self.trace.to_json()),
        ])
    }
}

impl FromJson for Scenario {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let schema = v
            .need("schema")?
            .as_str()
            .ok_or_else(|| JsonError::msg("scenario schema must be a string"))?;
        if schema != SCENARIO_SCHEMA {
            return Err(JsonError::msg(format!(
                "unsupported scenario schema {schema:?} (want {SCENARIO_SCHEMA:?})"
            )));
        }
        Ok(Scenario {
            config: SweepConfig::from_json(v.need("config")?)?,
            verdict: Verdict::from_json(v.need("verdict")?)?,
            trace: AdversaryTrace::from_json(v.need("trace")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_adversary::{Equivocate, FaultSelection, Move, TapeAdversary};
    use sg_core::AlgorithmSpec;
    use sg_sim::ProcessId;

    fn cell() -> SweepConfig {
        SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)
    }

    #[test]
    fn record_then_replay_reproduces_the_verdict() {
        let adversary = Box::new(Equivocate::new(FaultSelection::with_source(), 3, 1));
        let (scenario, outcome) = record(&cell(), adversary).unwrap();
        assert_eq!(scenario.verdict, Verdict::of(&outcome));
        assert_eq!(replay(&scenario).unwrap(), scenario.verdict);
    }

    #[test]
    fn scenario_json_round_trip_preserves_replay() {
        let adversary = Box::new(
            TapeAdversary::new(
                [ProcessId(0), ProcessId(1)],
                vec![Move::AllOne, Move::Silent, Move::Garbage],
            )
            .unwrap(),
        );
        let (scenario, _) = record(&cell(), adversary).unwrap();
        let text = scenario.to_json().to_string();
        let parsed = Scenario::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, scenario);
        assert_eq!(replay(&parsed).unwrap(), scenario.verdict);
    }

    #[test]
    fn truncated_trace_is_a_structured_error() {
        let adversary = Box::new(Equivocate::new(FaultSelection::without_source(), 3, 1));
        let (mut scenario, _) = record(&cell(), adversary).unwrap();
        scenario
            .trace
            .steps
            .truncate(scenario.trace.steps.len() / 2);
        match replay(&scenario) {
            Err(ScenarioError::Trace(TraceError::Desync(_))) => {}
            other => panic!("expected a desync error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_schema_rejected() {
        let adversary = Box::new(Equivocate::new(FaultSelection::without_source(), 3, 1));
        let (scenario, _) = record(&cell(), adversary).unwrap();
        let mut json = scenario.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::from("sg-scenario/9");
        }
        assert!(Scenario::from_json(&json).is_err());
    }
}
