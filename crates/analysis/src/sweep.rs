//! The parallel sweep engine: `configs × adversaries × seeds` fan-out.
//!
//! Every empirical result in this reproduction is a *sweep* — many
//! independent executions of `(algorithm, n, t)` cells against adversary
//! strategies over seed ranges, reduced to summary statistics. This
//! module is the one place that fan-out happens: a [`SweepPlan`]
//! describes the grid, [`SweepPlan::run`] executes it on a rayon pool
//! sized by [`set_jobs`] (the CLI's `--jobs` flag), and the resulting
//! [`SweepReport`] is **bit-identical regardless of thread count** (see
//! `tests/sweep_determinism.rs`).
//!
//! # Deterministic seeding scheme
//!
//! Parallel determinism requires that the seed a run sees depends only on
//! its *grid coordinates*, never on scheduling order. Each `(config,
//! adversary)` cell owns an independent seed stream:
//!
//! ```text
//! stream(ci, ai) = base_seed ⊕ (ci · 0x9E3779B97F4A7C15) ⊕ (ai · 0xBF58476D1CE4E5B9)
//! seed(ci, ai, si) = stream(ci, ai) + si          (wrapping)
//! ```
//!
//! where `ci`/`ai` are the config/adversary indices and `si` the run
//! index within the cell. With the default `base_seed = 0` and a
//! single-cell plan, run `si` sees seed `si` exactly — preserving the
//! seed semantics of the original sequential `random_liar_sweep`.
//! Results are collected in `(ci, ai, si)` order whatever the worker
//! interleaving, and all statistics are reduced sequentially from that
//! ordered vector, so serial and parallel sweeps produce the same bytes.
//!
//! The executor is also exposed raw as [`sweep_map`] — an input-ordered
//! parallel map — for sweep-shaped work that does not fit the seeded
//! grid (the experiment harness's measurement cells, the exhaustive
//! model-checking enumerations in `tests/exhaustive_*.rs`).

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rayon::prelude::*;
use sg_adversary::{
    Adaptive, AdversaryTrace, BatchFamily, ChainRevealer, Crash, EmptyTapeError, Equivocate,
    FaultSelection, Move, Omission, Partition, RandomLiar, ReplayAdversary, Silent, TapeAdversary,
    TraceError, VectorFamily,
};
use sg_core::AlgorithmSpec;
use sg_sim::{Adversary, NoFaults, Outcome, ProcessId, RunArena, RunConfig, Value};

use crate::montecarlo::{early_stop_rate, sample_of, Sample, Summary};

/// Worker-thread count used by [`SweepPlan::run`] and [`sweep_map`];
/// 0 = hardware default.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the sweep worker count (the CLI's `--jobs`); 0 restores the
/// hardware default.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::SeqCst);
}

/// The effective sweep worker count.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        j => j,
    }
}

/// Runs `f` over `cells` on the configured pool, returning results in
/// input order (the scheduling-independence that makes sweep output
/// deterministic).
pub fn sweep_map<T, R, F>(cells: Vec<T>, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    sweep_map_with_jobs(cells, jobs(), f)
}

/// [`sweep_map`] with an explicit worker count (1 = in-place sequential).
pub fn sweep_map_with_jobs<T, R, F>(cells: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    rayon::ThreadPoolBuilder::new()
        .num_threads(jobs.max(1))
        .build()
        .expect("sweep thread pool")
        .install(|| cells.into_par_iter().map(f).collect())
}

/// One protocol instantiation in a sweep grid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SweepConfig {
    /// The algorithm under test.
    pub spec: AlgorithmSpec,
    /// System size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// The source's initial value.
    pub source_value: Value,
    /// Whether runs trace (required for lock-in / discovery sampling).
    pub trace: bool,
}

impl SweepConfig {
    /// A traced cell of `spec` at `(n, t)` with source value 1 — the
    /// shape every Monte-Carlo sweep in this crate uses.
    pub fn traced(spec: AlgorithmSpec, n: usize, t: usize) -> Self {
        SweepConfig {
            spec,
            n,
            t,
            source_value: Value(1),
            trace: true,
        }
    }

    fn run_config(&self) -> RunConfig {
        let config = RunConfig::new(self.n, self.t).with_source_value(self.source_value);
        if self.trace {
            config.with_trace()
        } else {
            config
        }
    }

    /// The instance-pool key this cell's runs execute under — derived
    /// exactly as `sg_core::execute_into` derives it, including the
    /// authentication adjustment for specs that require it. Long-lived
    /// arena owners (the `sg-serve` daemon's workers) use this to
    /// quarantine exactly one cell's pooled instances after a panic
    /// instead of discarding the whole warm arena.
    pub fn pool_key(&self) -> sg_sim::PoolKey {
        let mut config = self.run_config();
        if self.spec.needs_authentication() {
            config = config.with_authentication();
        }
        self.spec.pool_key(&config)
    }
}

/// The wire-expressible construction of a built-in family, kept so
/// grids can travel over the `sg-serve/1` protocol (see [`crate::wire`]).
/// Families built from arbitrary closures have no wire form.
#[derive(Clone, PartialEq, Debug)]
pub(crate) enum FamilyWire {
    /// [`AdversaryFamily::no_faults`].
    NoFaults,
    /// [`AdversaryFamily::random_liar`] over the selection.
    RandomLiar(FaultSelection),
    /// [`AdversaryFamily::chain_revealer`] with its start/block shape.
    ChainRevealer {
        selection: FaultSelection,
        start: usize,
        block: usize,
    },
    /// [`AdversaryFamily::crash`] with its crash round.
    Crash {
        selection: FaultSelection,
        round: usize,
    },
    /// [`AdversaryFamily::silent`] over the selection.
    Silent(FaultSelection),
    /// [`AdversaryFamily::partition`] with its split/window shape.
    Partition {
        selection: FaultSelection,
        split: usize,
        from: usize,
        to: usize,
    },
    /// [`AdversaryFamily::omission`] with its period/phase pattern.
    Omission {
        selection: FaultSelection,
        period: usize,
        phase: usize,
    },
    /// [`AdversaryFamily::equivocate`] with its split/start schedule.
    Equivocate {
        selection: FaultSelection,
        split: usize,
        start: usize,
    },
    /// [`AdversaryFamily::adaptive`] with its activation schedule.
    Adaptive {
        selection: FaultSelection,
        schedule: Vec<usize>,
    },
    /// [`AdversaryFamily::tape`] with its corrupted set and move tape.
    Tape {
        members: Vec<ProcessId>,
        tape: Vec<Move>,
    },
    /// [`AdversaryFamily::replay`] over a recorded trace (shared, so
    /// cloning the wire form never copies the step list).
    Trace(Arc<AdversaryTrace>),
}

/// A named, seed-keyed adversary factory: `seed ↦ strategy instance`.
///
/// Cloning is cheap (the factory is shared), which is what lets the
/// executor move families into worker closures.
#[derive(Clone)]
pub struct AdversaryFamily {
    name: String,
    make: Arc<dyn Fn(u64) -> Box<dyn Adversary> + Send + Sync>,
    /// Wire form for serialization; `None` for closure-built families.
    wire: Option<FamilyWire>,
}

impl AdversaryFamily {
    /// A family from an arbitrary factory. Such a family cannot travel
    /// over the wire (`sg-serve` submissions use the named constructors,
    /// which can) — see [`crate::wire`].
    pub fn new(
        name: impl Into<String>,
        make: impl Fn(u64) -> Box<dyn Adversary> + Send + Sync + 'static,
    ) -> Self {
        AdversaryFamily {
            name: name.into(),
            make: Arc::new(make),
            wire: None,
        }
    }

    /// The fault-free baseline (ignores the seed).
    pub fn no_faults() -> Self {
        let mut family = AdversaryFamily::new("no-faults", |_| Box::new(NoFaults));
        family.wire = Some(FamilyWire::NoFaults);
        family
    }

    /// Seeded uniform random lies over `selection`.
    pub fn random_liar(selection: FaultSelection) -> Self {
        let wire = FamilyWire::RandomLiar(selection.clone());
        let mut family = AdversaryFamily::new("random-liar", move |seed| {
            Box::new(RandomLiar::new(selection.clone(), seed))
        });
        family.wire = Some(wire);
        family
    }

    /// The chain-revealing stress adversary over `selection`.
    pub fn chain_revealer(selection: FaultSelection, start: usize, block: usize) -> Self {
        let wire = FamilyWire::ChainRevealer {
            selection: selection.clone(),
            start,
            block,
        };
        let mut family = AdversaryFamily::new("chain-revealer", move |seed| {
            Box::new(ChainRevealer::new(selection.clone(), start, block, seed))
        });
        family.wire = Some(wire);
        family
    }

    /// The crash-early/go-silent scenario family: selected processors are
    /// perfectly honest until `round`, then permanently silent (ignores
    /// the seed — crashes are deterministic). With
    /// [`FaultSelection::limit`] capping the actual fault count `f ≤ t`,
    /// this is the workload for plotting rounds saved against `f` — the
    /// regime where the paper's expedite argument pays.
    pub fn crash(selection: FaultSelection, round: usize) -> Self {
        let wire = FamilyWire::Crash {
            selection: selection.clone(),
            round,
        };
        let mut family = AdversaryFamily::new("crash", move |_| {
            Box::new(Crash::new(selection.clone(), round))
        });
        family.wire = Some(wire);
        family
    }

    /// The omission scenario family: selected processors never send
    /// anything (ignores the seed). Combined with
    /// [`FaultSelection::limit`] this is the go-silent end of the
    /// actual-fault-budget vocabulary.
    pub fn silent(selection: FaultSelection) -> Self {
        let wire = FamilyWire::Silent(selection.clone());
        let mut family =
            AdversaryFamily::new("silent", move |_| Box::new(Silent::new(selection.clone())));
        family.wire = Some(wire);
        family
    }

    /// The round-ranged network-partition family: during rounds
    /// `from..=to` every edge crossing the id boundary `split` is cut,
    /// honest edges included (ignores the seed). Keep every cut edge
    /// incident to the corrupted set (e.g. `selection.limit(1)` with
    /// `split = 1`) when the protocol's guarantees should still hold.
    pub fn partition(selection: FaultSelection, split: usize, from: usize, to: usize) -> Self {
        let wire = FamilyWire::Partition {
            selection: selection.clone(),
            split,
            from,
            to,
        };
        let mut family = AdversaryFamily::new("partition", move |_| {
            Box::new(Partition::new(selection.clone(), split, from, to))
        });
        family.wire = Some(wire);
        family
    }

    /// The per-edge omission family: corrupted senders drop every
    /// `period`-th (round, sender, recipient) slot, offset by `phase`,
    /// and relay their honest shadow otherwise (ignores the seed).
    pub fn omission(selection: FaultSelection, period: usize, phase: usize) -> Self {
        let wire = FamilyWire::Omission {
            selection: selection.clone(),
            period,
            phase,
        };
        let mut family = AdversaryFamily::new("omission", move |_| {
            Box::new(Omission::new(selection.clone(), period, phase))
        });
        family.wire = Some(wire);
        family
    }

    /// The equivocation-schedule family: from round `start` on,
    /// corrupted senders tell recipients below `split` all-zeros and the
    /// rest all-ones (ignores the seed).
    pub fn equivocate(selection: FaultSelection, split: usize, start: usize) -> Self {
        let wire = FamilyWire::Equivocate {
            selection: selection.clone(),
            split,
            start,
        };
        let mut family = AdversaryFamily::new("equivocate", move |_| {
            Box::new(Equivocate::new(selection.clone(), split, start))
        });
        family.wire = Some(wire);
        family
    }

    /// The adaptive mid-run corruption family: the rank-`k` member of
    /// the corrupted set starts lying at round `schedule[k]`, playing
    /// its honest shadow before then (ignores the seed).
    pub fn adaptive(selection: FaultSelection, schedule: Vec<usize>) -> Self {
        let wire = FamilyWire::Adaptive {
            selection: selection.clone(),
            schedule: schedule.clone(),
        };
        let mut family = AdversaryFamily::new("adaptive", move |_| {
            Box::new(Adaptive::new(selection.clone(), schedule.clone()))
        });
        family.wire = Some(wire);
        family
    }

    /// An enumerated behaviour tape as a wire-portable family: corrupts
    /// exactly `members` and plays `tape` (ignores the seed) — the
    /// vehicle that lets `tests/exhaustive_*` counterexamples travel the
    /// serve wire and the committed corpus.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyTapeError`] if `tape` is empty.
    pub fn tape(members: Vec<ProcessId>, tape: Vec<Move>) -> Result<Self, EmptyTapeError> {
        // Validate the shape once here so the factory's rebuild is
        // infallible.
        let _ = TapeAdversary::new(members.iter().copied(), tape.clone())?;
        let wire = FamilyWire::Tape {
            members: members.clone(),
            tape: tape.clone(),
        };
        let mut family = AdversaryFamily::new("tape", move |_| {
            Box::new(
                TapeAdversary::new(members.iter().copied(), tape.clone())
                    .expect("tape validated non-empty"),
            )
        });
        family.wire = Some(wire);
        Ok(family)
    }

    /// A recorded scenario as a wire-portable family: every run replays
    /// `trace` bit-exactly (ignores the seed). This is how exact
    /// scenarios travel to a daemon and get cross-checked against the
    /// batch path.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Malformed`] if the trace fails
    /// [`AdversaryTrace::validate`].
    pub fn replay(trace: AdversaryTrace) -> Result<Self, TraceError> {
        trace.validate()?;
        let trace = Arc::new(trace);
        let wire = FamilyWire::Trace(trace.clone());
        let mut family = AdversaryFamily::new("replay", move |_| {
            Box::new(ReplayAdversary::new(trace.clone()).expect("trace validated"))
        });
        family.wire = Some(wire);
        Ok(family)
    }

    /// The family's strategy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the strategy instance for one seed.
    pub fn instantiate(&self, seed: u64) -> Box<dyn Adversary> {
        (self.make)(seed)
    }

    /// The wire form, if this family was built by a named constructor.
    pub(crate) fn wire(&self) -> Option<&FamilyWire> {
        self.wire.as_ref()
    }
}

impl std::fmt::Debug for AdversaryFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdversaryFamily")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// One pooled strategy instance, keyed by the family factory that built
/// it. The entry holds a clone of the factory `Arc`, so the pointer used
/// for the lookup cannot be recycled by a different family while the
/// entry is alive (no ABA hazard) — pointer equality therefore proves
/// "built by exactly this factory", which is the precondition
/// [`sg_sim::Adversary::reseed`] needs.
struct PooledAdversary {
    make: Arc<dyn Fn(u64) -> Box<dyn Adversary> + Send + Sync>,
    adversary: Box<dyn Adversary>,
}

/// How many families each worker thread keeps warm. Grids rarely cross
/// more than a handful of adversary families per worker.
const ADVERSARY_POOL_CAP: usize = 8;

thread_local! {
    /// Per-thread MRU cache of strategy instances, recycled across runs
    /// (and, on long-lived workers like the `sg-serve` pool, across
    /// cells, jobs, and requests) through [`sg_sim::Adversary::reseed`].
    static ADVERSARY_POOL: RefCell<Vec<PooledAdversary>> = const { RefCell::new(Vec::new()) };
}

/// Runs `body` with a strategy instance for `family` at `seed`. When
/// instance pooling is on (the same `sg_sim::set_instance_pooling`
/// escape hatch that governs protocol instances), the instance is
/// recycled through this thread's adversary pool via
/// [`sg_sim::Adversary::reseed`]; strategies that decline the reseed (the
/// default) are rebuilt by the family factory, so pooling is never wrong,
/// only absent. This removes the per-run strategy `Box` from the sweep
/// hot path; `tests/early_stopping.rs` pins pooled/fresh bit-identity.
fn with_family_adversary<R>(
    family: &AdversaryFamily,
    seed: u64,
    body: impl FnOnce(&mut dyn Adversary) -> R,
) -> R {
    if !sg_sim::instance_pooling_enabled() {
        let mut adversary = family.instantiate(seed);
        return body(adversary.as_mut());
    }
    ADVERSARY_POOL.with(|pool| {
        let hit = {
            let mut pool = pool.borrow_mut();
            pool.iter()
                .position(|e| Arc::ptr_eq(&e.make, &family.make))
                .map(|idx| pool.remove(idx))
        };
        let mut entry = match hit {
            Some(mut e) => {
                if !e.adversary.reseed(seed) {
                    e.adversary = family.instantiate(seed);
                }
                e
            }
            None => PooledAdversary {
                make: Arc::clone(&family.make),
                adversary: family.instantiate(seed),
            },
        };
        let out = body(entry.adversary.as_mut());
        let mut pool = pool.borrow_mut();
        pool.insert(0, entry);
        pool.truncate(ADVERSARY_POOL_CAP);
        out
    })
}

/// One pooled *lane group* of strategy instances for the lock-step batch
/// executor — the batch-width sibling of [`PooledAdversary`], with the
/// same factory-pointer keying and the same reseed-or-rebuild contract
/// applied lane by lane.
struct PooledBatchAdversaries {
    make: Arc<dyn Fn(u64) -> Box<dyn Adversary> + Send + Sync>,
    adversaries: Vec<Box<dyn Adversary>>,
}

/// How many families each worker thread keeps a warm lane group for.
/// Lane groups are up to 64 instances each, so the cap is tighter than
/// [`ADVERSARY_POOL_CAP`].
const BATCH_ADVERSARY_POOL_CAP: usize = 4;

thread_local! {
    /// Per-thread MRU cache of lane groups for the batch executor.
    static BATCH_ADVERSARY_POOL: RefCell<Vec<PooledBatchAdversaries>> =
        const { RefCell::new(Vec::new()) };

    /// Per-thread scratch for [`sg_sim::run_batch`].
    static BATCH_SCRATCH: RefCell<sg_sim::BatchArena> = RefCell::new(sg_sim::BatchArena::new());
}

/// One pooled lock-step kernel, keyed by the exact `(spec, config)` pair
/// it was built for. Kernels are reset per batch by the driver
/// ([`sg_sim::run_batch_with`] calls [`sg_sim::BatchKernel::reset`]), so
/// recycling one across chunks changes allocation behaviour only — the
/// mixed-width gear kernels additionally recycle their per-lane protocol
/// instances through `Protocol::reset`, which is where the win lives.
struct PooledBatchKernel {
    spec: AlgorithmSpec,
    config: RunConfig,
    kernel: Box<dyn sg_sim::BatchKernel + Send>,
}

/// How many `(spec, config)` kernels each worker thread keeps warm.
const BATCH_KERNEL_POOL_CAP: usize = 4;

thread_local! {
    /// Per-thread MRU cache of lock-step kernels, recycled across chunks
    /// of the same cell (and across cells of the same shape).
    static BATCH_KERNEL_POOL: RefCell<Vec<PooledBatchKernel>> = const { RefCell::new(Vec::new()) };
}

/// Runs `body` with a lock-step kernel for `(spec, config)`, pooled per
/// thread when instance pooling is on; `None` when the spec/config pair
/// has no batch kernel (the caller falls back to the scalar executor).
fn with_batch_kernel<R>(
    spec: AlgorithmSpec,
    config: RunConfig,
    body: impl FnOnce(&mut dyn sg_sim::BatchKernel) -> R,
) -> Option<R> {
    if !sg_sim::instance_pooling_enabled() {
        let mut kernel = sg_core::batch_kernel(&spec, &config)?;
        return Some(body(kernel.as_mut()));
    }
    BATCH_KERNEL_POOL.with(|pool| {
        let hit = {
            let mut pool = pool.borrow_mut();
            pool.iter()
                .position(|e| e.spec == spec && e.config == config)
                .map(|idx| pool.remove(idx))
        };
        let mut entry = match hit {
            Some(e) => e,
            None => PooledBatchKernel {
                spec,
                config,
                kernel: sg_core::batch_kernel(&spec, &config)?,
            },
        };
        let out = body(entry.kernel.as_mut());
        let mut pool = pool.borrow_mut();
        pool.insert(0, entry);
        pool.truncate(BATCH_KERNEL_POOL_CAP);
        Some(out)
    })
}

/// The vector (single-[`sg_sim::BatchAdversary::lies`]-call) form of a
/// family's wire shape, where the batch adversary layer covers it:
/// the six named families whose fault selection is lane-uniform and
/// whose per-edge behaviour is a pure function of `(round, edge, seed)`.
/// `None` routes the chunk through the per-lane scalar bridge — the
/// vector path is absent, never wrong. Families with per-edge faults
/// (`partition`) or call-order contracts (`tape`, traces) stay scalar by
/// construction.
fn vector_family(
    family: &AdversaryFamily,
    seeds: &[u64],
) -> Option<(VectorFamily, FaultSelection)> {
    match family.wire()? {
        FamilyWire::RandomLiar(selection) => Some((
            VectorFamily::RandomLiar {
                seeds: seeds.to_vec(),
            },
            selection.clone(),
        )),
        FamilyWire::Crash { selection, round } => Some((
            VectorFamily::Crash {
                crash_round: *round,
            },
            selection.clone(),
        )),
        FamilyWire::Silent(selection) => Some((VectorFamily::Silent, selection.clone())),
        FamilyWire::Omission {
            selection,
            period,
            phase,
        } => Some((
            VectorFamily::Omission {
                period: *period,
                phase: *phase,
            },
            selection.clone(),
        )),
        FamilyWire::Equivocate {
            selection,
            split,
            start,
        } => Some((
            VectorFamily::Equivocate {
                split: *split,
                start: *start,
            },
            selection.clone(),
        )),
        FamilyWire::Adaptive {
            selection,
            schedule,
        } => Some((
            VectorFamily::Adaptive {
                schedule: schedule.clone(),
            },
            selection.clone(),
        )),
        _ => None,
    }
}

/// Runs `body` with one strategy instance per seed in `seeds` — the
/// batch executor's counterpart of [`with_family_adversary`]. Pooled
/// instances are reseeded lane by lane (rebuilt where the strategy
/// declines), so pooled and fresh lane groups behave identically.
fn with_batch_adversaries<R>(
    family: &AdversaryFamily,
    seeds: &[u64],
    body: impl FnOnce(&mut [Box<dyn Adversary>]) -> R,
) -> R {
    if !sg_sim::instance_pooling_enabled() {
        let mut adversaries: Vec<_> = seeds.iter().map(|&s| family.instantiate(s)).collect();
        return body(&mut adversaries);
    }
    BATCH_ADVERSARY_POOL.with(|pool| {
        let hit = {
            let mut pool = pool.borrow_mut();
            pool.iter()
                .position(|e| Arc::ptr_eq(&e.make, &family.make))
                .map(|idx| pool.remove(idx))
        };
        let mut entry = hit.unwrap_or_else(|| PooledBatchAdversaries {
            make: Arc::clone(&family.make),
            adversaries: Vec::new(),
        });
        entry.adversaries.truncate(seeds.len());
        for (lane, &seed) in seeds.iter().enumerate() {
            match entry.adversaries.get_mut(lane) {
                Some(adversary) => {
                    if !adversary.reseed(seed) {
                        *adversary = family.instantiate(seed);
                    }
                }
                None => entry.adversaries.push(family.instantiate(seed)),
            }
        }
        let out = body(&mut entry.adversaries);
        let mut pool = pool.borrow_mut();
        pool.insert(0, entry);
        pool.truncate(BATCH_ADVERSARY_POOL_CAP);
        out
    })
}

/// A sweep grid: `configs × adversaries × seeds_per_cell` executions.
#[derive(Clone, Debug)]
pub struct SweepPlan {
    /// Protocol instantiations (grid axis 1).
    pub configs: Vec<SweepConfig>,
    /// Adversary families (grid axis 2).
    pub adversaries: Vec<AdversaryFamily>,
    /// Runs per `(config, adversary)` cell (grid axis 3).
    pub seeds_per_cell: u64,
    /// Base of the per-cell seed streams (see the module docs).
    pub base_seed: u64,
}

impl SweepPlan {
    /// A plan over the full grid with `base_seed = 0`.
    pub fn new(
        configs: Vec<SweepConfig>,
        adversaries: Vec<AdversaryFamily>,
        seeds_per_cell: u64,
    ) -> Self {
        SweepPlan {
            configs,
            adversaries,
            seeds_per_cell,
            base_seed: 0,
        }
    }

    /// Sets the base seed (shifts every cell's stream).
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// The adversary seed of run `si` in cell `(ci, ai)` — the module
    /// docs' scheme, a pure function of grid coordinates.
    pub fn seed_for(&self, ci: usize, ai: usize, si: u64) -> u64 {
        let stream = self.base_seed
            ^ (ci as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (ai as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        stream.wrapping_add(si)
    }

    /// Total executions the plan describes.
    pub fn total_runs(&self) -> u64 {
        self.configs.len() as u64 * self.adversaries.len() as u64 * self.seeds_per_cell
    }

    /// Executes the plan on [`jobs`] workers.
    ///
    /// # Panics
    ///
    /// Panics if the plan is empty, a spec rejects its `(n, t)`, or any
    /// execution violates agreement — sweeps double as correctness
    /// checks, exactly like the sequential harness they replaced.
    pub fn run(&self) -> SweepReport {
        self.run_with_jobs(jobs())
    }

    /// Executes the plan on an explicit worker count (1 = sequential).
    /// Output is bit-identical across worker counts.
    pub fn run_with_jobs(&self, jobs: usize) -> SweepReport {
        assert!(
            !self.configs.is_empty() && !self.adversaries.is_empty() && self.seeds_per_cell > 0,
            "empty sweep plan"
        );
        let cells: Vec<usize> = (0..self.cell_count()).collect();
        SweepReport {
            total_runs: self.total_runs(),
            cells: self.run_cells_with_jobs(&cells, jobs),
        }
    }

    /// Executes only the cells named by flat index, through the same
    /// chunked parallel executor as [`SweepPlan::run_with_jobs`] (which
    /// passes the full range), returning one report per entry in `cells`
    /// order. This is what makes the journal-warm path bit-identical to
    /// a cold run: a miss set of any shape still executes with the cold
    /// path's exact unit chunking.
    pub(crate) fn run_cells_with_jobs(&self, cells: &[usize], jobs: usize) -> Vec<CellReport> {
        if cells.is_empty() {
            return Vec::new();
        }
        let shared = Arc::new(self.clone());
        // With batching on, a unit is a lock-step group of up to 64
        // consecutive seeds of one cell; with `--no-batch` it degenerates
        // to one seed per unit, restoring the scalar executor's exact
        // scheduling shape. Either way results are flattened back into
        // `(ci, ai, si)` order, so the report bytes cannot depend on the
        // toggle (pinned by `tests/batch_identity.rs`).
        let chunk = if sg_sim::batch_runs_enabled() {
            sg_sim::MAX_BATCH_RUNS as u64
        } else {
            1
        };
        let units: Vec<(usize, usize, u64, u64)> = cells
            .iter()
            .flat_map(|&cell| {
                let (ci, ai) = self.cell_coords(cell);
                let seeds = self.seeds_per_cell;
                (0..seeds)
                    .step_by(chunk as usize)
                    .map(move |si0| (ci, ai, si0, chunk.min(seeds - si0)))
            })
            .collect();
        let samples: Vec<Sample> = sweep_map_with_jobs(units, jobs, move |(ci, ai, si0, len)| {
            shared.run_chunk(ci, ai, si0, len)
        })
        .into_iter()
        .flatten()
        .collect();

        let mut reports = Vec::with_capacity(cells.len());
        let mut chunks = samples.chunks_exact(self.seeds_per_cell as usize);
        for &cell in cells {
            let (ci, ai) = self.cell_coords(cell);
            let cell_samples = chunks.next().expect("one chunk per cell").to_vec();
            reports.push(self.cell_report(ci, ai, cell_samples));
        }
        reports
    }

    /// Number of `(config, adversary)` cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.configs.len() * self.adversaries.len()
    }

    /// Grid coordinates `(ci, ai)` of flat cell index `cell`, row-major
    /// over `configs × adversaries` — the order [`SweepPlan::run`] emits
    /// cells in.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= cell_count()`.
    pub fn cell_coords(&self, cell: usize) -> (usize, usize) {
        assert!(cell < self.cell_count(), "cell index out of range");
        (cell / self.adversaries.len(), cell % self.adversaries.len())
    }

    /// A resumable sequential executor for cell `cell` — the unit the
    /// `sg-serve` scheduler interleaves jobs at. See [`CellCursor`].
    ///
    /// # Panics
    ///
    /// Panics if `cell >= cell_count()`.
    pub fn cell_cursor(&self, cell: usize) -> CellCursor<'_> {
        let (ci, ai) = self.cell_coords(cell);
        CellCursor {
            plan: self,
            ci,
            ai,
            next_si: 0,
            samples: Vec::with_capacity(self.seeds_per_cell as usize),
        }
    }

    /// Assembles the [`CellReport`] of cell `(ci, ai)` from its run-order
    /// samples — shared by the batch path and [`CellCursor::finish`], so
    /// both produce identical bytes.
    fn cell_report(&self, ci: usize, ai: usize, samples: Vec<Sample>) -> CellReport {
        let config = &self.configs[ci];
        let summaries = crate::montecarlo::summarize(&samples);
        CellReport {
            spec_name: config.spec.name(),
            n: config.n,
            t: config.t,
            adversary: self.adversaries[ai].name.clone(),
            first_seed: self.seed_for(ci, ai, 0),
            early_stop_rate: early_stop_rate(&samples),
            samples,
            summaries,
        }
    }

    /// One executor unit: runs `si0 .. si0 + len` of cell `(ci, ai)`.
    ///
    /// When batching is on and the cell has a lock-step kernel (the king
    /// and phase families on eligible configurations), the whole group
    /// executes in
    /// one [`sg_sim::run_batch`] call; everything else — other specs,
    /// edge-faulting adversaries, `--no-batch` — falls back to the scalar
    /// executor run by run. Both paths emit identical samples.
    fn run_chunk(&self, ci: usize, ai: usize, si0: u64, len: u64) -> Vec<Sample> {
        if len > 1 && sg_sim::batch_runs_enabled() {
            if let Some(samples) = self.run_chunk_lockstep(ci, ai, si0, len) {
                return samples;
            }
        }
        (0..len).map(|k| self.run_one(ci, ai, si0 + k)).collect()
    }

    /// The lock-step fast path: all `len` seeds of the group execute
    /// simultaneously, one bit lane per run. Returns `None` when the cell
    /// is not batch-eligible (no kernel for the spec, or the adversary
    /// family corrupts edges), in which case no lane has gone past its
    /// `corrupt` call and the scalar path re-runs the group from scratch.
    ///
    /// Fault injection takes the vector path ([`BatchFamily`], one
    /// `lies` call per round) when the family's wire shape has one and
    /// the `--no-batch-adversary` escape hatch is off; otherwise every
    /// lane bridges to its scalar adversary in the scalar engine's exact
    /// call order. Lanes a mixed-width kernel declines mid-run (a
    /// `dynamic-king` gear vote that diverges from its scalar poll)
    /// come back marked `deferred` and re-run on the scalar executor,
    /// spliced into the chunk's samples at their seed position.
    fn run_chunk_lockstep(&self, ci: usize, ai: usize, si0: u64, len: u64) -> Option<Vec<Sample>> {
        let config = &self.configs[ci];
        let run_config = config.run_config();
        let family = &self.adversaries[ai];
        let seeds: Vec<u64> = (0..len).map(|k| self.seed_for(ci, ai, si0 + k)).collect();
        with_batch_kernel(config.spec, run_config, |kernel| {
            BATCH_SCRATCH.with(|scratch| {
                let arena = &mut scratch.borrow_mut();
                let ok =
                    with_batch_adversaries(family, &seeds, |adversaries| {
                        match vector_family(family, &seeds) {
                            Some((vector, selection)) if sg_sim::batch_adversaries_enabled() => {
                                let mut batch = BatchFamily::new(vector, selection, adversaries);
                                sg_sim::run_batch_with(arena, &run_config, kernel, &mut batch)
                            }
                            _ => sg_sim::run_batch(arena, &run_config, kernel, adversaries),
                        }
                    });
                if !ok {
                    return None;
                }
                let mut samples = Vec::with_capacity(len as usize);
                for (lane, (result, seed)) in arena.results().iter().zip(&seeds).enumerate() {
                    if result.deferred {
                        samples.push(self.run_one(ci, ai, si0 + lane as u64));
                        continue;
                    }
                    assert!(
                        result.agreement,
                        "{} violated agreement under {} at seed {seed}",
                        config.spec.name(),
                        family.name,
                    );
                    samples.push(Sample {
                        lock_in: result.lock_in as u64,
                        discoveries: result.discoveries,
                        total_bits: result.total_bits,
                        max_local_ops: result.max_local_ops,
                        rounds: result.rounds_used as u64,
                        early_stopped: result.early_stopped,
                    });
                }
                Some(samples)
            })
        })?
    }

    /// One execution: cell `(ci, ai)`, run `si`, on this thread's
    /// scratch arena.
    fn run_one(&self, ci: usize, ai: usize, si: u64) -> Sample {
        SWEEP_ARENA.with(|arena| self.run_one_in(&mut arena.borrow_mut(), ci, ai, si))
    }

    /// [`SweepPlan::run_one`] with a caller-held arena — the executor
    /// behind [`CellCursor`]; bit-identical to the batch path. The run's
    /// [`Outcome`] streams into this thread's reusable buffer
    /// ([`sg_core::execute_into`]), so the executor performs no per-run
    /// result allocations: only the extracted [`Sample`] survives.
    fn run_one_in(&self, arena: &mut RunArena, ci: usize, ai: usize, si: u64) -> Sample {
        SWEEP_OUTCOME.with(|out| self.run_one_into(arena, &mut out.borrow_mut(), ci, ai, si))
    }

    /// The executor core: runs in `arena`, streams the result into
    /// `out`, and reduces it to a [`Sample`].
    fn run_one_into(
        &self,
        arena: &mut RunArena,
        out: &mut Outcome,
        ci: usize,
        ai: usize,
        si: u64,
    ) -> Sample {
        let config = &self.configs[ci];
        let family = &self.adversaries[ai];
        let seed = self.seed_for(ci, ai, si);
        let run_config = config.run_config();
        with_family_adversary(family, seed, |adversary| {
            sg_core::execute_into(arena, config.spec, &run_config, adversary, out)
                .unwrap_or_else(|e| panic!("{}: {e}", config.spec.name()));
            assert!(
                out.agreement(),
                "{} violated agreement under {} at seed {seed}",
                config.spec.name(),
                family.name,
            );
            sample_of(out)
        })
    }
}

thread_local! {
    /// Per-thread scratch arena for the batch executor (the cursor path
    /// holds its own long-lived arena instead).
    static SWEEP_ARENA: RefCell<RunArena> = RefCell::new(RunArena::new());

    /// Per-thread reusable [`Outcome`] buffer: every run's result is
    /// streamed into it and reduced to a [`Sample`] in place, retiring
    /// the last per-run result vectors (decisions, metrics, trace) from
    /// the sweep hot path.
    static SWEEP_OUTCOME: RefCell<Outcome> = RefCell::new(Outcome::buffer());
}

/// A resumable, preemptible executor for one `(config, adversary)` cell.
///
/// The batch path ([`SweepPlan::run`]) fans every run of every cell onto
/// a rayon pool and joins; a long-lived service cannot afford that shape
/// — it needs to *interleave* cells of concurrent jobs on a fixed worker
/// pool and abandon a cell mid-flight when its job is cancelled. A
/// cursor is that unit of scheduling: created per cell, advanced in
/// batches of whatever quantum the scheduler likes (checking its cancel
/// flag in between), and [`CellCursor::finish`]ed into a [`CellReport`]
/// that is bit-identical to the corresponding cell of [`SweepPlan::run`]
/// (seeding is coordinate-pure, and the pooled executor is pinned
/// pooled-vs-fresh identical by `tests/instance_pool.rs`).
///
/// Runs execute in the caller's [`RunArena`], so a worker that holds one
/// arena for its whole life performs no steady-state allocations and
/// keeps protocol instances warm across cells — and across jobs.
#[derive(Debug)]
pub struct CellCursor<'p> {
    plan: &'p SweepPlan,
    ci: usize,
    ai: usize,
    next_si: u64,
    samples: Vec<Sample>,
}

impl CellCursor<'_> {
    /// Grid coordinates `(ci, ai)` of the cell this cursor executes.
    pub fn coords(&self) -> (usize, usize) {
        (self.ci, self.ai)
    }

    /// Runs not yet executed.
    pub fn remaining(&self) -> u64 {
        self.plan.seeds_per_cell - self.next_si
    }

    /// Whether every run of the cell has executed.
    pub fn is_done(&self) -> bool {
        self.next_si == self.plan.seeds_per_cell
    }

    /// Executes up to `max_runs` further runs in `arena`, returning how
    /// many actually ran (0 when already done).
    pub fn run_batch_in(&mut self, arena: &mut RunArena, max_runs: u64) -> u64 {
        let todo = self.remaining().min(max_runs);
        for _ in 0..todo {
            let sample = self.plan.run_one_in(arena, self.ci, self.ai, self.next_si);
            self.samples.push(sample);
            self.next_si += 1;
        }
        todo
    }

    /// Assembles the finished cell's report.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not [`CellCursor::is_done`] — an abandoned
    /// (cancelled) cursor is dropped, never finished.
    pub fn finish(self) -> CellReport {
        assert!(self.is_done(), "cell cursor finished early");
        self.plan.cell_report(self.ci, self.ai, self.samples)
    }
}

/// Results of one `(config, adversary)` cell.
#[derive(Clone, PartialEq, Debug)]
pub struct CellReport {
    /// Algorithm name.
    pub spec_name: String,
    /// System size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// Adversary family name.
    pub adversary: String,
    /// The seed of the cell's first run (run `si` used `first_seed + si`).
    pub first_seed: u64,
    /// Fraction of the cell's runs that terminated before their static
    /// schedule ended.
    pub early_stop_rate: f64,
    /// Per-run samples, in run order.
    pub samples: Vec<Sample>,
    /// `[lock-in, discoveries, total bits, max local ops, rounds]`
    /// summaries.
    pub summaries: [Summary; 5],
}

impl CellReport {
    /// Renders the cell as one aligned table line (newline-terminated) —
    /// the row format of [`SweepReport::render`], also used by clients
    /// streaming cells one at a time.
    pub fn render_line(&self) -> String {
        let [lock, disc, bits, ops, rounds] = &self.summaries;
        format!(
            "{:<24} n={:<3} t={:<2} {:<16} lock-in {:<14} discoveries {:<14} bits {:<20} ops \
             {:<20} rounds {:<14} early-stop {:.0}%\n",
            self.spec_name,
            self.n,
            self.t,
            self.adversary,
            lock.render(),
            disc.render(),
            bits.render(),
            ops.render(),
            rounds.render(),
            self.early_stop_rate * 100.0,
        )
    }
}

/// The full sweep output: one [`CellReport`] per `(config, adversary)`
/// pair, in grid order. `PartialEq` compares every sample and statistic,
/// which is how the determinism tests assert bit-identical serial vs.
/// parallel execution.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepReport {
    /// Executions performed.
    pub total_runs: u64,
    /// Per-cell results in `(config, adversary)` grid order.
    pub cells: Vec<CellReport>,
}

/// Order-sensitive FNV-1a fingerprint over sweep samples.
///
/// This is the determinism contract's currency: the batch path
/// ([`SweepReport::fingerprint`]), the `repro --exp sweep` trajectory
/// file, and the `sg-serve` daemon's summary frame all reduce their
/// samples through this builder *in grid order*, so a fingerprint match
/// means bit-identical samples whatever path produced them. Mixing is
/// incremental — a streaming consumer can fold cells in as they arrive,
/// as long as it folds them in grid order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The FNV-1a offset basis — an empty fingerprint.
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one little-endian `u64` into the hash.
    pub fn mix_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds raw bytes into the hash — used by the journal's
    /// content-address derivations, which fingerprint canonical wire
    /// encodings rather than samples.
    pub fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds one sample — deliberately the four original quantities
    /// only, in field order. The `rounds`/`early_stopped` fields added
    /// with the early-stopping engine are *not* mixed, so fixed-length
    /// (`sg_sim::set_early_stopping(false)`) sweeps keep their
    /// historical fingerprints (`BENCH_sweep_fixed.json`); early-stopped
    /// runs still perturb the hash through `total_bits`, which shrinks
    /// with every saved round.
    pub fn mix_sample(&mut self, s: &Sample) {
        self.mix_u64(s.lock_in);
        self.mix_u64(s.discoveries);
        self.mix_u64(s.total_bits);
        self.mix_u64(s.max_local_ops);
    }

    /// Folds one cell's samples in run order.
    pub fn mix_cell(&mut self, cell: &CellReport) {
        for s in &cell.samples {
            self.mix_sample(s);
        }
    }

    /// The current hash value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// The hash as the 16-digit lower-hex string the JSON artifacts use.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses a [`Fingerprint::hex`]-formatted string.
    pub fn parse_hex(s: &str) -> Option<u64> {
        let s = s.trim().trim_start_matches("0x");
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok()
    }

    /// The `--expect-fingerprint` cross-check shared by the `sg` and
    /// `repro` binaries: `Ok` carries the success line to print, `Err`
    /// the mismatch report (the caller exits non-zero on `Err` — that
    /// exit-code contract is what CI's `&&` chains rely on).
    ///
    /// # Errors
    ///
    /// Returns the mismatch message when `actual != expected`.
    pub fn cross_check(expected: u64, actual: u64) -> Result<String, String> {
        if actual == expected {
            Ok(format!("fingerprint cross-check ok ({actual:016x})"))
        } else {
            Err(format!(
                "FINGERPRINT MISMATCH: expected {expected:016x}, got {actual:016x} — \
                 the sweep did not reproduce the reference output"
            ))
        }
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl SweepReport {
    /// The report's [`Fingerprint`] over every sample in grid order.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        for cell in &self.cells {
            fp.mix_cell(cell);
        }
        fp.value()
    }

    /// [`SweepReport::fingerprint`] as the artifact hex string.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// Renders one line per cell: `spec n t adversary lock-in disc bits ops`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(&cell.render_line());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan() -> SweepPlan {
        SweepPlan::new(
            vec![
                SweepConfig::traced(AlgorithmSpec::Exponential, 7, 2),
                SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
            ],
            vec![
                AdversaryFamily::random_liar(FaultSelection::with_source()),
                AdversaryFamily::no_faults(),
            ],
            3,
        )
    }

    #[test]
    fn seeding_is_coordinate_pure() {
        let plan = small_plan();
        assert_eq!(plan.seed_for(0, 0, 0), 0);
        assert_eq!(plan.seed_for(0, 0, 5), 5);
        assert_ne!(plan.seed_for(1, 0, 0), plan.seed_for(0, 1, 0));
        let shifted = small_plan().with_base_seed(99);
        assert_eq!(shifted.seed_for(0, 0, 0), 99);
    }

    #[test]
    fn serial_and_parallel_reports_are_identical() {
        let plan = small_plan();
        let serial = plan.run_with_jobs(1);
        let parallel = plan.run_with_jobs(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.total_runs, 12);
        assert_eq!(serial.cells.len(), 4);
        assert!(serial.render().contains("hybrid"));
    }

    #[test]
    fn cell_cursors_reproduce_the_batch_report() {
        let plan = small_plan();
        let batch = plan.run_with_jobs(2);
        let mut arena = RunArena::new();
        for cell in 0..plan.cell_count() {
            // Odd batch sizes force resume points that never align with
            // the cell boundary.
            let mut cursor = plan.cell_cursor(cell);
            while !cursor.is_done() {
                cursor.run_batch_in(&mut arena, 2);
            }
            assert_eq!(cursor.run_batch_in(&mut arena, 5), 0);
            assert_eq!(cursor.finish(), batch.cells[cell]);
        }
        assert!(arena.pooled_instance_sets() > 0, "arena pools stayed cold");
    }

    #[test]
    fn fingerprint_matches_streaming_fold() {
        let plan = small_plan();
        let report = plan.run_with_jobs(1);
        let mut streaming = Fingerprint::new();
        for cell in &report.cells {
            streaming.mix_cell(cell);
        }
        assert_eq!(streaming.value(), report.fingerprint());
        assert_eq!(streaming.hex(), report.fingerprint_hex());
        assert_eq!(
            Fingerprint::parse_hex(&streaming.hex()),
            Some(streaming.value())
        );
        assert_eq!(Fingerprint::parse_hex("zz"), None);
        assert_ne!(report.fingerprint(), Fingerprint::new().value());
    }

    #[test]
    fn cell_coords_are_row_major() {
        let plan = small_plan();
        assert_eq!(plan.cell_count(), 4);
        assert_eq!(plan.cell_coords(0), (0, 0));
        assert_eq!(plan.cell_coords(1), (0, 1));
        assert_eq!(plan.cell_coords(3), (1, 1));
    }

    #[test]
    fn sweep_map_preserves_order() {
        let out = sweep_map_with_jobs((0..32usize).collect(), 4, |i| i * 3);
        assert_eq!(out, (0..32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_setting_round_trips() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }
}
