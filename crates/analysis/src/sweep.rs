//! The parallel sweep engine: `configs × adversaries × seeds` fan-out.
//!
//! Every empirical result in this reproduction is a *sweep* — many
//! independent executions of `(algorithm, n, t)` cells against adversary
//! strategies over seed ranges, reduced to summary statistics. This
//! module is the one place that fan-out happens: a [`SweepPlan`]
//! describes the grid, [`SweepPlan::run`] executes it on a rayon pool
//! sized by [`set_jobs`] (the CLI's `--jobs` flag), and the resulting
//! [`SweepReport`] is **bit-identical regardless of thread count** (see
//! `tests/sweep_determinism.rs`).
//!
//! # Deterministic seeding scheme
//!
//! Parallel determinism requires that the seed a run sees depends only on
//! its *grid coordinates*, never on scheduling order. Each `(config,
//! adversary)` cell owns an independent seed stream:
//!
//! ```text
//! stream(ci, ai) = base_seed ⊕ (ci · 0x9E3779B97F4A7C15) ⊕ (ai · 0xBF58476D1CE4E5B9)
//! seed(ci, ai, si) = stream(ci, ai) + si          (wrapping)
//! ```
//!
//! where `ci`/`ai` are the config/adversary indices and `si` the run
//! index within the cell. With the default `base_seed = 0` and a
//! single-cell plan, run `si` sees seed `si` exactly — preserving the
//! seed semantics of the original sequential `random_liar_sweep`.
//! Results are collected in `(ci, ai, si)` order whatever the worker
//! interleaving, and all statistics are reduced sequentially from that
//! ordered vector, so serial and parallel sweeps produce the same bytes.
//!
//! The executor is also exposed raw as [`sweep_map`] — an input-ordered
//! parallel map — for sweep-shaped work that does not fit the seeded
//! grid (the experiment harness's measurement cells, the exhaustive
//! model-checking enumerations in `tests/exhaustive_*.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rayon::prelude::*;
use sg_adversary::{ChainRevealer, FaultSelection, RandomLiar};
use sg_core::AlgorithmSpec;
use sg_sim::{Adversary, NoFaults, RunConfig, Value};

use crate::montecarlo::{sample_of, Sample, Summary};

/// Worker-thread count used by [`SweepPlan::run`] and [`sweep_map`];
/// 0 = hardware default.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the sweep worker count (the CLI's `--jobs`); 0 restores the
/// hardware default.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::SeqCst);
}

/// The effective sweep worker count.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        j => j,
    }
}

/// Runs `f` over `cells` on the configured pool, returning results in
/// input order (the scheduling-independence that makes sweep output
/// deterministic).
pub fn sweep_map<T, R, F>(cells: Vec<T>, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    sweep_map_with_jobs(cells, jobs(), f)
}

/// [`sweep_map`] with an explicit worker count (1 = in-place sequential).
pub fn sweep_map_with_jobs<T, R, F>(cells: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    rayon::ThreadPoolBuilder::new()
        .num_threads(jobs.max(1))
        .build()
        .expect("sweep thread pool")
        .install(|| cells.into_par_iter().map(f).collect())
}

/// One protocol instantiation in a sweep grid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SweepConfig {
    /// The algorithm under test.
    pub spec: AlgorithmSpec,
    /// System size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// The source's initial value.
    pub source_value: Value,
    /// Whether runs trace (required for lock-in / discovery sampling).
    pub trace: bool,
}

impl SweepConfig {
    /// A traced cell of `spec` at `(n, t)` with source value 1 — the
    /// shape every Monte-Carlo sweep in this crate uses.
    pub fn traced(spec: AlgorithmSpec, n: usize, t: usize) -> Self {
        SweepConfig {
            spec,
            n,
            t,
            source_value: Value(1),
            trace: true,
        }
    }

    fn run_config(&self) -> RunConfig {
        let config = RunConfig::new(self.n, self.t).with_source_value(self.source_value);
        if self.trace {
            config.with_trace()
        } else {
            config
        }
    }
}

/// A named, seed-keyed adversary factory: `seed ↦ strategy instance`.
///
/// Cloning is cheap (the factory is shared), which is what lets the
/// executor move families into worker closures.
#[derive(Clone)]
pub struct AdversaryFamily {
    name: String,
    make: Arc<dyn Fn(u64) -> Box<dyn Adversary> + Send + Sync>,
}

impl AdversaryFamily {
    /// A family from an arbitrary factory.
    pub fn new(
        name: impl Into<String>,
        make: impl Fn(u64) -> Box<dyn Adversary> + Send + Sync + 'static,
    ) -> Self {
        AdversaryFamily {
            name: name.into(),
            make: Arc::new(make),
        }
    }

    /// The fault-free baseline (ignores the seed).
    pub fn no_faults() -> Self {
        AdversaryFamily::new("no-faults", |_| Box::new(NoFaults))
    }

    /// Seeded uniform random lies over `selection`.
    pub fn random_liar(selection: FaultSelection) -> Self {
        AdversaryFamily::new("random-liar", move |seed| {
            Box::new(RandomLiar::new(selection.clone(), seed))
        })
    }

    /// The chain-revealing stress adversary over `selection`.
    pub fn chain_revealer(selection: FaultSelection, start: usize, block: usize) -> Self {
        AdversaryFamily::new("chain-revealer", move |seed| {
            Box::new(ChainRevealer::new(selection.clone(), start, block, seed))
        })
    }

    /// The family's strategy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the strategy instance for one seed.
    pub fn instantiate(&self, seed: u64) -> Box<dyn Adversary> {
        (self.make)(seed)
    }
}

impl std::fmt::Debug for AdversaryFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdversaryFamily")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// A sweep grid: `configs × adversaries × seeds_per_cell` executions.
#[derive(Clone, Debug)]
pub struct SweepPlan {
    /// Protocol instantiations (grid axis 1).
    pub configs: Vec<SweepConfig>,
    /// Adversary families (grid axis 2).
    pub adversaries: Vec<AdversaryFamily>,
    /// Runs per `(config, adversary)` cell (grid axis 3).
    pub seeds_per_cell: u64,
    /// Base of the per-cell seed streams (see the module docs).
    pub base_seed: u64,
}

impl SweepPlan {
    /// A plan over the full grid with `base_seed = 0`.
    pub fn new(
        configs: Vec<SweepConfig>,
        adversaries: Vec<AdversaryFamily>,
        seeds_per_cell: u64,
    ) -> Self {
        SweepPlan {
            configs,
            adversaries,
            seeds_per_cell,
            base_seed: 0,
        }
    }

    /// Sets the base seed (shifts every cell's stream).
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// The adversary seed of run `si` in cell `(ci, ai)` — the module
    /// docs' scheme, a pure function of grid coordinates.
    pub fn seed_for(&self, ci: usize, ai: usize, si: u64) -> u64 {
        let stream = self.base_seed
            ^ (ci as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (ai as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        stream.wrapping_add(si)
    }

    /// Total executions the plan describes.
    pub fn total_runs(&self) -> u64 {
        self.configs.len() as u64 * self.adversaries.len() as u64 * self.seeds_per_cell
    }

    /// Executes the plan on [`jobs`] workers.
    ///
    /// # Panics
    ///
    /// Panics if the plan is empty, a spec rejects its `(n, t)`, or any
    /// execution violates agreement — sweeps double as correctness
    /// checks, exactly like the sequential harness they replaced.
    pub fn run(&self) -> SweepReport {
        self.run_with_jobs(jobs())
    }

    /// Executes the plan on an explicit worker count (1 = sequential).
    /// Output is bit-identical across worker counts.
    pub fn run_with_jobs(&self, jobs: usize) -> SweepReport {
        assert!(
            !self.configs.is_empty() && !self.adversaries.is_empty() && self.seeds_per_cell > 0,
            "empty sweep plan"
        );
        let shared = Arc::new(self.clone());
        let units: Vec<(usize, usize, u64)> = self
            .configs
            .iter()
            .enumerate()
            .flat_map(|(ci, _)| {
                let seeds = self.seeds_per_cell;
                (0..self.adversaries.len())
                    .flat_map(move |ai| (0..seeds).map(move |si| (ci, ai, si)))
            })
            .collect();
        let samples =
            sweep_map_with_jobs(units, jobs, move |(ci, ai, si)| shared.run_one(ci, ai, si));

        let mut cells = Vec::with_capacity(self.configs.len() * self.adversaries.len());
        let mut chunks = samples.chunks_exact(self.seeds_per_cell as usize);
        for (ci, config) in self.configs.iter().enumerate() {
            for (ai, family) in self.adversaries.iter().enumerate() {
                let cell_samples = chunks.next().expect("one chunk per cell").to_vec();
                let summaries = crate::montecarlo::summarize(&cell_samples);
                cells.push(CellReport {
                    spec_name: config.spec.name(),
                    n: config.n,
                    t: config.t,
                    adversary: family.name.clone(),
                    first_seed: self.seed_for(ci, ai, 0),
                    samples: cell_samples,
                    summaries,
                });
            }
        }
        SweepReport {
            total_runs: self.total_runs(),
            cells,
        }
    }

    /// One execution: cell `(ci, ai)`, run `si`.
    fn run_one(&self, ci: usize, ai: usize, si: u64) -> Sample {
        let config = &self.configs[ci];
        let family = &self.adversaries[ai];
        let seed = self.seed_for(ci, ai, si);
        let run_config = config.run_config();
        let mut adversary = family.instantiate(seed);
        let outcome = sg_core::execute(config.spec, &run_config, adversary.as_mut())
            .unwrap_or_else(|e| panic!("{}: {e}", config.spec.name()));
        assert!(
            outcome.agreement(),
            "{} violated agreement under {} at seed {seed}",
            config.spec.name(),
            family.name,
        );
        sample_of(&outcome)
    }
}

/// Results of one `(config, adversary)` cell.
#[derive(Clone, PartialEq, Debug)]
pub struct CellReport {
    /// Algorithm name.
    pub spec_name: String,
    /// System size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// Adversary family name.
    pub adversary: String,
    /// The seed of the cell's first run (run `si` used `first_seed + si`).
    pub first_seed: u64,
    /// Per-run samples, in run order.
    pub samples: Vec<Sample>,
    /// `[lock-in, discoveries, total bits, max local ops]` summaries.
    pub summaries: [Summary; 4],
}

/// The full sweep output: one [`CellReport`] per `(config, adversary)`
/// pair, in grid order. `PartialEq` compares every sample and statistic,
/// which is how the determinism tests assert bit-identical serial vs.
/// parallel execution.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepReport {
    /// Executions performed.
    pub total_runs: u64,
    /// Per-cell results in `(config, adversary)` grid order.
    pub cells: Vec<CellReport>,
}

impl SweepReport {
    /// Renders one line per cell: `spec n t adversary lock-in disc bits ops`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            let [lock, disc, bits, ops] = &cell.summaries;
            out.push_str(&format!(
                "{:<24} n={:<3} t={:<2} {:<16} lock-in {:<14} discoveries {:<14} bits {:<20} ops {}\n",
                cell.spec_name,
                cell.n,
                cell.t,
                cell.adversary,
                lock.render(),
                disc.render(),
                bits.render(),
                ops.render(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan() -> SweepPlan {
        SweepPlan::new(
            vec![
                SweepConfig::traced(AlgorithmSpec::Exponential, 7, 2),
                SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
            ],
            vec![
                AdversaryFamily::random_liar(FaultSelection::with_source()),
                AdversaryFamily::no_faults(),
            ],
            3,
        )
    }

    #[test]
    fn seeding_is_coordinate_pure() {
        let plan = small_plan();
        assert_eq!(plan.seed_for(0, 0, 0), 0);
        assert_eq!(plan.seed_for(0, 0, 5), 5);
        assert_ne!(plan.seed_for(1, 0, 0), plan.seed_for(0, 1, 0));
        let shifted = small_plan().with_base_seed(99);
        assert_eq!(shifted.seed_for(0, 0, 0), 99);
    }

    #[test]
    fn serial_and_parallel_reports_are_identical() {
        let plan = small_plan();
        let serial = plan.run_with_jobs(1);
        let parallel = plan.run_with_jobs(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.total_runs, 12);
        assert_eq!(serial.cells.len(), 4);
        assert!(serial.render().contains("hybrid"));
    }

    #[test]
    fn sweep_map_preserves_order() {
        let out = sweep_map_with_jobs((0..32usize).collect(), 4, |i| i * 3);
        assert_eq!(out, (0..32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_setting_round_trips() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }
}
