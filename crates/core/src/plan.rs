//! Executable round plans.
//!
//! Every algorithm in the paper — the Exponential Algorithm, Algorithms A
//! and B, Algorithm C, and the hybrid — compiles to a linear *plan*: one
//! [`RoundAction`] per communication round. The plan is the executable
//! counterpart of the paper's Figures 2 and 3; printing it reproduces the
//! pseudocode structure, and the [`crate::GearedProtocol`] machine
//! interprets it.

use sg_eigtree::Conversion;

use crate::schedule::{algorithm_a_blocks, algorithm_b_blocks, BlockPlan, HybridSchedule};

/// An end-of-round conversion (`shift_{k→1}` on the principal structure).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConvertSpec {
    /// Which conversion function to apply (`resolve` or `resolve'`).
    pub conversion: Conversion,
    /// Whether Algorithm A's Fault Discovery Rule During Conversion runs.
    pub discovery: bool,
}

/// What one communication round does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoundAction {
    /// Round 1: the source broadcasts its initial value; everyone stores
    /// it as the root of their tree.
    Initial,
    /// A no-repetition information-gathering round: broadcast the deepest
    /// tree level, store the next, discover and mask; optionally convert
    /// and shrink at the end (a block boundary / shift).
    Gather {
        /// End-of-round conversion, if this round closes a block.
        convert: Option<ConvertSpec>,
    },
    /// Algorithm C's round 2: broadcast the root, store the intermediate
    /// vertices, apply the discovery rule to the root's children.
    RepFirstGather,
    /// Algorithm C's rounds ≥ 3: broadcast intermediates, store leaves,
    /// discover, mask, reorder, and `shift_{3→2}`-convert back to two
    /// levels.
    RepGather,
}

impl RoundAction {
    /// Whether this action operates on the with-repetitions tree.
    pub fn is_rep(&self) -> bool {
        matches!(self, RoundAction::RepFirstGather | RoundAction::RepGather)
    }
}

/// Appends a block-structured gather phase to `plan`: each block is
/// `len−1` plain gather rounds followed by one gather round ending in the
/// given conversion.
fn push_blocks(plan: &mut Vec<RoundAction>, blocks: &BlockPlan, convert: ConvertSpec) {
    for &len in &blocks.blocks {
        for _ in 0..len.saturating_sub(1) {
            plan.push(RoundAction::Gather { convert: None });
        }
        plan.push(RoundAction::Gather {
            convert: Some(convert),
        });
    }
}

/// The Exponential Algorithm's plan (§3): round 1 plus `t` gather rounds,
/// converting once at the very end.
pub fn exponential_plan(t: usize, conversion: Conversion) -> Vec<RoundAction> {
    let mut plan = vec![RoundAction::Initial];
    for round in 0..t {
        plan.push(RoundAction::Gather {
            convert: (round == t - 1).then_some(ConvertSpec {
                conversion,
                discovery: matches!(conversion, Conversion::ResolvePrime { .. }),
            }),
        });
    }
    plan
}

/// Algorithm B's plan (Fig. 2). For `b ≥ t` this is the Exponential
/// Algorithm's plan with `resolve`, exactly as the paper specifies.
pub fn algorithm_b_plan(t: usize, b: usize) -> Vec<RoundAction> {
    if b >= t {
        return exponential_plan(t, Conversion::Resolve);
    }
    let mut plan = vec![RoundAction::Initial];
    push_blocks(
        &mut plan,
        &algorithm_b_blocks(t, b),
        ConvertSpec {
            conversion: Conversion::Resolve,
            discovery: false,
        },
    );
    plan
}

/// Algorithm A's plan (§4.2). For `b ≥ t` this is the Exponential
/// Algorithm's plan with `resolve'`.
pub fn algorithm_a_plan(t: usize, b: usize) -> Vec<RoundAction> {
    if b >= t {
        return exponential_plan(t, Conversion::ResolvePrime { t });
    }
    let mut plan = vec![RoundAction::Initial];
    push_blocks(
        &mut plan,
        &algorithm_a_blocks(t, b),
        ConvertSpec {
            conversion: Conversion::ResolvePrime { t },
            discovery: true,
        },
    );
    plan
}

/// Algorithm C's plan (§4.3): round 1, the first rep-gather round, then
/// `t−1` shift-cycles, for `t+1` rounds total.
pub fn algorithm_c_plan(t: usize) -> Vec<RoundAction> {
    let mut plan = vec![RoundAction::Initial, RoundAction::RepFirstGather];
    for _ in 0..t.saturating_sub(1) {
        plan.push(RoundAction::RepGather);
    }
    plan
}

/// The hybrid's plan (Fig. 3): `k_AB` rounds of Algorithm A, `k_BC` rounds
/// of Algorithm B (from its round 2), then `t − t_AC + 1` rounds of
/// Algorithm C (from its round 2).
pub fn hybrid_plan(schedule: &HybridSchedule) -> Vec<RoundAction> {
    let t = schedule.t;
    let mut plan = vec![RoundAction::Initial];
    push_blocks(
        &mut plan,
        &BlockPlan {
            blocks: schedule.a_blocks.clone(),
        },
        ConvertSpec {
            conversion: Conversion::ResolvePrime { t },
            discovery: true,
        },
    );
    push_blocks(
        &mut plan,
        &BlockPlan {
            blocks: schedule.b_blocks.clone(),
        },
        ConvertSpec {
            conversion: Conversion::Resolve,
            discovery: false,
        },
    );
    plan.push(RoundAction::RepFirstGather);
    for _ in 0..schedule.c_rounds.saturating_sub(1) {
        plan.push(RoundAction::RepGather);
    }
    debug_assert_eq!(plan.len(), schedule.total_rounds());
    plan
}

/// Renders a plan as indented pseudocode in the style of the paper's
/// Figures 2 and 3, for the plan-reproduction experiment.
pub fn render_plan(name: &str, plan: &[RoundAction]) -> String {
    let mut out = format!("{name}:\n");
    for (i, action) in plan.iter().enumerate() {
        let round = i + 1;
        let line = match action {
            RoundAction::Initial => "the source broadcasts its value; store tree(s)".to_string(),
            RoundAction::Gather { convert: None } => {
                "gather: broadcast deepest level; store; discover; mask".to_string()
            }
            RoundAction::Gather {
                convert: Some(spec),
            } => format!(
                "gather, then shift: tree(s) := {}(s){}",
                spec.conversion.name(),
                if spec.discovery {
                    "  { discovery during conversion }"
                } else {
                    ""
                }
            ),
            RoundAction::RepFirstGather => {
                "C: broadcast tree(s); store intermediate vertices; discover".to_string()
            }
            RoundAction::RepGather => {
                "C: broadcast intermediates; store leaves; discover; mask; reorder; shift 3->2"
                    .to_string()
            }
        };
        out.push_str(&format!("  round {round:>2}: {line}\n"));
    }
    out.push_str("  decide on the converted root\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{algorithm_a_rounds_exact, algorithm_b_rounds_exact};

    #[test]
    fn exponential_plan_has_one_final_conversion() {
        let plan = exponential_plan(3, Conversion::Resolve);
        assert_eq!(plan.len(), 4);
        assert!(matches!(plan[0], RoundAction::Initial));
        assert!(matches!(plan[1], RoundAction::Gather { convert: None }));
        assert!(matches!(
            plan[3],
            RoundAction::Gather {
                convert: Some(ConvertSpec {
                    conversion: Conversion::Resolve,
                    discovery: false
                })
            }
        ));
    }

    #[test]
    fn plan_lengths_match_schedules() {
        for t in 3..15 {
            for b in 2..t {
                assert_eq!(
                    algorithm_b_plan(t, b).len(),
                    algorithm_b_rounds_exact(t, b),
                    "B t={t} b={b}"
                );
                if b >= 3 {
                    assert_eq!(
                        algorithm_a_plan(t, b).len(),
                        algorithm_a_rounds_exact(t, b),
                        "A t={t} b={b}"
                    );
                }
            }
            assert_eq!(algorithm_c_plan(t).len(), t + 1);
        }
    }

    #[test]
    fn b_plan_converts_at_block_ends_only() {
        // t = 5, b = 3: blocks [3, 3]; conversions at rounds 4 and 7.
        let plan = algorithm_b_plan(5, 3);
        let convert_rounds: Vec<usize> = plan
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, RoundAction::Gather { convert: Some(_) }))
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(convert_rounds, vec![4, 7]);
    }

    #[test]
    fn a_plan_uses_resolve_prime_with_discovery() {
        let plan = algorithm_a_plan(7, 4);
        for action in &plan {
            if let RoundAction::Gather {
                convert: Some(spec),
            } = action
            {
                assert!(matches!(spec.conversion, Conversion::ResolvePrime { t: 7 }));
                assert!(spec.discovery);
            }
        }
    }

    #[test]
    fn hybrid_plan_has_three_phases_in_order() {
        let schedule = HybridSchedule::compute(16, 3);
        let plan = hybrid_plan(&schedule);
        assert_eq!(plan.len(), schedule.total_rounds());
        // After the first rep action, no more no-rep gathers appear.
        let first_rep = plan.iter().position(RoundAction::is_rep).unwrap();
        assert_eq!(first_rep, schedule.k_ab + schedule.k_bc);
        assert!(plan[first_rep..].iter().all(RoundAction::is_rep));
        assert!(matches!(plan[first_rep], RoundAction::RepFirstGather));
        // A-phase conversions use resolve', B-phase conversions resolve.
        let conversions: Vec<ConvertSpec> = plan
            .iter()
            .filter_map(|a| match a {
                RoundAction::Gather { convert: Some(s) } => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(
            conversions.len(),
            schedule.a_blocks.len() + schedule.b_blocks.len()
        );
        for (i, spec) in conversions.iter().enumerate() {
            if i < schedule.a_blocks.len() {
                assert!(matches!(spec.conversion, Conversion::ResolvePrime { .. }));
            } else {
                assert!(matches!(spec.conversion, Conversion::Resolve));
            }
        }
    }

    #[test]
    fn render_plan_mentions_shifts() {
        let plan = algorithm_b_plan(5, 3);
        let text = render_plan("Algorithm B(3), t=5", &plan);
        assert!(text.contains("tree(s) := resolve(s)"));
        assert!(text.contains("round  1"));
    }
}
