//! Interactive consistency and consensus, built from `n` parallel
//! Byzantine-agreement instances.
//!
//! The paper solves the *broadcast* problem (one source); Pease, Shostak
//! & Lamport's original goal — and the standard way to obtain full
//! consensus where every processor has an input — is **interactive
//! consistency**: every processor learns a common vector containing, for
//! each correct processor, that processor's input. We compose it from `n`
//! parallel instances of any of this crate's broadcast algorithms, one
//! per source, using the [`crate::multiplex`] substrate; consensus is the
//! plurality of the agreed vector.

use sg_sim::{Adversary, Outcome, PoolKey, ProcessId, Protocol, RunConfig, Value};

use crate::multiplex::{plurality, Multiplex};
use crate::params::Params;
use crate::spec::AlgorithmSpec;

/// Builds the interactive-consistency protocol instance for processor
/// `me`: `n` parallel `base` instances, instance `i` sourced at `P_i`
/// with `inputs[i]` (only `me`'s own slot is used as an actual input).
///
/// The composite decision is the plurality of the agreed vector (the
/// usual consensus rule); the full vector is retrievable from
/// [`Multiplex::decided_vector`] and is emitted as a trace note.
///
/// # Panics
///
/// Panics if `inputs.len() != params.n` or `base` fails validation.
pub fn interactive_consistency(
    base: AlgorithmSpec,
    params: Params,
    me: ProcessId,
    inputs: &[Value],
) -> Multiplex {
    assert_eq!(inputs.len(), params.n, "one input per processor");
    base.validate(params.n, params.t)
        .unwrap_or_else(|e| panic!("invalid base algorithm: {e}"));
    let mut subs: Vec<Box<dyn Protocol>> = Vec::with_capacity(params.n);
    let mut sub_configs: Vec<RunConfig> = Vec::with_capacity(params.n);
    for i in 0..params.n {
        let source = ProcessId(i);
        let sub_params = Params { source, ..params };
        let input = (me == source).then_some(inputs[i]);
        subs.push(base.build(sub_params, me, input));
        let mut cfg = RunConfig::new(params.n, params.t)
            .with_source_value(inputs[i])
            .with_domain(params.domain);
        cfg.source = source;
        sub_configs.push(cfg);
    }
    Multiplex::new(
        format!("interactive-consistency[{}]", base.name()),
        subs,
        Box::new(plurality),
    )
    .with_sub_configs(sub_configs)
}

/// The instance-pool key for [`run_consensus`]: the base algorithm's key
/// plus the full input vector (sub-instance inputs depend on every slot).
fn consensus_pool_key(base: AlgorithmSpec, config: &RunConfig, inputs: &[Value]) -> PoolKey {
    let mut words: Vec<u64> = Vec::with_capacity(inputs.len() + 2);
    words.push(0x1C0A_11E1); // interactive-consistency namespace
    words.push(base.pool_key(config).raw());
    words.extend(inputs.iter().map(|v| u64::from(v.raw())));
    PoolKey::of(&words)
}

/// Runs interactive consistency (and thereby consensus) over `inputs`
/// against `adversary`, using `base` for each broadcast instance.
///
/// The returned outcome's decisions are the consensus values (plurality
/// of each correct processor's agreed vector); agreement of the vectors
/// themselves is exercised in this module's tests via
/// [`Multiplex::decided_vector`].
///
/// # Panics
///
/// Panics if `inputs.len() != config.n` or the base algorithm fails
/// validation.
pub fn run_consensus(
    base: AlgorithmSpec,
    config: &RunConfig,
    inputs: Vec<Value>,
    adversary: &mut dyn Adversary,
) -> Outcome {
    assert_eq!(inputs.len(), config.n, "one input per processor");
    let params = Params::from_config(config);
    let key = consensus_pool_key(base, config, &inputs);
    sg_sim::run_pooled(config, adversary, key, move |me| {
        Box::new(interactive_consistency(base, params, me, &inputs))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sim::{Inbox, NoFaults, Payload, ProcCtx, ProcessSet, ValueDomain};

    fn params(n: usize, t: usize) -> Params {
        Params {
            n,
            t,
            source: ProcessId(0),
            domain: ValueDomain::binary(),
        }
    }

    /// Drives `n` interactive-consistency instances directly so the test
    /// can inspect every correct processor's agreed vector.
    fn drive_ic(
        n: usize,
        t: usize,
        inputs: &[Value],
        faulty: &ProcessSet,
        mut lie: impl FnMut(usize, ProcessId, ProcessId, Option<&Payload>) -> Payload,
    ) -> Vec<Multiplex> {
        let mut protos: Vec<Multiplex> = (0..n)
            .map(|i| {
                interactive_consistency(
                    AlgorithmSpec::Exponential,
                    params(n, t),
                    ProcessId(i),
                    inputs,
                )
            })
            .collect();
        let mut ctxs: Vec<ProcCtx> = (0..n).map(|i| ProcCtx::new(ProcessId(i))).collect();
        let rounds = protos[0].total_rounds();
        for round in 1..=rounds {
            for ctx in &mut ctxs {
                ctx.round = round;
            }
            let broadcasts: Vec<Option<Payload>> =
                (0..n).map(|i| protos[i].outgoing(&mut ctxs[i])).collect();
            for i in 0..n {
                let mut inbox = Inbox::empty(n);
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let sender = ProcessId(j);
                    let payload = if faulty.contains(sender) {
                        lie(round, sender, ProcessId(i), broadcasts[j].as_ref())
                    } else {
                        broadcasts[j].clone().unwrap_or(Payload::Missing)
                    };
                    inbox.set(sender, payload);
                }
                protos[i].deliver(&inbox, &mut ctxs[i]);
            }
        }
        for i in 0..n {
            let _ = protos[i].decide(&mut ctxs[i]);
        }
        protos
    }

    #[test]
    fn vectors_agree_and_contain_correct_inputs() {
        let n = 4;
        let t = 1;
        let inputs = vec![Value(1), Value(0), Value(1), Value(0)];
        let faulty = ProcessSet::from_members(n, [ProcessId(2)]);
        let protos = drive_ic(n, t, &inputs, &faulty, |_r, _s, recipient, shadow| {
            // The faulty processor two-faces every instance.
            match shadow {
                Some(Payload::Values(vals)) if recipient.index() % 2 == 0 => {
                    Payload::Values(vals.iter().map(|v| Value(1 - v.raw())).collect())
                }
                Some(p) => p.clone(),
                None => Payload::Missing,
            }
        });
        let vectors: Vec<&[Value]> = (0..n)
            .filter(|i| !faulty.contains(ProcessId(*i)))
            .map(|i| protos[i].decided_vector().expect("decided"))
            .collect();
        // IC1: all correct processors agree on the whole vector.
        for w in vectors.windows(2) {
            assert_eq!(w[0], w[1], "vectors diverged");
        }
        // IC2: correct processors' slots carry their inputs.
        for i in 0..n {
            if !faulty.contains(ProcessId(i)) {
                assert_eq!(vectors[0][i], inputs[i], "slot {i}");
            }
        }
    }

    #[test]
    fn consensus_on_unanimous_inputs_is_that_value() {
        let config = RunConfig::new(4, 1);
        let inputs = vec![Value(1); 4];
        let outcome = run_consensus(AlgorithmSpec::Exponential, &config, inputs, &mut NoFaults);
        assert!(outcome.agreement());
        assert_eq!(outcome.decision(), Some(Value(1)));
    }

    #[test]
    fn consensus_decisions_agree_under_faults() {
        let config = RunConfig::new(7, 2);
        let inputs = vec![
            Value(1),
            Value(0),
            Value(1),
            Value(1),
            Value(0),
            Value(1),
            Value(0),
        ];
        let mut adversary =
            sg_adversary::RandomLiar::new(sg_adversary::FaultSelection::without_source(), 77);
        let outcome = run_consensus(AlgorithmSpec::Exponential, &config, inputs, &mut adversary);
        assert!(outcome.agreement(), "consensus decisions diverged");
    }
}
