//! Shifting into Phase King — the paper's §6 open question, answered for
//! one foreign family.
//!
//! §5 reports (via Waarts) that one can shift into the Moses–Waarts
//! algorithms, and conjectures the same for Berman, Garay & Perry's
//! king-based protocols; §6 leaves open a general characterization of when
//! shifting between algorithms is safe. This module demonstrates a
//! concrete affirmative instance: a hybrid that runs one block of
//! **Algorithm A**, applies the paper's shift operator
//! (`tree(s) := resolve'(s)`, auxiliary fault lists carried across), and
//! finishes with the optimally resilient **Phase King** of
//! [`crate::optimal_king`] seeded from the converted preferred values.
//!
//! Why the shift is safe, in the paper's own terms:
//!
//! * **Agreement** needs nothing from the A prefix: Phase King reaches
//!   agreement from *arbitrary* seed values whenever `n > 3t`, the same
//!   resilience as Algorithm A — so the target algorithm's guarantee is
//!   unconditional.
//! * **Validity** is exactly the paper's persistence argument: a correct
//!   source makes all correct processors prefer its value after round 1;
//!   the Persistence Lemma keeps that unanimity through the A block and
//!   its `resolve'` conversion; and Phase King's locking rule preserves
//!   unanimity through every phase (its own persistence property).
//! * **Fault masking** carries across the shift like the paper's auxiliary
//!   data structures: processors globally detected during the A block stay
//!   masked in the king phases, so their messages read as `⊥`/default.
//!
//! Unlike the A→B→C hybrid, this shift buys *robustness of composition*
//! rather than speed — the king tail costs `3(t+1)` rounds but only
//! O(1)-value messages, so the composition trades the paper's `O(n^b)`
//! message blow-up for rounds while keeping full `⌊(n−1)/3⌋` resilience
//! and keeping the A block's large-message phase to a single block.

use sg_sim::{
    GearAction, Inbox, Payload, ProcCtx, ProcessId, Protocol, RoundStatus, RunConfig, Value,
};

use sg_eigtree::Conversion;

use crate::gearbox::{GearBox, GearPlan};
use crate::geared::GearedProtocol;
use crate::optimal_king::KingCore;
use crate::params::Params;
use crate::plan::{ConvertSpec, RoundAction};

/// The number of communication rounds `KingShift` runs at parameters
/// `(t, b)`: round 1, one A block of `min(b, t)` gather rounds, then
/// `t + 1` three-round king phases.
pub fn king_shift_rounds(t: usize, b: usize) -> usize {
    1 + b.min(t) + 3 * (t + 1)
}

/// One processor's instance of the A→King hybrid.
///
/// Build through [`crate::AlgorithmSpec::KingShift`]:
///
/// ```
/// use sg_core::{execute, AlgorithmSpec};
/// use sg_sim::{NoFaults, RunConfig, Value};
///
/// let config = RunConfig::new(10, 3).with_source_value(Value(1));
/// let outcome = execute(AlgorithmSpec::KingShift { b: 3 }, &config, &mut NoFaults)?;
/// assert_eq!(outcome.decision(), Some(Value(1)));
/// assert_eq!(outcome.scheduled_rounds, 16); // 1 + b + 3·(t+1)
/// // Fault-free runs shift out of the A block, lock in the first king
/// // phase's propose step and stop there — the king tail's expedite win.
/// assert_eq!(outcome.rounds_used, 6); // 1 + b + exchange + propose
/// # Ok::<(), sg_core::SpecError>(())
/// ```
pub struct KingShift {
    gear: GearBox,
}

impl KingShift {
    /// Builds an instance for processor `me` with block parameter `b`.
    ///
    /// `input` must be `Some` exactly when `me` is the source.
    ///
    /// # Panics
    ///
    /// Panics if the input/source relationship is violated or `b < 3`
    /// (Algorithm A blocks need at least three gather rounds to make
    /// progress, §4.2).
    pub fn new(params: Params, me: ProcessId, input: Option<Value>, b: usize) -> Self {
        assert!(b >= 3, "Algorithm A blocks require b >= 3, got {b}");
        let t = params.t;
        let gather_rounds = b.min(t);
        let mut plan = vec![RoundAction::Initial];
        for i in 0..gather_rounds {
            plan.push(RoundAction::Gather {
                convert: (i == gather_rounds - 1).then_some(ConvertSpec {
                    conversion: Conversion::ResolvePrime { t },
                    discovery: true,
                }),
            });
        }
        let geared = GearedProtocol::new(
            params,
            me,
            input,
            format!("king-shift-prefix(b={b})"),
            true,
            plan,
        );
        // One statically planned shift, no dynamic checkpoints: the
        // gear box replays the fixed A-block → king-tail schedule.
        KingShift {
            gear: GearBox::new(
                input,
                geared,
                Some(KingCore::new(params, me)),
                GearPlan {
                    static_tail: true,
                    phases: t + 1,
                    tail_label: "resolve' -> phase-king",
                    checkpoints: Vec::new(),
                    t,
                },
            ),
        }
    }

    /// The gear box running the shift (inspection hook for tests and
    /// the batch kernel's per-lane instances).
    pub fn gear(&self) -> &GearBox {
        &self.gear
    }

    /// The A-prefix machine (inspection hook for tests).
    pub fn prefix(&self) -> &GearedProtocol {
        self.gear.prefix()
    }

    /// The king-phase core (inspection hook for tests).
    pub fn core(&self) -> &KingCore {
        self.gear.core().expect("king shift always has a tail core")
    }

    /// Number of rounds in the A prefix, including round 1.
    pub fn prefix_rounds(&self) -> usize {
        self.gear.prefix_rounds()
    }
}

impl Protocol for KingShift {
    fn total_rounds(&self) -> usize {
        self.gear.worst_case_rounds()
    }

    fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload> {
        self.gear.outgoing(ctx)
    }

    fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx) {
        self.gear.deliver(inbox, ctx)
    }

    fn decide(&mut self, ctx: &mut ProcCtx) -> Value {
        // The source decided its own value in round 1 (§3); everyone else
        // decides the king core's final value.
        self.gear.decide(ctx)
    }

    fn space_nodes(&self) -> u64 {
        self.gear.space_nodes()
    }

    /// Forwards the active sub-plan's status through the gear box: the A
    /// prefix is a fixed-length tree block ([`RoundStatus::Continue`]
    /// throughout — its conversion needs the whole gathered tree), and
    /// the king tail reports [`KingCore::is_ready`]. The source is
    /// always ready.
    fn round_status(&self, ctx: &ProcCtx) -> RoundStatus {
        self.gear.round_status(ctx)
    }

    fn next_action(&self, ctx: &ProcCtx) -> GearAction {
        self.gear.next_action(ctx)
    }

    fn shift_gear(&mut self, ctx: &mut ProcCtx) {
        // No checkpoints today, so never called — forwarded anyway so a
        // future dynamic GearPlan cannot silently lose its shifts.
        self.gear.shift_gear(ctx)
    }

    fn reset(&mut self, id: ProcessId, config: &RunConfig) -> bool {
        // The A-block plan and phase count depend only on (t, b), which
        // the pool key fixes; the gear box resets the prefix machine and
        // king core in place.
        self.gear.reset(id, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sim::ValueDomain;

    fn params(n: usize, t: usize) -> Params {
        Params {
            n,
            t,
            source: ProcessId(0),
            domain: ValueDomain::binary(),
        }
    }

    #[test]
    fn round_budget_is_prefix_plus_king_phases() {
        let p = KingShift::new(params(16, 5), ProcessId(1), None, 3);
        assert_eq!(p.total_rounds(), 1 + 3 + 3 * 6);
        assert_eq!(p.total_rounds(), king_shift_rounds(5, 3));
    }

    #[test]
    fn block_parameter_is_clamped_to_t() {
        let p = KingShift::new(params(4, 1), ProcessId(1), None, 3);
        // t = 1: the A block is a single gather round.
        assert_eq!(p.prefix_rounds(), 2);
        assert_eq!(p.total_rounds(), king_shift_rounds(1, 3));
    }

    #[test]
    #[should_panic(expected = "b >= 3")]
    fn small_block_parameter_rejected() {
        let _ = KingShift::new(params(16, 5), ProcessId(1), None, 2);
    }

    #[test]
    fn prefix_rounds_delegate_to_geared() {
        let mut p = KingShift::new(params(4, 1), ProcessId(1), None, 3);
        let mut ctx = ProcCtx::new(ProcessId(1));
        ctx.round = 1;
        assert_eq!(p.outgoing(&mut ctx), None);
        let mut inbox = Inbox::empty(4);
        inbox.set(ProcessId(0), Payload::values([Value(1)]));
        p.deliver(&inbox, &mut ctx);
        assert_eq!(p.prefix().preferred(), Value(1));
    }

    #[test]
    fn shift_seeds_core_with_converted_preferred() {
        let mut p = KingShift::new(params(4, 1), ProcessId(1), None, 3);
        let mut ctx = ProcCtx::new(ProcessId(1));
        ctx.round = 1;
        let mut inbox = Inbox::empty(4);
        inbox.set(ProcessId(0), Payload::values([Value(1)]));
        p.deliver(&inbox, &mut ctx);
        // Round 2 closes the (single-round) A block: everyone echoes 1.
        ctx.round = 2;
        let _ = p.outgoing(&mut ctx);
        let mut inbox = Inbox::empty(4);
        for i in 2..4 {
            inbox.set(ProcessId(i), Payload::values([Value(1)]));
        }
        p.deliver(&inbox, &mut ctx);
        assert!(p.gear.seeded());
        assert_eq!(p.core().current(), Value(1));
    }
}
