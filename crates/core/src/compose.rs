//! First-class shift compositions — §6's open question made executable.
//!
//! The paper closes by asking: *"When can we shift from one algorithm to
//! another in a way that provides a better combination of our performance
//! measures …? We leave as an open question the characterization in
//! general of when it is safe to shift."* This module turns the paper's
//! own sufficient conditions (§4.4) into a checkable discipline: a
//! [`ShiftPlanBuilder`] assembles an arbitrary sequence of Algorithm A
//! blocks, Algorithm B blocks, an Algorithm C tail and/or a Phase King
//! tail — each with its own block parameter — and [`ShiftPlanBuilder::build`]
//! either proves the composition safe for `t` faults or rejects it with
//! the precise violated condition.
//!
//! # The safety ledger
//!
//! Every boundary in the paper's hybrid is justified by one invariant:
//! *either a persistent value has been obtained, or enough faults are
//! globally detected (and masked) that the next algorithm's proof goes
//! through*. The builder tracks the guaranteed-detection ledger `d`
//! exactly as §4.4 does:
//!
//! * an Algorithm A block of `b` rounds guarantees `b − 2` new global
//!   detections (Corollary 3) — hence `b ≥ 3`;
//! * an Algorithm B block of `b` rounds guarantees `b − 1` (Corollary 1) —
//!   hence `b ≥ 2`;
//! * the faulty source is detected in the first block (`+1`, counted
//!   once);
//! * and the ledger never needs to exceed `t`.
//!
//! Entry conditions, from the Main Theorem's derivation:
//!
//! * **B entry** needs `n − 2t + d > ⌊(n−1)/2⌋` (so Corollary 1 holds with
//!   `L_p ≥ d` despite `t > t_B`), unless `t ≤ t_B(n)` outright.
//! * **C entry** needs `n − t − (t − d)² > n/2` *and* `n − 2t + d > n/2`
//!   (the two branches of Proposition 4's proof), unless `t ≤ t_C(n)`.
//! * **King entry** is unconditional at `t ≤ t_A(n)`: Phase King reaches
//!   agreement from arbitrary seed values, so only validity relies on the
//!   shift (via the Strong Persistence Lemma), and that holds for any
//!   prefix.
//!
//! Terminal conditions (the composition must *finish* the job):
//!
//! * a **King tail** always suffices;
//! * a **C tail** of `r` rounds suffices when `r ≥ t − d + 1` (one round
//!   per remaining undetected fault, plus the source-rediscovery round —
//!   §4.4);
//! * a terminal **A/B segment** suffices when its last block spans at
//!   least `t − d′ + kₓ` gather rounds, where `d′` is the ledger before
//!   that block and `kₓ` is 1 for B and 2 for A (the paper's final
//!   `y + 1` / `y + 2` partial blocks).
//!
//! These are *sufficient* conditions assembled from the paper's own
//! lemmas, not a general characterization — the open question stays open —
//! but they are exactly the conditions the paper itself uses, so every
//! composition the paper writes down (Algorithm A, Algorithm B, the
//! hybrid) type-checks, and so do new ones (A→C without B, A→King,
//! mixed-b hybrids) that the paper never spells out.

use std::fmt;

use sg_eigtree::Conversion;
use sg_sim::{
    GearAction, Inbox, Payload, PoolKey, ProcCtx, ProcessId, Protocol, RoundStatus, RunConfig,
    Value,
};

use crate::gearbox::{Checkpoint, GearBox, GearPlan};
use crate::geared::GearedProtocol;
use crate::optimal_king::KingCore;
use crate::params::{t_a, t_b, t_c, Params};
use crate::plan::{ConvertSpec, RoundAction};
use crate::spec::SpecError;

/// One segment of a shift composition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Segment {
    /// `blocks` Algorithm A blocks of `b` gather rounds each
    /// (`resolve'` conversion with discovery-during-conversion).
    A {
        /// Gather rounds per block; `b ≥ 3`.
        b: usize,
        /// Number of consecutive blocks.
        blocks: usize,
    },
    /// `blocks` Algorithm B blocks of `b` gather rounds each
    /// (`resolve` conversion).
    B {
        /// Gather rounds per block; `b ≥ 2`.
        b: usize,
        /// Number of consecutive blocks.
        blocks: usize,
    },
    /// An Algorithm C tail of `rounds` gather rounds (entered at C's
    /// round 2). Terminal (may only be followed by a King tail).
    C {
        /// Rep-tree gather rounds; `rounds ≥ 1`.
        rounds: usize,
    },
    /// An optimally resilient Phase King tail of `t + 1` three-round
    /// phases seeded from the preceding structure's preferred value.
    /// Terminal.
    King,
}

/// Why a composition was rejected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ComposeError {
    /// The composition's parameters fail basic validation.
    Spec(SpecError),
    /// A segment's own parameters are malformed.
    BadSegment {
        /// Index of the offending segment.
        index: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// Entering segment `index` is not justified by the detection ledger.
    UnsafeShift {
        /// Index of the segment being entered.
        index: usize,
        /// Guaranteed global detections at the boundary.
        guaranteed: usize,
        /// Minimum the entry condition requires.
        required: usize,
        /// Which paper condition failed.
        condition: String,
    },
    /// The composition can end without agreement being guaranteed.
    Inconclusive {
        /// Guaranteed global detections at the end.
        guaranteed: usize,
        /// What a sufficient ending would have needed.
        needed: String,
    },
    /// A terminal segment (C or King) is followed by more segments.
    TrailingSegments {
        /// Index of the terminal segment.
        terminal_index: usize,
    },
    /// The composition has no segments.
    Empty,
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::Spec(e) => write!(f, "{e}"),
            ComposeError::BadSegment { index, reason } => {
                write!(f, "segment {index}: {reason}")
            }
            ComposeError::UnsafeShift {
                index,
                guaranteed,
                required,
                condition,
            } => write!(
                f,
                "unsafe shift into segment {index}: only {guaranteed} global detections \
                 guaranteed, need {required} ({condition})"
            ),
            ComposeError::Inconclusive { guaranteed, needed } => write!(
                f,
                "composition may end without agreement: {guaranteed} detections \
                 guaranteed, needed {needed}"
            ),
            ComposeError::TrailingSegments { terminal_index } => write!(
                f,
                "segment {terminal_index} is terminal; nothing may follow it"
            ),
            ComposeError::Empty => write!(f, "composition has no segments"),
        }
    }
}

impl std::error::Error for ComposeError {}

impl From<SpecError> for ComposeError {
    fn from(e: SpecError) -> Self {
        ComposeError::Spec(e)
    }
}

/// Smallest detection ledger that justifies entering Algorithm B at
/// `(n, t)`: `n − 2t + d > ⌊(n−1)/2⌋` (§4.4, the `t_AB` derivation); `0`
/// if `t` is within B's own resilience.
pub fn b_entry_requirement(n: usize, t: usize) -> usize {
    if t <= t_b(n) {
        return 0;
    }
    let target = (n - 1) / 2; // need n - 2t + d > target
    (target + 1 + 2 * t).saturating_sub(n)
}

/// Smallest detection ledger that justifies entering Algorithm C at
/// `(n, t)`: both `n − t − (t−d)² > n/2` and `n − 2t + d > n/2`
/// (Proposition 4's two branches, as instantiated in the Main Theorem);
/// `0` if `t` is within C's own resilience. Returns `None` when no ledger
/// value `≤ t` suffices (the shift can never be justified by detections
/// alone at these parameters).
pub fn c_entry_requirement(n: usize, t: usize) -> Option<usize> {
    if t <= t_c(n) {
        return Some(0);
    }
    (0..=t).find(|&d| {
        let undetected = t - d;
        // Strict "> n/2" via integer arithmetic: 2·lhs > n.
        let branch_late = 2 * (n.saturating_sub(t + undetected * undetected)) > n
            && n > t + undetected * undetected;
        let branch_round2 = 2 * ((n + d).saturating_sub(2 * t)) > n && n + d > 2 * t;
        branch_late && branch_round2
    })
}

/// A validated shift composition, ready to run.
///
/// Build with [`ShiftPlanBuilder`]. The composition compiles to a
/// tree-machine round plan (the A/B/C segments) plus an optional Phase
/// King tail, exactly like the paper's hybrid plus the §5 king shift.
#[derive(Clone, Debug)]
pub struct ShiftComposition {
    n: usize,
    t: usize,
    segments: Vec<Segment>,
    plan: Vec<RoundAction>,
    king_tail: bool,
    /// Whether the composition shifts dynamically: interior A/B block
    /// boundaries become runtime [`Checkpoint`]s into a king-tail escape
    /// (see [`ShiftPlanBuilder::dynamic`]).
    dynamic: bool,
    /// The compiled checkpoints (empty for static compositions).
    checkpoints: Vec<Checkpoint>,
}

impl ShiftComposition {
    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fault bound the composition was proved safe for.
    pub fn t(&self) -> usize {
        self.t
    }

    /// The validated segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The tree-machine plan (excludes the king tail's rounds).
    pub fn plan(&self) -> &[RoundAction] {
        &self.plan
    }

    /// Whether the composition shifts dynamically at runtime.
    pub fn is_dynamic(&self) -> bool {
        self.dynamic
    }

    /// The compiled dynamic checkpoints (empty for static compositions).
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Worst-case communication rounds: the full static plan (plus the
    /// planned king tail), or — for a dynamic composition — the longest
    /// schedule any shift sequence can produce (the latest checkpoint
    /// plus its full escape tail, when that exceeds the static plan).
    /// Shares [`crate::gearbox::worst_case_schedule`] with the built
    /// protocol's `total_rounds`, so the reported budget and the
    /// engine's schedule ceiling cannot drift apart.
    pub fn rounds(&self) -> usize {
        crate::gearbox::worst_case_schedule(
            self.plan.len(),
            self.king_tail,
            self.t + 1,
            &self.checkpoints,
        )
    }

    /// A display name for reports.
    pub fn name(&self) -> String {
        let mut parts = Vec::new();
        for s in &self.segments {
            parts.push(match s {
                Segment::A { b, blocks } => format!("A(b={b})x{blocks}"),
                Segment::B { b, blocks } => format!("B(b={b})x{blocks}"),
                Segment::C { rounds } => format!("C({rounds})"),
                Segment::King => "King".to_string(),
            });
        }
        let kind = if self.dynamic { "dynamic" } else { "compose" };
        format!("{kind}[{}]", parts.join("->"))
    }

    /// Builds the protocol instance for processor `me`.
    ///
    /// `input` must be `Some` exactly when `me` is the source.
    pub fn build(&self, params: Params, me: ProcessId, input: Option<Value>) -> ComposedProtocol {
        let geared = GearedProtocol::new(params, me, input, self.name(), true, self.plan.clone());
        // The king core exists when the static plan ends in a king tail
        // or the composition is dynamic (the tail is the escape target).
        let king = (self.king_tail || self.dynamic).then(|| KingCore::new(params, me));
        ComposedProtocol {
            gear: GearBox::new(
                input,
                geared,
                king,
                GearPlan {
                    static_tail: self.king_tail,
                    phases: self.t + 1,
                    tail_label: "composition -> phase-king",
                    checkpoints: self.checkpoints.clone(),
                    t: self.t,
                },
            ),
        }
    }

    /// The instance-pool key for this composition under `config`: the
    /// segment sequence (which fixes the compiled plan and king tail)
    /// plus every configuration field instances are seeded from.
    pub fn pool_key(&self, config: &RunConfig) -> PoolKey {
        let mut words: Vec<u64> = Vec::with_capacity(3 * self.segments.len() + 7);
        words.push(0xC035_035E); // composition namespace
        words.push(u64::from(self.dynamic));
        for seg in &self.segments {
            let (tag, a, b): (u64, usize, usize) = match *seg {
                Segment::A { b, blocks } => (1, b, blocks),
                Segment::B { b, blocks } => (2, b, blocks),
                Segment::C { rounds } => (3, rounds, 0),
                Segment::King => (4, 0, 0),
            };
            words.extend([tag, a as u64, b as u64]);
        }
        words.extend([
            config.n as u64,
            config.t as u64,
            u64::from(config.domain.size()),
            config.source.index() as u64,
            u64::from(config.source_value.raw()),
        ]);
        PoolKey::of(&words)
    }

    /// Runs the composition on the engine against `adversary`, recycling
    /// protocol instances across runs of the same composition.
    ///
    /// # Panics
    ///
    /// Panics if `config` disagrees with the composition's `(n, t)`.
    pub fn execute(
        &self,
        config: &RunConfig,
        adversary: &mut dyn sg_sim::Adversary,
    ) -> sg_sim::Outcome {
        assert_eq!(
            (config.n, config.t),
            (self.n, self.t),
            "config must match the composition's parameters"
        );
        let params = Params::from_config(config);
        let source = config.source;
        let source_value = config.source_value;
        sg_sim::run_pooled(config, adversary, self.pool_key(config), |me| {
            let input = (me == source).then_some(source_value);
            Box::new(self.build(params, me, input)) as Box<dyn Protocol>
        })
    }
}

/// Builder for [`ShiftComposition`]; see the module docs for the safety
/// rules it enforces.
///
/// # Examples
///
/// The paper's hybrid shape with per-phase block parameters the paper
/// never tried:
///
/// ```
/// use sg_core::compose::ShiftPlanBuilder;
///
/// let composition = ShiftPlanBuilder::new(16, 5)
///     .a_blocks(4, 2) // two A blocks of 4 gather rounds
///     .b_blocks(3, 1) // one B block of 3
///     .c_tail(3)      // three C rounds
///     .build()?;
/// assert!(composition.rounds() > 0);
/// # Ok::<(), sg_core::compose::ComposeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ShiftPlanBuilder {
    n: usize,
    t: usize,
    segments: Vec<Segment>,
    dynamic: bool,
}

impl ShiftPlanBuilder {
    /// Starts a composition for `n` processors tolerating `t` faults.
    pub fn new(n: usize, t: usize) -> Self {
        ShiftPlanBuilder {
            n,
            t,
            segments: Vec::new(),
            dynamic: false,
        }
    }

    /// Marks the composition *dynamic*: every interior A/B block
    /// boundary becomes a runtime [`Checkpoint`] at which the running
    /// composition may shift into a Phase King escape tail as soon as
    /// observed fault evidence bounds the active adversary (the
    /// [`crate::gearbox`] evidence rule), instead of completing the
    /// worst-case plan. The escape is sound regardless of the evidence —
    /// king entry is unconditional at `t ≤ t_A(n)` (the module's safety
    /// ledger) — so the static validation below still governs the
    /// never-shift path, and the dynamic path only trades the remaining
    /// plan for a tail whose guarantees stand on their own.
    pub fn dynamic(mut self) -> Self {
        self.dynamic = true;
        self
    }

    /// Appends `blocks` Algorithm A blocks of `b` gather rounds.
    pub fn a_blocks(mut self, b: usize, blocks: usize) -> Self {
        self.segments.push(Segment::A { b, blocks });
        self
    }

    /// Appends `blocks` Algorithm B blocks of `b` gather rounds.
    pub fn b_blocks(mut self, b: usize, blocks: usize) -> Self {
        self.segments.push(Segment::B { b, blocks });
        self
    }

    /// Appends an Algorithm C tail of `rounds` gather rounds.
    pub fn c_tail(mut self, rounds: usize) -> Self {
        self.segments.push(Segment::C { rounds });
        self
    }

    /// Appends a Phase King tail (`t + 1` three-round phases).
    pub fn king_tail(mut self) -> Self {
        self.segments.push(Segment::King);
        self
    }

    /// Compiles the composition *without* safety validation, for ablation
    /// experiments probing the boundary of the §4.4 conditions.
    ///
    /// The result runs on the engine like any validated composition but
    /// carries **no agreement guarantee**: the proofs backing
    /// [`ShiftPlanBuilder::build`] simply do not apply. Note the validator
    /// is *sufficient*, not necessary — a rejected composition may still
    /// happen to agree under particular adversaries (the strategy library
    /// does not currently refute `B-at-t_A`, for instance), which is
    /// exactly why §6 calls the general characterization an open question.
    /// Segment parameters must still be structurally well-formed (positive
    /// block counts, `2 ≤ b`, terminal ordering); only the
    /// detection-ledger safety conditions are skipped.
    ///
    /// # Panics
    ///
    /// Panics if the segments are structurally malformed (the conditions
    /// reported as [`ComposeError::BadSegment`] / [`ComposeError::Empty`]
    /// / [`ComposeError::TrailingSegments`]).
    pub fn build_unchecked(self) -> ShiftComposition {
        let (n, t) = (self.n, self.t);
        assert!(!self.segments.is_empty(), "composition has no segments");
        let mut plan = vec![RoundAction::Initial];
        let mut boundaries: Vec<Checkpoint> = Vec::new();
        let mut king_tail = false;
        let mut terminal = false;
        for seg in &self.segments {
            assert!(!terminal, "terminal segment must be last");
            match *seg {
                Segment::A { b, blocks } => {
                    assert!(b >= 3 && blocks > 0, "malformed A segment");
                    for _ in 0..blocks {
                        push_block(&mut plan, b, a_convert(t));
                        boundaries.push(Checkpoint {
                            round: plan.len(),
                            capacity: b - 2,
                        });
                    }
                }
                Segment::B { b, blocks } => {
                    assert!(b >= 2 && blocks > 0, "malformed B segment");
                    for _ in 0..blocks {
                        push_block(&mut plan, b, b_convert());
                        boundaries.push(Checkpoint {
                            round: plan.len(),
                            capacity: b - 1,
                        });
                    }
                }
                Segment::C { rounds } => {
                    assert!(rounds > 0, "malformed C segment");
                    plan.push(RoundAction::RepFirstGather);
                    for _ in 0..rounds - 1 {
                        plan.push(RoundAction::RepGather);
                    }
                    terminal = true;
                }
                Segment::King => {
                    king_tail = true;
                    terminal = true;
                }
            }
        }
        let checkpoints = compile_checkpoints(self.dynamic, boundaries, plan.len());
        ShiftComposition {
            n,
            t,
            segments: self.segments,
            plan,
            king_tail,
            dynamic: self.dynamic,
            checkpoints,
        }
    }

    /// Validates the composition and compiles it.
    ///
    /// # Errors
    ///
    /// Returns the first violated safety condition; see [`ComposeError`].
    pub fn build(self) -> Result<ShiftComposition, ComposeError> {
        let (n, t) = (self.n, self.t);
        if t == 0 {
            return Err(SpecError::FaultBoundZero.into());
        }
        if t > t_a(n) {
            return Err(SpecError::ResilienceExceeded {
                algorithm: "shift composition".to_string(),
                n,
                t,
                max_t: t_a(n),
            }
            .into());
        }
        if self.segments.is_empty() {
            return Err(ComposeError::Empty);
        }

        // Walk the segments, maintaining the guaranteed-detection ledger.
        let mut d = 0usize; // guaranteed global detections (capped at t)
        let mut any_block = false; // whether the source's +1 was counted
        let mut conclusive = false;
        let mut terminal: Option<usize> = None;
        let mut plan = vec![RoundAction::Initial];
        let mut boundaries: Vec<Checkpoint> = Vec::new();
        let mut king_tail = false;

        for (index, seg) in self.segments.iter().enumerate() {
            if let Some(terminal_index) = terminal {
                // C may be followed only by King; King by nothing.
                if !(matches!(self.segments[terminal_index], Segment::C { .. })
                    && matches!(seg, Segment::King)
                    && index == terminal_index + 1)
                {
                    return Err(ComposeError::TrailingSegments { terminal_index });
                }
            }
            match *seg {
                Segment::A { b, blocks } => {
                    if b < 3 {
                        return Err(ComposeError::BadSegment {
                            index,
                            reason: format!("Algorithm A blocks need b >= 3, got {b}"),
                        });
                    }
                    if b > t {
                        return Err(ComposeError::BadSegment {
                            index,
                            reason: format!(
                                "blocks longer than t are unsound: a depth-{b} tree has \
                                 internal nodes with fewer than 2t+1 children, breaking \
                                 the Correctness Lemma (b <= t = {t})"
                            ),
                        });
                    }
                    if blocks == 0 {
                        return Err(ComposeError::BadSegment {
                            index,
                            reason: "segment must contain at least one block".to_string(),
                        });
                    }
                    // A entry is unconditional at t <= t_A.
                    let mut d_before_last = d;
                    for block in 0..blocks {
                        if block + 1 == blocks {
                            d_before_last = d;
                        }
                        if !any_block {
                            d += 1; // the faulty source's first detection
                            any_block = true;
                        }
                        d = (d + (b - 2)).min(t);
                        push_block(&mut plan, b, a_convert(t));
                        boundaries.push(Checkpoint {
                            round: plan.len(),
                            capacity: b - 2,
                        });
                    }
                    // Terminal-A sufficiency: the last block spans the
                    // remaining undetected faults plus the paper's final
                    // y+2 slack — and b = t is always conclusive (it is
                    // the full Exponential Algorithm, whose t+1-node paths
                    // guarantee a common frontier outright).
                    conclusive = b >= (t - d_before_last + 2).min(t);
                }
                Segment::B { b, blocks } => {
                    if b < 2 {
                        return Err(ComposeError::BadSegment {
                            index,
                            reason: format!("Algorithm B blocks need b >= 2, got {b}"),
                        });
                    }
                    if b > t {
                        return Err(ComposeError::BadSegment {
                            index,
                            reason: format!(
                                "blocks longer than t are unsound: a depth-{b} tree has \
                                 internal nodes with fewer than 2t+1 children, breaking \
                                 the Correctness Lemma (b <= t = {t})"
                            ),
                        });
                    }
                    if blocks == 0 {
                        return Err(ComposeError::BadSegment {
                            index,
                            reason: "segment must contain at least one block".to_string(),
                        });
                    }
                    let required = b_entry_requirement(n, t);
                    if d < required {
                        return Err(ComposeError::UnsafeShift {
                            index,
                            guaranteed: d,
                            required,
                            condition: format!(
                                "Corollary 1 after shifting into B needs n - 2t + |L| > \
                                 (n-1)/2, i.e. |L| >= {required} at n={n}, t={t}"
                            ),
                        });
                    }
                    let mut d_before_last = d;
                    for block in 0..blocks {
                        if block + 1 == blocks {
                            d_before_last = d;
                        }
                        if !any_block {
                            d += 1;
                            any_block = true;
                        }
                        d = (d + (b - 1)).min(t);
                        push_block(&mut plan, b, b_convert());
                        boundaries.push(Checkpoint {
                            round: plan.len(),
                            capacity: b - 1,
                        });
                    }
                    conclusive = b >= (t - d_before_last + 1).min(t);
                }
                Segment::C { rounds } => {
                    if rounds == 0 {
                        return Err(ComposeError::BadSegment {
                            index,
                            reason: "Algorithm C tail needs at least one round".to_string(),
                        });
                    }
                    let required = match c_entry_requirement(n, t) {
                        Some(r) => r,
                        None => {
                            return Err(ComposeError::UnsafeShift {
                                index,
                                guaranteed: d,
                                required: t + 1,
                                condition: format!(
                                    "no detection count <= t justifies Algorithm C at \
                                     n={n}, t={t} (Proposition 4's inequalities)"
                                ),
                            })
                        }
                    };
                    if d < required {
                        return Err(ComposeError::UnsafeShift {
                            index,
                            guaranteed: d,
                            required,
                            condition: format!(
                                "Proposition 4 under t > t_C needs |L| >= {required} \
                                 at n={n}, t={t}"
                            ),
                        });
                    }
                    plan.push(RoundAction::RepFirstGather);
                    for _ in 0..rounds - 1 {
                        plan.push(RoundAction::RepGather);
                    }
                    // One round per remaining undetected fault plus the
                    // source-rediscovery round (§4.4).
                    conclusive = rounds > (t - d);
                    d = t.min(d + rounds.saturating_sub(1));
                    terminal = Some(index);
                }
                Segment::King => {
                    king_tail = true;
                    conclusive = true;
                    terminal = Some(index);
                }
            }
        }

        if !conclusive {
            return Err(ComposeError::Inconclusive {
                guaranteed: d,
                needed: "a King tail, a C tail of >= t - d + 1 rounds, or a final A/B \
                         block spanning the undetected faults"
                    .to_string(),
            });
        }

        let checkpoints = compile_checkpoints(self.dynamic, boundaries, plan.len());
        Ok(ShiftComposition {
            n,
            t,
            segments: self.segments,
            plan,
            king_tail,
            dynamic: self.dynamic,
            checkpoints,
        })
    }
}

/// Keeps only the *interior* block boundaries as dynamic checkpoints —
/// the final prefix round is the static boundary itself, never a vote —
/// and drops them all for static compositions.
fn compile_checkpoints(
    dynamic: bool,
    boundaries: Vec<Checkpoint>,
    prefix_len: usize,
) -> Vec<Checkpoint> {
    if !dynamic {
        return Vec::new();
    }
    boundaries
        .into_iter()
        .filter(|c| c.round < prefix_len)
        .collect()
}

fn a_convert(t: usize) -> ConvertSpec {
    ConvertSpec {
        conversion: Conversion::ResolvePrime { t },
        discovery: true,
    }
}

fn b_convert() -> ConvertSpec {
    ConvertSpec {
        conversion: Conversion::Resolve,
        discovery: false,
    }
}

fn push_block(plan: &mut Vec<RoundAction>, b: usize, convert: ConvertSpec) {
    for _ in 0..b - 1 {
        plan.push(RoundAction::Gather { convert: None });
    }
    plan.push(RoundAction::Gather {
        convert: Some(convert),
    });
}

/// A running instance of a [`ShiftComposition`]: a [`GearBox`] driving
/// the tree machine through the A/B/C segments plus an optional king
/// tail, with the fault list carried across the final shift as masks
/// (the paper's auxiliary-structure rule). Dynamic compositions
/// additionally vote to shift into the escape tail at their interior
/// block boundaries (see [`crate::gearbox`]).
pub struct ComposedProtocol {
    gear: GearBox,
}

impl ComposedProtocol {
    /// The tree-machine prefix (inspection hook).
    pub fn prefix(&self) -> &GearedProtocol {
        self.gear.prefix()
    }

    /// The underlying gear box (inspection hook).
    pub fn gear(&self) -> &GearBox {
        &self.gear
    }
}

impl Protocol for ComposedProtocol {
    fn total_rounds(&self) -> usize {
        self.gear.worst_case_rounds()
    }

    fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload> {
        self.gear.outgoing(ctx)
    }

    fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx) {
        self.gear.deliver(inbox, ctx)
    }

    fn decide(&mut self, ctx: &mut ProcCtx) -> Value {
        self.gear.decide(ctx)
    }

    fn space_nodes(&self) -> u64 {
        self.gear.space_nodes()
    }

    /// Forwards the active sub-plan's status through the gear box: the
    /// tree-machine prefix is fixed-length ([`RoundStatus::Continue`] —
    /// conversions need the whole gathered structure), and a running
    /// king tail reports [`KingCore::is_ready`]. The source is always
    /// ready; compositions without a king tail never stop early.
    fn round_status(&self, ctx: &ProcCtx) -> RoundStatus {
        self.gear.round_status(ctx)
    }

    fn next_action(&self, ctx: &ProcCtx) -> GearAction {
        self.gear.next_action(ctx)
    }

    fn shift_gear(&mut self, ctx: &mut ProcCtx) {
        self.gear.shift_gear(ctx)
    }

    fn reset(&mut self, id: ProcessId, config: &RunConfig) -> bool {
        // The compiled plan, checkpoints and phase count are fixed by
        // the pool key (segment sequence + dynamic flag + t); the gear
        // box resets the prefix machine and king core in place.
        self.gear.reset(id, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b_entry_requirement_matches_paper_t_ab() {
        // Paper: t_AB >= floor(t_A / 2). At n = 16, t = 5: need
        // n - 2t + d > (n-1)/2 = 7, i.e. 6 + d > 7, d >= 2.
        assert_eq!(b_entry_requirement(16, 5), 2);
        // Within B's own resilience no detections are needed.
        assert_eq!(b_entry_requirement(21, 5), 0);
        for n in [7usize, 10, 16, 22, 31, 43] {
            let t = t_a(n);
            let req = b_entry_requirement(n, t);
            assert!(n - 2 * t + req > (n - 1) / 2, "n={n}");
            assert!(
                req == 0 || n - 2 * t + req - 1 <= (n - 1) / 2,
                "minimal, n={n}"
            );
        }
    }

    #[test]
    fn c_entry_requirement_satisfies_prop4_inequalities() {
        for n in [16usize, 22, 31, 43] {
            let t = t_a(n);
            let d = c_entry_requirement(n, t).expect("satisfiable at t_A");
            let u = t - d;
            assert!(2 * (n - t - u * u) > n, "late branch n={n}");
            assert!(2 * (n + d - 2 * t) > n, "round-2 branch n={n}");
        }
        assert_eq!(c_entry_requirement(32, 4), Some(0)); // within t_C
    }

    #[test]
    fn canonical_hybrid_shape_validates() {
        // A blocks to earn B entry, B blocks to earn C entry, C tail.
        let c = ShiftPlanBuilder::new(16, 5)
            .a_blocks(3, 2)
            .b_blocks(3, 1)
            .c_tail(4)
            .build()
            .expect("paper-shaped composition is safe");
        assert!(c.rounds() > 0);
        assert_eq!(c.plan().len(), c.rounds());
        assert!(c.name().contains("A(b=3)x2"));
    }

    #[test]
    fn premature_b_entry_rejected() {
        // Straight into B with t = t_A(16) = 5 > t_B(16) = 3: unsafe.
        let err = ShiftPlanBuilder::new(16, 5)
            .b_blocks(3, 3)
            .c_tail(5)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, ComposeError::UnsafeShift { index: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn premature_c_entry_rejected() {
        // One A block of 3 guarantees 1 + 1 = 2 detections; C entry at
        // n = 16, t = 5 needs more.
        let required = c_entry_requirement(16, 5).unwrap();
        assert!(required > 2);
        let err = ShiftPlanBuilder::new(16, 5)
            .a_blocks(3, 1)
            .c_tail(5)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, ComposeError::UnsafeShift { index: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn short_c_tail_is_inconclusive() {
        // One A block of 5 guarantees 1 + 3 = 4 detections — enough to
        // *enter* C at n = 16, t = 5, but a 1-round tail cannot cover the
        // remaining undetected fault.
        let err = ShiftPlanBuilder::new(16, 5)
            .a_blocks(5, 1)
            .c_tail(1)
            .build()
            .unwrap_err();
        assert!(matches!(err, ComposeError::Inconclusive { .. }), "{err}");
    }

    #[test]
    fn king_tail_is_always_conclusive() {
        let c = ShiftPlanBuilder::new(16, 5)
            .a_blocks(3, 1)
            .king_tail()
            .build()
            .expect("king tail closes any prefix");
        assert_eq!(c.rounds(), 1 + 3 + 3 * 6);
    }

    #[test]
    fn segments_after_terminal_rejected() {
        let err = ShiftPlanBuilder::new(16, 5)
            .a_blocks(4, 3)
            .c_tail(5)
            .a_blocks(3, 1)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, ComposeError::TrailingSegments { .. }),
            "{err}"
        );
        // C followed by King is the one allowed terminal chain.
        assert!(ShiftPlanBuilder::new(16, 5)
            .a_blocks(4, 3)
            .c_tail(5)
            .king_tail()
            .build()
            .is_ok());
    }

    #[test]
    fn empty_and_zero_fault_compositions_rejected() {
        assert!(matches!(
            ShiftPlanBuilder::new(16, 5).build().unwrap_err(),
            ComposeError::Empty
        ));
        assert!(matches!(
            ShiftPlanBuilder::new(16, 0)
                .a_blocks(3, 1)
                .king_tail()
                .build(),
            Err(ComposeError::Spec(SpecError::FaultBoundZero))
        ));
        assert!(matches!(
            ShiftPlanBuilder::new(16, 6)
                .a_blocks(3, 1)
                .king_tail()
                .build(),
            Err(ComposeError::Spec(SpecError::ResilienceExceeded { .. }))
        ));
    }

    #[test]
    fn terminal_a_segment_matches_exponential_shape() {
        // One A block of exactly t gather rounds is the Exponential
        // Algorithm with resolve': conclusive on its own.
        let c = ShiftPlanBuilder::new(10, 3).a_blocks(3, 1).build().unwrap();
        assert_eq!(c.rounds(), 4);
    }

    #[test]
    fn blocks_longer_than_t_rejected() {
        assert!(matches!(
            ShiftPlanBuilder::new(10, 3).a_blocks(5, 1).build(),
            Err(ComposeError::BadSegment { index: 0, .. })
        ));
        assert!(matches!(
            ShiftPlanBuilder::new(21, 5)
                .b_blocks(6, 1)
                .c_tail(6)
                .build(),
            Err(ComposeError::BadSegment { index: 0, .. })
        ));
    }

    #[test]
    fn build_unchecked_compiles_rejected_shapes() {
        // The same shape `build` rejects compiles unchecked and runs —
        // without any guarantee (the validator is sufficient, not
        // necessary; see the method docs).
        let shape = || ShiftPlanBuilder::new(16, 5).b_blocks(3, 3).c_tail(4);
        assert!(matches!(
            shape().build(),
            Err(ComposeError::UnsafeShift { .. })
        ));
        let unchecked = shape().build_unchecked();
        assert_eq!(unchecked.rounds(), 1 + 3 * 3 + 4);
        let config = sg_sim::RunConfig::new(16, 5);
        let outcome = unchecked.execute(&config, &mut sg_sim::NoFaults);
        assert!(outcome.agreement(), "fault-free runs still agree");
    }

    #[test]
    #[should_panic(expected = "terminal segment must be last")]
    fn build_unchecked_still_rejects_structural_nonsense() {
        let _ = ShiftPlanBuilder::new(16, 5)
            .king_tail()
            .a_blocks(3, 1)
            .build_unchecked();
    }

    #[test]
    fn bad_block_parameters_rejected() {
        assert!(matches!(
            ShiftPlanBuilder::new(16, 5)
                .a_blocks(2, 1)
                .king_tail()
                .build(),
            Err(ComposeError::BadSegment { index: 0, .. })
        ));
        assert!(matches!(
            ShiftPlanBuilder::new(21, 5)
                .b_blocks(1, 1)
                .king_tail()
                .build(),
            Err(ComposeError::BadSegment { .. })
        ));
        assert!(matches!(
            ShiftPlanBuilder::new(16, 5)
                .a_blocks(3, 0)
                .king_tail()
                .build(),
            Err(ComposeError::BadSegment { .. })
        ));
        assert!(matches!(
            ShiftPlanBuilder::new(16, 5)
                .a_blocks(4, 2)
                .c_tail(0)
                .build(),
            Err(ComposeError::BadSegment { .. })
        ));
    }
}
