//! Lock-step batch tallies for the phase family.
//!
//! [`PhaseBatchKernel`] re-expresses [`PhaseKing`](crate::phase_king::PhaseKing) and
//! [`PhaseQueen`](crate::phase_queen::PhaseQueen) over lane words, the same way
//! [`KingBatchKernel`](crate::KingBatchKernel) does for `optimal-king`:
//! both protocols run `t + 1` two-round phases after the source round,
//! broadcast the *majority bit* of the exchange tally from the phase
//! leader, and differ only in the rule that decides when a processor may
//! ignore that leader. The exchange tallies become [`LaneCounts`]
//! bit-plane counters, and the two rules become threshold masks:
//!
//! * **King** (plurality with super-majority proof): keep the tally
//!   majority when its count exceeds `n/2 + t`, else adopt the king's
//!   broadcast.
//! * **Queen** (pure threshold): keep bit `b` when `2·count(b) > n + 2t`,
//!   else adopt the queen's broadcast.
//!
//! Both conditions convert to exact `ge` tests on the ones-counter (the
//! derivations are inline below); as in the scalar protocols, crossing
//! the super-threshold also marks the run ready for early stopping.

use sg_sim::batch::{BatchKernel, BatchNet, LaneCounts};
use sg_sim::RunConfig;

use crate::spec::AlgorithmSpec;

/// Which leader rule the kernel applies in phase rounds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PhaseRule {
    /// Phase King: plurality kept on `count > n/2 + t`.
    King,
    /// Phase Queen: bit kept on `2·count > n + 2t`.
    Queen,
}

/// The role of an engine round in the shared phase-family schedule.
enum Role {
    /// Round 1: only the source speaks.
    Source,
    /// Even rounds: everyone broadcasts its current value.
    Exchange,
    /// Odd rounds ≥ 3: the phase leader broadcasts its tally majority.
    Leader(usize),
}

/// Bit-sliced lane state for one batch of phase-king or phase-queen
/// runs: per slot, the current preferred value as a lane mask, the ones
/// counter of the last exchange, and the stability (ready) mask.
pub struct PhaseBatchKernel {
    n: usize,
    t: usize,
    source: usize,
    rule: PhaseRule,
    /// Lane mask of the source's input being `Value(1)` (uniform across
    /// the batch, like every configuration field).
    input_one: u64,
    current: Vec<u64>,
    ones: Vec<LaneCounts>,
    ready: Vec<u64>,
}

impl PhaseBatchKernel {
    /// The leader of 0-based `phase`: the `phase`-th processor id,
    /// skipping the source — identical to the scalar `king`/`queen`.
    fn leader(&self, phase: usize) -> usize {
        let mut remaining = phase;
        for idx in 0..self.n {
            if idx != self.source {
                if remaining == 0 {
                    return idx;
                }
                remaining -= 1;
            }
        }
        unreachable!("phase bound checked by the schedule")
    }

    fn role(&self, round: usize) -> Role {
        if round == 1 {
            Role::Source
        } else if round.is_multiple_of(2) {
            Role::Exchange
        } else {
            Role::Leader((round - 3) / 2)
        }
    }

    /// Lanes in which `slot`'s exchange tally has a ones-majority — the
    /// value the scalar plurality picks (`ones > n − ones  ⇔
    /// ones ≥ ⌊n/2⌋ + 1`), and exactly the majority bit a leader
    /// broadcasts under both rules.
    fn tally_majority(&self, slot: usize) -> u64 {
        self.ones[slot].ge(self.n / 2 + 1)
    }

    /// Commits `value` into `state[slot]` for lanes in `active` only,
    /// freezing retired runs.
    #[inline]
    fn commit(state: &mut [u64], slot: usize, value: u64, active: u64) {
        state[slot] = (value & active) | (state[slot] & !active);
    }
}

impl BatchKernel for PhaseBatchKernel {
    fn total_rounds(&self) -> usize {
        1 + 2 * (self.t + 1)
    }

    fn reset(&mut self, _lanes: usize) {
        for buf in [&mut self.current, &mut self.ready] {
            buf.clear();
            buf.resize(self.n, 0);
        }
        self.ones.clear();
        self.ones.resize_with(self.n, LaneCounts::default);
    }

    fn charge(&self, round: usize) -> u64 {
        match self.role(round) {
            Role::Source | Role::Leader(_) => 1,
            Role::Exchange => self.n as u64,
        }
    }

    fn snapshot_round(&self, round: usize) -> bool {
        // `Preferred` trace events land after the source round and after
        // every leader round, in both scalar protocols.
        matches!(self.role(round), Role::Source | Role::Leader(_))
    }

    fn outgoing(&mut self, round: usize, present: &mut [u64], one: &mut [u64], zero: &mut [u64]) {
        match self.role(round) {
            Role::Source => {
                present[self.source] = !0;
                one[self.source] = self.input_one;
                zero[self.source] = !self.input_one;
            }
            Role::Exchange => {
                for j in 0..self.n {
                    present[j] = !0;
                    one[j] = self.current[j];
                    zero[j] = !self.current[j];
                }
            }
            Role::Leader(phase) => {
                // Both rules broadcast the tally majority, *not* the
                // leader's current value (a stale value breaks the
                // consistency argument — see the scalar protocols).
                let leader = self.leader(phase);
                let maj = self.tally_majority(leader);
                present[leader] = !0;
                one[leader] = maj;
                zero[leader] = !maj;
            }
        }
    }

    fn deliver(&mut self, round: usize, net: &BatchNet<'_>, active: u64) {
        let (n, t) = (self.n, self.t);
        match self.role(round) {
            Role::Source => {
                // Everyone adopts the (sanitized) source value; anything
                // unreadable defaults to 0, so the delivered `one` mask
                // is exactly the adopted value.
                for i in 0..n {
                    let v = if i == self.source {
                        self.input_one
                    } else {
                        net.one(self.source, i)
                    };
                    Self::commit(&mut self.current, i, v, active);
                }
            }
            Role::Exchange => {
                // Count ones over all n slots (own current substituted
                // for the cleared self slot); zeros are n − ones because
                // absent/garbled values sanitize to 0.
                for i in 0..n {
                    let mut ones = LaneCounts::default();
                    for j in 0..n {
                        ones.add(if j == i {
                            self.current[i]
                        } else {
                            net.one(j, i)
                        });
                    }
                    self.ones[i].commit(&ones, active);
                }
            }
            Role::Leader(phase) => {
                let leader = self.leader(phase);
                let leader_maj = self.tally_majority(leader);
                for i in 0..n {
                    let read = if i == leader {
                        leader_maj
                    } else {
                        net.one(leader, i)
                    };
                    let maj = self.tally_majority(i);
                    let (keep_one, keep_zero) = match self.rule {
                        // King: `count(maj) > n/2 + t`. For `maj = 1`,
                        // `ones ≥ n/2 + t + 1` (which forces the majority,
                        // so no `maj` conjunct is needed); for `maj = 0`,
                        // `n − ones > n/2 + t  ⇔  ones < n − n/2 − t`.
                        PhaseRule::King => (
                            self.ones[i].ge(n / 2 + t + 1),
                            !self.ones[i].ge(n - n / 2 - t),
                        ),
                        // Queen: `2·count > n + 2t  ⇔  count ≥ k + 1` with
                        // `k = ⌊(n + 2t)/2⌋`; for zeros, `n − ones ≥ k + 1
                        // ⇔  ones < n − k`.
                        PhaseRule::Queen => {
                            let k = (n + 2 * t) / 2;
                            (self.ones[i].ge(k + 1), !self.ones[i].ge(n - k))
                        }
                    };
                    let stable = keep_one | keep_zero;
                    let v = (stable & maj) | (!stable & read);
                    Self::commit(&mut self.current, i, v, active);
                    Self::commit(&mut self.ready, i, stable, active);
                }
            }
        }
    }

    fn ready(&self, slot: usize) -> u64 {
        if slot == self.source {
            // The source decides its own input and is always ready.
            !0
        } else {
            self.ready[slot]
        }
    }

    fn current_one(&self, slot: usize) -> u64 {
        self.current[slot]
    }

    fn decision_one(&self, slot: usize) -> u64 {
        if slot == self.source {
            self.input_one
        } else {
            self.current[slot]
        }
    }
}

/// The batch kernel for `spec` under `config`, if any family provides
/// one: `optimal-king` ([`crate::king_batch_kernel`]), `phase-king`,
/// `phase-queen`, or the gear-shifting `king-shift` / `dynamic-king`
/// pair ([`crate::gear_batch_kernel`], a mixed-width kernel running the
/// tree prefix wide and the king tail narrow), each on a valid
/// binary-domain, unauthenticated configuration with a binary source
/// value and at most 64 processors. Everything else signals the caller
/// to take the scalar path.
pub fn batch_kernel(
    spec: &AlgorithmSpec,
    config: &RunConfig,
) -> Option<Box<dyn BatchKernel + Send>> {
    if config.authenticated
        || config.domain.size() != 2
        || config.source_value.raw() > 1
        || config.n > sg_sim::MAX_BATCH_RUNS
        || spec.validate(config.n, config.t).is_err()
    {
        return None;
    }
    let rule = match spec {
        AlgorithmSpec::OptimalKing => {
            return crate::king_batch_kernel(spec, config)
                .map(|k| Box::new(k) as Box<dyn BatchKernel + Send>);
        }
        AlgorithmSpec::KingShift { .. } | AlgorithmSpec::DynamicKing { .. } => {
            return crate::gear_batch_kernel(spec, config)
                .map(|k| Box::new(k) as Box<dyn BatchKernel + Send>);
        }
        AlgorithmSpec::PhaseKing => PhaseRule::King,
        AlgorithmSpec::PhaseQueen => PhaseRule::Queen,
        _ => return None,
    };
    Some(Box::new(PhaseBatchKernel {
        n: config.n,
        t: config.t,
        source: config.source.index(),
        rule,
        input_one: if config.source_value.raw() == 1 {
            !0
        } else {
            0
        },
        current: Vec::new(),
        ones: Vec::new(),
        ready: Vec::new(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sim::Value;

    fn config(n: usize, t: usize) -> RunConfig {
        RunConfig::new(n, t)
    }

    #[test]
    fn five_families_get_kernels() {
        assert!(batch_kernel(&AlgorithmSpec::OptimalKing, &config(16, 5)).is_some());
        assert!(batch_kernel(&AlgorithmSpec::PhaseKing, &config(16, 3)).is_some());
        assert!(batch_kernel(&AlgorithmSpec::PhaseQueen, &config(16, 3)).is_some());
        assert!(batch_kernel(&AlgorithmSpec::KingShift { b: 3 }, &config(16, 5)).is_some());
        assert!(batch_kernel(&AlgorithmSpec::DynamicKing { b: 3 }, &config(16, 5)).is_some());
        assert!(batch_kernel(&AlgorithmSpec::Hybrid { b: 3 }, &config(16, 5)).is_none());
    }

    #[test]
    fn invalid_or_oversized_configs_are_refused() {
        // n ≤ 4t violates the phase-family resilience bound.
        assert!(batch_kernel(&AlgorithmSpec::PhaseKing, &config(12, 3)).is_none());
        assert!(batch_kernel(&AlgorithmSpec::PhaseQueen, &config(12, 3)).is_none());
        // More processors than lanes in a word.
        assert!(batch_kernel(&AlgorithmSpec::PhaseKing, &config(100, 3)).is_none());
        // Wide-domain source values have no single-bit lane form.
        let wide = config(16, 3).with_source_value(Value(7));
        assert!(batch_kernel(&AlgorithmSpec::PhaseKing, &wide).is_none());
    }

    #[test]
    fn leaders_skip_the_source_and_schedule_matches_scalar() {
        let kernel = batch_kernel(&AlgorithmSpec::PhaseKing, &config(9, 2))
            .expect("valid phase-king config");
        // 1 source round + 2·(t+1) phase rounds, like the scalar pair.
        assert_eq!(kernel.total_rounds(), 7);
        assert!(kernel.snapshot_round(1));
        assert!(!kernel.snapshot_round(2));
        assert!(kernel.snapshot_round(3));
        assert_eq!(kernel.charge(2), 9);
        assert_eq!(kernel.charge(3), 1);
    }
}
