//! Convenience entry point: validate, build, and run one execution.

use sg_sim::{Adversary, Outcome, RunArena, RunConfig};

use crate::spec::{AlgorithmSpec, SpecError};

/// Runs `spec` under `config` against `adversary` and returns the
/// engine's [`Outcome`].
///
/// Automatically attaches the signature registry for authenticated
/// baselines.
///
/// # Errors
///
/// Returns a [`SpecError`] if the algorithm cannot run at `(n, t)`.
///
/// # Examples
///
/// ```
/// use sg_core::{execute, AlgorithmSpec};
/// use sg_sim::{NoFaults, RunConfig, Value};
///
/// let config = RunConfig::new(4, 1);
/// let outcome = execute(AlgorithmSpec::Exponential, &config, &mut NoFaults)?;
/// assert!(outcome.agreement());
/// assert_eq!(outcome.decision(), Some(Value(1)));
/// # Ok::<(), sg_core::SpecError>(())
/// ```
pub fn execute(
    spec: AlgorithmSpec,
    config: &RunConfig,
    adversary: &mut dyn Adversary,
) -> Result<Outcome, SpecError> {
    spec.validate(config.n, config.t)?;
    let mut config = *config;
    if spec.needs_authentication() {
        config = config.with_authentication();
    }
    // Keyed by spec + configuration shape, so sweeps recycle protocol
    // instances across runs instead of boxing `n` fresh ones per run;
    // `sg_sim::set_instance_pooling(false)` restores fresh instances.
    let key = spec.pool_key(&config);
    Ok(sg_sim::run_pooled(
        &config,
        adversary,
        key,
        spec.factory(&config),
    ))
}

/// [`execute`] with caller-owned buffers: arena *and* keyed instance pool
/// live in `arena`, so a long-lived worker (the `sg-serve` daemon's pool,
/// the sweep engine's cell cursors) that loops over executions performs
/// no steady-state allocations and keeps its protocol instances warm
/// across runs — and across *requests*. Bit-identical to [`execute`]
/// (`tests/instance_pool.rs` pins pooled/fresh identity).
///
/// # Errors
///
/// Returns a [`SpecError`] if the algorithm cannot run at `(n, t)`.
pub fn execute_in(
    arena: &mut RunArena,
    spec: AlgorithmSpec,
    config: &RunConfig,
    adversary: &mut dyn Adversary,
) -> Result<Outcome, SpecError> {
    spec.validate(config.n, config.t)?;
    let mut config = *config;
    if spec.needs_authentication() {
        config = config.with_authentication();
    }
    let key = spec.pool_key(&config);
    Ok(sg_sim::run_pooled_in(
        arena,
        &config,
        adversary,
        key,
        spec.factory(&config),
    ))
}

/// [`execute_in`] streaming the result into a caller-held
/// [`Outcome`] buffer (see [`sg_sim::Outcome::buffer`]): arena, instance
/// pool *and* result storage all live with the caller, so a worker
/// looping over executions performs no per-run result allocations — the
/// sweep executor's steady-state path. Bit-identical to [`execute_in`].
///
/// # Errors
///
/// Returns a [`SpecError`] if the algorithm cannot run at `(n, t)`.
pub fn execute_into(
    arena: &mut RunArena,
    spec: AlgorithmSpec,
    config: &RunConfig,
    adversary: &mut dyn Adversary,
    out: &mut Outcome,
) -> Result<(), SpecError> {
    spec.validate(config.n, config.t)?;
    let mut config = *config;
    if spec.needs_authentication() {
        config = config.with_authentication();
    }
    let key = spec.pool_key(&config);
    sg_sim::run_pooled_into(arena, &config, adversary, key, spec.factory(&config), out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sim::{NoFaults, Value};

    #[test]
    fn fault_free_exponential_agrees_on_source_value() {
        let config = RunConfig::new(4, 1).with_source_value(Value(1));
        let outcome = execute(AlgorithmSpec::Exponential, &config, &mut NoFaults).unwrap();
        outcome.assert_correct();
        assert_eq!(outcome.decision(), Some(Value(1)));
        assert_eq!(outcome.rounds_used, 2);
    }

    #[test]
    fn invalid_parameters_surface_as_errors() {
        let config = RunConfig::new(4, 2);
        assert!(execute(AlgorithmSpec::Exponential, &config, &mut NoFaults).is_err());
    }

    #[test]
    fn all_algorithms_run_fault_free() {
        let cases = [
            (AlgorithmSpec::PlainExponential, 7, 2),
            (AlgorithmSpec::Exponential, 7, 2),
            (AlgorithmSpec::ExponentialPrime, 7, 2),
            (AlgorithmSpec::AlgorithmA { b: 3 }, 16, 5),
            (AlgorithmSpec::AlgorithmB { b: 3 }, 21, 5),
            (AlgorithmSpec::AlgorithmC, 18, 3),
            (AlgorithmSpec::Hybrid { b: 3 }, 16, 5),
            (AlgorithmSpec::PhaseKing, 9, 2),
            (AlgorithmSpec::PhaseQueen, 9, 2),
            (AlgorithmSpec::OptimalKing, 7, 2),
            (AlgorithmSpec::KingShift { b: 3 }, 10, 3),
            (AlgorithmSpec::DynamicKing { b: 3 }, 16, 5),
            (AlgorithmSpec::DolevStrong, 5, 3),
        ];
        for (spec, n, t) in cases {
            let config = RunConfig::new(n, t).with_source_value(Value(1));
            let outcome = execute(spec, &config, &mut NoFaults)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            outcome.assert_correct();
            assert_eq!(outcome.decision(), Some(Value(1)), "{}", spec.name());
            // The static schedule is always reported; the rounds actually
            // executed may undercut it (fault-free runs of the
            // early-stopping families terminate as soon as every correct
            // processor is ready).
            assert_eq!(
                outcome.scheduled_rounds,
                spec.rounds(n, t),
                "{}",
                spec.name()
            );
            assert!(
                outcome.rounds_used <= outcome.scheduled_rounds,
                "{}",
                spec.name()
            );
            assert_eq!(
                outcome.early_stopped,
                outcome.rounds_used < outcome.scheduled_rounds,
                "{}",
                spec.name()
            );
        }
    }
}
