//! # sg-core — the Shifting Gears agreement algorithms
//!
//! Implementations of every Byzantine-agreement algorithm in Bar-Noy,
//! Dolev, Dwork & Strong, *"Shifting Gears: Changing Algorithms on the Fly
//! to Expedite Byzantine Agreement"* (PODC 1987 / Inf. & Comp. 97, 1992):
//!
//! * the **Exponential Algorithm** (§3) — Exponential Information
//!   Gathering with Recursive Majority Voting, plain (PSL-style baseline)
//!   and modified with fault discovery + masking;
//! * **Algorithm A** (§4.2, Theorem 2) — the `⌊(n−1)/3⌋`-resilient
//!   shifted family using `resolve'`;
//! * **Algorithm B** (§4.1, Theorem 3, Fig. 2) — the `⌊(n−1)/4⌋`-resilient
//!   shifted family using `resolve`;
//! * **Algorithm C** (§4.3, Theorem 4) — the `√(n/2)`-resilient
//!   Dolev–Reischuk–Strong adaptation on trees with repetitions;
//! * the **Hybrid** (§4.4, Fig. 3, Main Theorem) — starts in A, shifts
//!   into B, then into C;
//! * two baselines for context: **Phase King** (constant-size messages)
//!   and authenticated **Dolev–Strong** with simulated signatures.
//!
//! All tree algorithms are instances of one plan-driven machine,
//! [`GearedProtocol`], because the paper's shift operator only converts
//! the principal data structure and carries the auxiliary fault lists
//! across unchanged — which is precisely what makes mid-execution
//! algorithm changes sound.
//!
//! # Examples
//!
//! Run the hybrid against a crashing adversary (strategies live in
//! `sg-adversary`; here, fault-free):
//!
//! ```
//! use sg_core::{execute, AlgorithmSpec};
//! use sg_sim::{NoFaults, RunConfig, Value};
//!
//! let config = RunConfig::new(16, 5).with_source_value(Value(1));
//! let outcome = execute(AlgorithmSpec::Hybrid { b: 3 }, &config, &mut NoFaults)?;
//! assert!(outcome.agreement());
//! assert_eq!(outcome.decision(), Some(Value(1)));
//! # Ok::<(), sg_core::SpecError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compose;
pub mod dolev_strong;
pub mod gear_batch;
pub mod gearbox;
mod geared;
pub mod interactive;
pub mod king_batch;
pub mod king_shift;
pub mod multiplex;
pub mod multivalued;
pub mod optimal_king;
mod params;
pub mod phase_batch;
pub mod phase_king;
pub mod phase_queen;
pub mod plan;
mod runner;
pub mod schedule;
mod spec;

pub use compose::{ComposeError, Segment, ShiftComposition, ShiftPlanBuilder};
pub use gear_batch::{gear_batch_kernel, GearBatchKernel};
pub use gearbox::{
    dynamic_king_blocks, dynamic_king_rounds, Checkpoint, DynamicKing, GearBox, GearPlan,
};
pub use geared::GearedProtocol;
pub use interactive::{interactive_consistency, run_consensus};
pub use king_batch::{king_batch_kernel, KingBatchKernel};
pub use king_shift::KingShift;
pub use multiplex::{plurality, Multiplex};
pub use multivalued::{multivalued_broadcast, run_multivalued};
pub use optimal_king::{KingCore, OptimalKing, PhaseStep};
pub use params::{isqrt, t_a, t_b, t_c, Params};
pub use phase_batch::{batch_kernel, PhaseBatchKernel};
pub use plan::{render_plan, RoundAction};
pub use runner::{execute, execute_in, execute_into};
pub use schedule::{choose_b, BChoice, HybridSchedule};
pub use spec::{AlgorithmSpec, SpecError};
