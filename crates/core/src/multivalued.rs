//! Multivalued Byzantine agreement over binary instances.
//!
//! The paper treats `|V|` as a constant and notes (§2) that a large value
//! set can be reduced to two elements with Coan's technique at the cost
//! of two rounds. We provide the standard *bit-parallel* reduction
//! instead (see DESIGN.md §5): run `⌈log₂|V|⌉` binary instances of any of
//! the paper's algorithms in parallel — one per bit of the source's value
//! — and reassemble the agreed bits. Same round count as the binary
//! algorithm; message length multiplied by the bit width. Agreement and
//! validity lift bit-wise: every instance agrees, so the reassembled
//! values agree; a correct source's bits are each decided faithfully.

use sg_sim::{Adversary, Outcome, PoolKey, ProcessId, Protocol, RunConfig, Value, ValueDomain};

use crate::multiplex::Multiplex;
use crate::params::Params;
use crate::spec::AlgorithmSpec;

/// Number of binary instances needed for `domain`.
pub fn bits_needed(domain: ValueDomain) -> usize {
    domain.bits_per_value() as usize
}

/// Builds the multivalued broadcast instance for processor `me`: one
/// binary `base` instance per bit of the outer `params.domain`.
///
/// `input` must be `Some` exactly when `me` is the source.
///
/// # Panics
///
/// Panics if the input/source relationship is violated or `base` fails
/// validation at `(n, t)`.
pub fn multivalued_broadcast(
    base: AlgorithmSpec,
    params: Params,
    me: ProcessId,
    input: Option<Value>,
) -> Multiplex {
    assert_eq!(
        input.is_some(),
        me == params.source,
        "exactly the source carries an input"
    );
    base.validate(params.n, params.t)
        .unwrap_or_else(|e| panic!("invalid base algorithm: {e}"));
    let outer_domain = params.domain;
    let bits = bits_needed(outer_domain);
    let sub_params = Params {
        domain: ValueDomain::binary(),
        ..params
    };
    // The source's per-bit inputs: reset re-derives them from these
    // configs, so pooled instances recycle across runs of one source
    // value (the pool key covers it).
    let source_value = input.unwrap_or(Value::DEFAULT);
    let mut subs: Vec<Box<dyn Protocol>> = Vec::with_capacity(bits);
    let mut sub_configs: Vec<RunConfig> = Vec::with_capacity(bits);
    for k in 0..bits {
        let bit = Value((source_value.raw() >> k) & 1);
        let bit_input = input.map(|_| bit);
        subs.push(base.build(sub_params, me, bit_input));
        let mut cfg = RunConfig::new(params.n, params.t).with_source_value(bit);
        cfg.source = params.source;
        sub_configs.push(cfg);
    }
    Multiplex::new(
        format!("multivalued[{}×{}]", base.name(), bits),
        subs,
        Box::new(move |bits_vec: &[Value]| {
            let mut raw: u16 = 0;
            for (k, bit) in bits_vec.iter().enumerate() {
                raw |= (bit.raw() & 1) << k;
            }
            // All correct processors reassemble the same raw value and
            // sanitize identically, so agreement is preserved even for
            // out-of-domain assemblies under a faulty source.
            outer_domain.sanitize(Value(raw))
        }),
    )
    .with_sub_configs(sub_configs)
}

/// Runs multivalued broadcast: the source's `config.source_value` is
/// agreed upon over a non-binary `config.domain`.
///
/// # Panics
///
/// Panics if the base algorithm fails validation.
pub fn run_multivalued(
    base: AlgorithmSpec,
    config: &RunConfig,
    adversary: &mut dyn Adversary,
) -> Outcome {
    let params = Params::from_config(config);
    let source = config.source;
    let source_value = config.source_value;
    // The base key already covers (n, t, domain, source, source value),
    // which determine every per-bit sub-instance; the namespace word
    // keeps multivalued composites apart from plain base instances.
    let key = PoolKey::of(&[0x3B17_5EED, base.pool_key(config).raw()]);
    sg_sim::run_pooled(config, adversary, key, move |me| {
        let input = (me == source).then_some(source_value);
        Box::new(multivalued_broadcast(base, params, me, input))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_adversary::{FaultSelection, RandomLiar, TwoFaced};
    use sg_sim::NoFaults;

    #[test]
    fn bits_needed_matches_domain_width() {
        assert_eq!(bits_needed(ValueDomain::binary()), 1);
        assert_eq!(bits_needed(ValueDomain::new(5)), 3);
        assert_eq!(bits_needed(ValueDomain::new(256)), 8);
    }

    #[test]
    fn fault_free_multivalued_broadcast() {
        for raw in [0u16, 3, 6] {
            let config = RunConfig::new(7, 2)
                .with_domain(ValueDomain::new(7))
                .with_source_value(Value(raw));
            let outcome = run_multivalued(AlgorithmSpec::Exponential, &config, &mut NoFaults);
            outcome.assert_correct();
            assert_eq!(outcome.decision(), Some(Value(raw)));
        }
    }

    #[test]
    fn multivalued_broadcast_under_faults() {
        for mut adversary in [
            Box::new(RandomLiar::new(FaultSelection::with_source(), 5)) as Box<dyn Adversary>,
            Box::new(TwoFaced::new(FaultSelection::without_source())),
        ] {
            let config = RunConfig::new(7, 2)
                .with_domain(ValueDomain::new(6))
                .with_source_value(Value(5));
            let outcome = run_multivalued(AlgorithmSpec::Exponential, &config, adversary.as_mut());
            outcome.assert_correct();
        }
    }

    #[test]
    fn multivalued_over_hybrid_base() {
        let config = RunConfig::new(10, 3)
            .with_domain(ValueDomain::new(4))
            .with_source_value(Value(2));
        let mut adversary = TwoFaced::new(FaultSelection::without_source());
        let outcome = run_multivalued(AlgorithmSpec::Hybrid { b: 3 }, &config, &mut adversary);
        outcome.assert_correct();
        assert_eq!(outcome.decision(), Some(Value(2)));
    }

    #[test]
    fn out_of_domain_assembly_sanitizes_consistently() {
        // A faulty source can drive the bit instances to assemble a raw
        // value outside the outer domain; all correct processors must
        // still agree (on the sanitized default).
        let config = RunConfig::new(7, 2)
            .with_domain(ValueDomain::new(3)) // 2 bits, raw 3 is invalid
            .with_source_value(Value(1));
        let mut adversary = RandomLiar::new(FaultSelection::with_source(), 9);
        let outcome = run_multivalued(AlgorithmSpec::Exponential, &config, &mut adversary);
        assert!(outcome.agreement());
    }
}
