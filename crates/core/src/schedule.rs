//! Round schedules and the paper's closed-form round counts.
//!
//! The shifted families run in *blocks*: after an initial round, each
//! block gathers for up to `b` rounds and ends with a `shift_{b+1→1}`
//! conversion. This module computes the exact block structure of
//! Algorithm A (§4.2), Algorithm B (§4.1) and the hybrid (§4.4), together
//! with the derived thresholds `t_AB`, `t_AC`, `t_BC` and phase lengths
//! `k_AB`, `k_BC` of the Main Theorem's proof.

use crate::params::t_a;

/// Block structure of one shifted-family phase: the lengths (in gather
/// rounds) of each block; every block ends with a conversion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockPlan {
    /// Gather-round length of each block, in execution order.
    pub blocks: Vec<usize>,
}

impl BlockPlan {
    /// Total gather rounds across all blocks.
    pub fn gather_rounds(&self) -> usize {
        self.blocks.iter().sum()
    }
}

/// Algorithm B's block structure for fault bound `t` and parameter `b`
/// (Fig. 2): `x = ⌊(t−1)/(b−1)⌋` blocks of `b` rounds, plus a final block
/// of `y+1` rounds iff `y = (t−1) mod (b−1) ≠ 0`.
///
/// # Panics
///
/// Panics unless `2 ≤ b < t` (use the Exponential Algorithm for `b ≥ t`).
pub fn algorithm_b_blocks(t: usize, b: usize) -> BlockPlan {
    assert!(b >= 2, "Algorithm B requires b >= 2");
    assert!(b < t, "for b >= t run the Exponential Algorithm instead");
    let x = (t - 1) / (b - 1);
    let y = (t - 1) % (b - 1);
    let mut blocks = vec![b; x];
    if y != 0 {
        blocks.push(y + 1);
    }
    BlockPlan { blocks }
}

/// Algorithm A's block structure for fault bound `t` and parameter `b`
/// (§4.2): `x = ⌊(t−1)/(b−2)⌋` blocks of `b` rounds, plus a final block of
/// `y+2` rounds iff `y = (t−1) mod (b−2) ≠ 0`.
///
/// # Panics
///
/// Panics unless `3 ≤ b < t` (use the Exponential Algorithm for `b ≥ t`;
/// `b = 2` gives no progress guarantee — the paper's time bound is
/// infinite there).
pub fn algorithm_a_blocks(t: usize, b: usize) -> BlockPlan {
    assert!(
        b >= 3,
        "Algorithm A requires b >= 3 for guaranteed progress"
    );
    assert!(b < t, "for b >= t run the Exponential Algorithm instead");
    let x = (t - 1) / (b - 2);
    let y = (t - 1) % (b - 2);
    let mut blocks = vec![b; x];
    if y != 0 {
        blocks.push(y + 2);
    }
    BlockPlan { blocks }
}

/// Exact round count of Algorithm B: `1 +` gather rounds. Matches
/// Theorem 3's `t + 1 + ⌊(t−1)/(b−1)⌋` (one fewer when `(b−1) | (t−1)`).
pub fn algorithm_b_rounds_exact(t: usize, b: usize) -> usize {
    if b >= t {
        return exponential_rounds(t);
    }
    1 + algorithm_b_blocks(t, b).gather_rounds()
}

/// Theorem 3's worst-case round bound for Algorithm B.
pub fn algorithm_b_rounds_bound(t: usize, b: usize) -> usize {
    t + 1 + (t - 1) / (b - 1)
}

/// Exact round count of Algorithm A: `1 +` gather rounds. Matches
/// Theorem 2's `t + 2 + 2⌊(t−1)/(b−2)⌋` (two fewer when `(b−2) | (t−1)`).
pub fn algorithm_a_rounds_exact(t: usize, b: usize) -> usize {
    if b >= t {
        return exponential_rounds(t);
    }
    1 + algorithm_a_blocks(t, b).gather_rounds()
}

/// Theorem 2's worst-case round bound for Algorithm A.
pub fn algorithm_a_rounds_bound(t: usize, b: usize) -> usize {
    t + 2 + 2 * ((t - 1) / (b - 2))
}

/// Round count of the Exponential Algorithm and of Algorithm C
/// (Proposition 1 and Theorem 4): `t + 1`.
pub fn exponential_rounds(t: usize) -> usize {
    t + 1
}

/// The hybrid's derived thresholds and phase lengths (§4.4).
///
/// * `t_ab` — global detections (or persistence) required before shifting
///   A→B: the least value with `n − 2t + t_AB > ⌊(n−1)/2⌋`, which makes
///   Corollary 1 usable after the shift.
/// * `t_ac` — detections required before shifting into C: the least value
///   with `n − t − (t − t_AC)² > n/2` and `n − 2t + t_AC > n/2`, clamped
///   to at least `t_ab`.
/// * `t_bc = t_ac − t_ab` — additional detections B must contribute.
/// * `k_ab = 2 + t_AB + 2⌊(t_AB−1)/(b−2)⌋` rounds of Algorithm A.
/// * `k_bc = 1 + t_BC + ⌊t_BC/(b−1)⌋` rounds of Algorithm B (from its
///   round 2).
/// * `c_rounds = t − t_AC + 1` rounds of Algorithm C (from its round 2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HybridSchedule {
    /// System size.
    pub n: usize,
    /// Fault bound (`t = t_A(n)`).
    pub t: usize,
    /// Block parameter.
    pub b: usize,
    /// Detections needed before the A→B shift.
    pub t_ab: usize,
    /// Detections needed before the B→C shift.
    pub t_ac: usize,
    /// Additional detections B must contribute (`t_ac − t_ab`).
    pub t_bc: usize,
    /// Rounds spent in Algorithm A.
    pub k_ab: usize,
    /// Rounds spent in Algorithm B.
    pub k_bc: usize,
    /// Rounds spent in Algorithm C.
    pub c_rounds: usize,
    /// Algorithm A phase block structure (gather rounds per block).
    pub a_blocks: Vec<usize>,
    /// Algorithm B phase block structure (gather rounds per block).
    pub b_blocks: Vec<usize>,
}

impl HybridSchedule {
    /// Computes the hybrid schedule for `n` processors with parameter `b`.
    /// The fault bound is `t = t_A(n) = ⌊(n−1)/3⌋`.
    ///
    /// # Panics
    ///
    /// Panics unless `t ≥ 3` (so all three phases are meaningful) and
    /// `3 ≤ b ≤ t`.
    pub fn compute(n: usize, b: usize) -> Self {
        let t = t_a(n);
        assert!(t >= 3, "hybrid needs t_A(n) >= 3, i.e. n >= 10");
        assert!((3..=t).contains(&b), "hybrid needs 3 <= b <= t");

        // Least t_AB with n − 2t + t_AB > ⌊(n−1)/2⌋; at least 1.
        let need = (n - 1) / 2;
        let t_ab = (need + 1 + 2 * t).saturating_sub(n).clamp(1, t);

        // Least t_AC satisfying both Lemma-6 preconditions; at least t_AB.
        let mut t_ac = t;
        for cand in t_ab..=t {
            let d = t - cand;
            // (t − t_AC)² < n/2 − t  ⟺  2d² < n − 2t.
            let sqrt_ok = 2 * d * d < n.saturating_sub(2 * t);
            // n − 2t + t_AC > n/2  ⟺  2(n − 2t + t_AC) > n.
            let majority_ok = 2 * (n - 2 * t + cand) > n;
            if sqrt_ok && majority_ok {
                t_ac = cand;
                break;
            }
        }
        let t_bc = t_ac - t_ab;

        // Phase A: x_A full blocks of b, one partial block of y_A + 2.
        let x_a = (t_ab - 1) / (b - 2);
        let y_a = (t_ab - 1) % (b - 2);
        let mut a_blocks = vec![b; x_a];
        a_blocks.push(y_a + 2);
        let k_ab = 1 + a_blocks.iter().sum::<usize>();
        debug_assert_eq!(k_ab, 2 + t_ab + 2 * x_a);

        // Phase B: x_B full blocks of b, one partial block of y_B + 1.
        let x_b = t_bc / (b - 1);
        let y_b = t_bc % (b - 1);
        let mut b_blocks = vec![b; x_b];
        b_blocks.push(y_b + 1);
        let k_bc = b_blocks.iter().sum::<usize>();
        debug_assert_eq!(k_bc, 1 + t_bc + x_b);

        let c_rounds = t - t_ac + 1;

        HybridSchedule {
            n,
            t,
            b,
            t_ab,
            t_ac,
            t_bc,
            k_ab,
            k_bc,
            c_rounds,
            a_blocks,
            b_blocks,
        }
    }

    /// Total communication rounds: `k_AB + k_BC + (t − t_AC + 1)`.
    pub fn total_rounds(&self) -> usize {
        self.k_ab + self.k_bc + self.c_rounds
    }

    /// The Main Theorem's closed-form round count:
    /// `t + 2⌊(t_AB−1)/(b−2)⌋ + ⌊t_BC/(b−1)⌋ + 4`.
    pub fn main_theorem_rounds(&self) -> usize {
        self.t + 2 * ((self.t_ab - 1) / (self.b - 2)) + self.t_bc / (self.b - 1) + 4
    }
}

/// The Main Theorem's round bound for given `n`, `b` — convenience
/// wrapper around [`HybridSchedule`].
pub fn hybrid_rounds_exact(n: usize, b: usize) -> usize {
    HybridSchedule::compute(n, b).total_rounds()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b_blocks_match_theorem_3() {
        // t = 10, b = 4: x = 3, y = 0 -> 3 blocks of 4; total 1+12 = 13
        // rounds = t + x = 13 (one fewer than the bound 14).
        let plan = algorithm_b_blocks(10, 4);
        assert_eq!(plan.blocks, vec![4, 4, 4]);
        assert_eq!(algorithm_b_rounds_exact(10, 4), 13);
        assert_eq!(algorithm_b_rounds_bound(10, 4), 14);

        // t = 10, b = 3: x = 4, y = 1 -> four blocks of 3 plus one of 2.
        let plan = algorithm_b_blocks(10, 3);
        assert_eq!(plan.blocks, vec![3, 3, 3, 3, 2]);
        assert_eq!(algorithm_b_rounds_exact(10, 3), 15);
        assert_eq!(algorithm_b_rounds_bound(10, 3), 15);
    }

    #[test]
    fn a_blocks_match_theorem_2() {
        // t = 10, b = 5: x = 3, y = 0 -> 3 blocks of 5; 1+15 = 16 rounds,
        // two fewer than the bound 18.
        let plan = algorithm_a_blocks(10, 5);
        assert_eq!(plan.blocks, vec![5, 5, 5]);
        assert_eq!(algorithm_a_rounds_exact(10, 5), 16);
        assert_eq!(algorithm_a_rounds_bound(10, 5), 18);

        // t = 10, b = 4: x = 4, y = 1 -> 4 blocks of 4 plus final of 3.
        let plan = algorithm_a_blocks(10, 4);
        assert_eq!(plan.blocks, vec![4, 4, 4, 4, 3]);
        assert_eq!(algorithm_a_rounds_exact(10, 4), 20);
        assert_eq!(algorithm_a_rounds_bound(10, 4), 20);
    }

    #[test]
    fn exact_never_exceeds_bound() {
        for t in 3..30 {
            for b in 2..t {
                assert!(
                    algorithm_b_rounds_exact(t, b) <= algorithm_b_rounds_bound(t, b),
                    "B t={t} b={b}"
                );
                if b >= 3 {
                    assert!(
                        algorithm_a_rounds_exact(t, b) <= algorithm_a_rounds_bound(t, b),
                        "A t={t} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn hybrid_schedule_consistency() {
        for n in [10, 13, 16, 19, 25, 31, 43] {
            let t = t_a(n);
            for b in 3..=t {
                let s = HybridSchedule::compute(n, b);
                assert_eq!(s.t, t);
                assert!(s.t_ab >= 1 && s.t_ab <= s.t_ac && s.t_ac <= t, "{s:?}");
                // Phase lengths match their closed forms.
                assert_eq!(s.k_ab, 2 + s.t_ab + 2 * ((s.t_ab - 1) / (b - 2)));
                assert_eq!(s.k_bc, 1 + s.t_bc + s.t_bc / (b - 1));
                assert_eq!(s.total_rounds(), s.k_ab + s.k_bc + s.t - s.t_ac + 1);
                // Main Theorem closed form agrees with the sum.
                assert_eq!(s.total_rounds(), s.main_theorem_rounds());
                // t_AB makes Corollary 1 usable after the A→B shift.
                assert!(s.n - 2 * s.t + s.t_ab > (s.n - 1) / 2);
                // t_AC satisfies the C-phase preconditions.
                let d = s.t - s.t_ac;
                assert!(2 * d * d < s.n - 2 * s.t, "{s:?}");
                assert!(2 * (s.n - 2 * s.t + s.t_ac) > s.n, "{s:?}");
            }
        }
    }

    #[test]
    fn hybrid_beats_algorithm_a() {
        // §4.4: the hybrid is faster than Algorithm A at equal resilience.
        for n in [16, 25, 31, 43] {
            let t = t_a(n);
            for b in 3..t {
                assert!(
                    hybrid_rounds_exact(n, b) <= algorithm_a_rounds_exact(t, b),
                    "n={n} b={b}: hybrid {} vs A {}",
                    hybrid_rounds_exact(n, b),
                    algorithm_a_rounds_exact(t, b)
                );
            }
        }
    }

    #[test]
    fn t_ab_is_half_t_for_n_3t_plus_1() {
        // For n = 3t+1 the paper's choice is t_AB = ⌊t/2⌋.
        for t in 3..20 {
            let n = 3 * t + 1;
            let s = HybridSchedule::compute(n, 3);
            assert_eq!(s.t_ab, t / 2, "t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "b >= 2")]
    fn b_rejects_b_one() {
        let _ = algorithm_b_blocks(5, 1);
    }

    #[test]
    #[should_panic(expected = "guaranteed progress")]
    fn a_rejects_b_two() {
        let _ = algorithm_a_blocks(5, 2);
    }
}

/// A recommended configuration from [`choose_b`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BChoice {
    /// The chosen block parameter.
    pub b: usize,
    /// Exact rounds of the hybrid at this `b`.
    pub rounds: usize,
    /// Largest message in values (`(n−1)⋯(n−b+1)`).
    pub max_message_values: u128,
}

/// Picks the smallest-round hybrid block parameter whose largest message
/// stays within `max_message_values` — the practical form of the paper's
/// rounds-versus-message-length trade-off: callers state their bandwidth
/// budget, the schedule arithmetic answers with the fastest admissible
/// gear train.
///
/// Returns `None` if `n` is too small for the hybrid (`t_A(n) < 3`) or
/// even `b = 3` exceeds the budget.
pub fn choose_b(n: usize, max_message_values: u128) -> Option<BChoice> {
    let t = t_a(n);
    if t < 3 {
        return None;
    }
    let mut best: Option<BChoice> = None;
    for b in 3..=t {
        let mut msg: u128 = 1;
        for j in 1..b {
            msg = msg.saturating_mul((n - j) as u128);
        }
        if msg > max_message_values {
            break; // message size is monotone in b
        }
        let rounds = HybridSchedule::compute(n, b).total_rounds();
        if best.is_none_or(|c| rounds < c.rounds) {
            best = Some(BChoice {
                b,
                rounds,
                max_message_values: msg,
            });
        }
    }
    best
}

#[cfg(test)]
mod choose_b_tests {
    use super::*;

    #[test]
    fn tight_budget_forces_small_b() {
        // b = 3 sends level-2 messages of 30·29 = 870 values at n = 31; a
        // budget of exactly 870 admits b = 3 but not b = 4 (870·28).
        let c = choose_b(31, 870).expect("b=3 fits");
        assert_eq!(c.b, 3);
        assert_eq!(c.max_message_values, 870);
        assert_eq!(c.rounds, HybridSchedule::compute(31, 3).total_rounds());
        // Below that, no hybrid configuration fits.
        assert_eq!(choose_b(31, 869), None);
    }

    #[test]
    fn loose_budget_buys_rounds() {
        let tight = choose_b(31, 1_000).unwrap();
        let loose = choose_b(31, 10_000_000).unwrap();
        assert!(loose.rounds <= tight.rounds);
        assert!(loose.b >= tight.b);
    }

    #[test]
    fn budget_is_respected() {
        for budget in [50u128, 1_000, 100_000] {
            if let Some(c) = choose_b(25, budget) {
                assert!(c.max_message_values <= budget);
            }
        }
    }

    #[test]
    fn tiny_systems_are_rejected() {
        assert_eq!(choose_b(7, u128::MAX), None); // t_A(7) = 2 < 3
    }
}
