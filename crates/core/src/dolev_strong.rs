//! Authenticated Dolev–Strong baseline (Dolev & Strong 1983, cited by the
//! paper).
//!
//! With unforgeable signatures, Byzantine broadcast tolerates any
//! `t ≤ n−2` in `t+1` rounds: the source signs and broadcasts its value;
//! a processor that first accepts a value `v` at the end of round `r` —
//! carried by a valid chain of `r` distinct signatures starting with the
//! source — appends its own signature and relays in round `r+1`. After
//! round `t+1`, a processor decides the unique accepted value, or the
//! default if it accepted none or several.
//!
//! Signatures are simulated by the engine's [`sg_sim::sig::SigRegistry`]
//! (see DESIGN.md §5, Substitutions): faulty processors can sign anything
//! as themselves but can never forge an honest signature, which is the
//! only property the proof uses.

use std::collections::BTreeSet;

use sg_sim::sig::SignedRelay;
use sg_sim::{
    Inbox, Payload, ProcCtx, ProcessId, Protocol, RoundStatus, RunConfig, TraceEvent, Value,
};

use crate::params::Params;

/// One processor's Dolev–Strong instance.
pub struct DolevStrong {
    params: Params,
    me: ProcessId,
    input: Option<Value>,
    /// Values accepted so far (the "extracted set").
    accepted: BTreeSet<Value>,
    /// Relays to broadcast next round (newly accepted, own signature
    /// already appended).
    outbox: Vec<SignedRelay>,
    /// Whether the last delivered round was *quiet*: it accepted no new
    /// value and left nothing to relay. The early-stopping quiescence
    /// rule (the `f+2` pattern: with `f` actual faults, every chain that
    /// reaches a correct processor has at most `f+1` signatures, so the
    /// first system-wide quiet round occurs by round `f+2`) reports
    /// ready from the first quiet round on.
    quiet: bool,
}

impl DolevStrong {
    /// Builds an instance for processor `me`. `input` must be `Some`
    /// exactly when `me` is the source.
    ///
    /// # Panics
    ///
    /// Panics if the input/source relationship is violated.
    pub fn new(params: Params, me: ProcessId, input: Option<Value>) -> Self {
        assert_eq!(
            input.is_some(),
            me == params.source,
            "exactly the source carries an input"
        );
        DolevStrong {
            params,
            me,
            input,
            accepted: BTreeSet::new(),
            outbox: Vec::new(),
            quiet: false,
        }
    }

    /// Whether a relay is acceptable at the end of `round`: valid chain of
    /// exactly `round` distinct signers starting with the source, not
    /// including us, and carrying a domain value.
    fn acceptable(&self, relay: &SignedRelay, round: usize, ctx: &ProcCtx) -> bool {
        if !self.params.domain.contains(relay.value) {
            return false;
        }
        if relay.chain.len() != round || relay.chain.first() != Some(&self.params.source) {
            return false;
        }
        if relay.chain.contains(&self.me) {
            return false;
        }
        let mut seen = BTreeSet::new();
        if !relay.chain.iter().all(|p| seen.insert(*p)) {
            return false;
        }
        ctx.verify(relay)
    }
}

impl Protocol for DolevStrong {
    fn total_rounds(&self) -> usize {
        self.params.t + 1
    }

    fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload> {
        if ctx.round == 1 {
            return self.input.map(|v| {
                let relay = ctx.sign(v);
                Payload::Signed(vec![relay])
            });
        }
        if self.outbox.is_empty() {
            None
        } else {
            Some(Payload::Signed(std::mem::take(&mut self.outbox)))
        }
    }

    fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx) {
        let round = ctx.round;
        if self.me == self.params.source {
            // The source accepted its own value implicitly in round 1 and
            // never relays further.
            if round == 1 {
                if let Some(v) = self.input {
                    self.accepted.insert(v);
                }
            }
            return;
        }
        let mut fresh: Vec<SignedRelay> = Vec::new();
        for i in 0..inbox.n() {
            let sender = ProcessId(i);
            if sender == self.me {
                continue;
            }
            if let Payload::Signed(relays) = inbox.from(sender) {
                for relay in relays {
                    ctx.charge(1 + relay.chain.len() as u64);
                    if self.acceptable(relay, round, ctx) && !self.accepted.contains(&relay.value) {
                        self.accepted.insert(relay.value);
                        ctx.emit(TraceEvent::Note {
                            text: format!("accepted value {} in round {round}", relay.value),
                        });
                        fresh.push(relay.clone());
                    }
                }
            }
        }
        // Relay newly accepted values next round (if any rounds remain).
        let fresh_any = !fresh.is_empty();
        if round < self.total_rounds() {
            for relay in fresh {
                if let Some(extended) = ctx.extend(&relay) {
                    self.outbox.push(extended);
                }
            }
        }
        // Quiescence for early stopping: nothing new arrived and nothing
        // is pending relay.
        self.quiet = !fresh_any && self.outbox.is_empty();
    }

    fn decide(&mut self, ctx: &mut ProcCtx) -> Value {
        let value = match self.input {
            Some(v) => v,
            None => {
                if self.accepted.len() == 1 {
                    *self.accepted.iter().next().expect("one element")
                } else {
                    // No value, or the (necessarily faulty) source signed
                    // several: everyone falls back to the default.
                    Value::DEFAULT
                }
            }
        };
        ctx.emit(TraceEvent::Decided { value });
        value
    }

    /// The quiescence rule. The source is always ready (it decides its
    /// own input); everyone else is ready from the first quiet round on.
    /// The engine stops only when *all* correct processors are quiet in
    /// the same round — and once they all are, no correct processor ever
    /// relays again, so (absent withheld faulty-only signature chains,
    /// which no strategy in the library banks) no acceptable chain can
    /// arrive later and every decision is final. The fixed-length escape
    /// hatch (`sg_sim::set_early_stopping(false)`) remains for
    /// adversarial studies outside that envelope.
    fn round_status(&self, _ctx: &ProcCtx) -> RoundStatus {
        if self.input.is_some() || self.quiet {
            RoundStatus::ReadyToDecide
        } else {
            RoundStatus::Continue
        }
    }

    fn reset(&mut self, id: ProcessId, config: &RunConfig) -> bool {
        self.params = Params::from_config(config);
        self.me = id;
        self.input = (id == config.source).then_some(config.source_value);
        self.accepted.clear();
        self.outbox.clear();
        self.quiet = false;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use sg_sim::sig::SigRegistry;
    use sg_sim::ValueDomain;
    use std::sync::Arc;

    fn params(n: usize, t: usize) -> Params {
        Params {
            n,
            t,
            source: ProcessId(0),
            domain: ValueDomain::binary(),
        }
    }

    fn ctx_with_sigs(me: ProcessId, reg: &Arc<Mutex<SigRegistry>>) -> ProcCtx {
        ProcCtx::new(me).with_sigs(reg.clone())
    }

    #[test]
    fn accepts_exactly_round_length_chains() {
        let reg = Arc::new(Mutex::new(SigRegistry::new()));
        let ds = DolevStrong::new(params(4, 2), ProcessId(2), None);
        let ctx = ctx_with_sigs(ProcessId(2), &reg);
        let r1 = reg.lock().originate(ProcessId(0), Value(1));
        assert!(ds.acceptable(&r1, 1, &ctx));
        assert!(!ds.acceptable(&r1, 2, &ctx));
        let r2 = reg.lock().extend(&r1, ProcessId(1)).unwrap();
        assert!(ds.acceptable(&r2, 2, &ctx));
    }

    #[test]
    fn rejects_chains_not_starting_at_source() {
        let reg = Arc::new(Mutex::new(SigRegistry::new()));
        let ds = DolevStrong::new(params(4, 2), ProcessId(2), None);
        let ctx = ctx_with_sigs(ProcessId(2), &reg);
        let bogus = reg.lock().originate(ProcessId(1), Value(1));
        assert!(!ds.acceptable(&bogus, 1, &ctx));
    }

    #[test]
    fn rejects_chains_containing_self() {
        let reg = Arc::new(Mutex::new(SigRegistry::new()));
        let ds = DolevStrong::new(params(4, 2), ProcessId(2), None);
        let ctx = ctx_with_sigs(ProcessId(2), &reg);
        let r1 = reg.lock().originate(ProcessId(0), Value(1));
        let r2 = reg.lock().extend(&r1, ProcessId(2)).unwrap();
        assert!(!ds.acceptable(&r2, 2, &ctx));
    }

    #[test]
    fn decide_prefers_unique_accepted_value() {
        let mut ds = DolevStrong::new(params(4, 2), ProcessId(1), None);
        let reg = Arc::new(Mutex::new(SigRegistry::new()));
        let mut ctx = ctx_with_sigs(ProcessId(1), &reg);
        assert_eq!(ds.decide(&mut ctx), Value::DEFAULT);
        ds.accepted.insert(Value(1));
        assert_eq!(ds.decide(&mut ctx), Value(1));
        ds.accepted.insert(Value(0));
        assert_eq!(ds.decide(&mut ctx), Value::DEFAULT);
    }
}
