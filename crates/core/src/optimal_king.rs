//! Optimally resilient Phase King (three rounds per phase, `n > 3t`).
//!
//! The paper's §5 surveys the successor literature — Berman, Garay &
//! Perry's king-based protocols with constant-size messages — as the
//! natural follow-on to shifting. [`PhaseKing`](crate::phase_king::PhaseKing)
//! is the classic two-round-per-phase variant, which needs `n > 4t`. This
//! module provides the *optimally resilient* member of that family: three
//! rounds per phase (exchange, proposal exchange, king tie-break) achieve
//! `n > 3t` — the same resilience as Algorithm A and the hybrid — still
//! with O(1)-value messages.
//!
//! # Per-phase structure
//!
//! Each processor holds a current value `v`. A phase runs three rounds:
//!
//! 1. **Exchange** — broadcast `v`. If some value `w` appears at least
//!    `n − t` times among the `n` received values (own included), propose
//!    `w`; otherwise propose `⊥`. Two correct processors can never propose
//!    different non-`⊥` values: each proposal is backed by at least
//!    `n − 2t` *correct* holders, and `2(n − 2t) > n − t` when `n > 3t`,
//!    so the backing sets intersect in a correct processor.
//! 2. **Proposal exchange** — broadcast the proposal (`⊥` encoded as an
//!    out-of-domain value; receivers treat any out-of-domain content as
//!    `⊥`). Let `top` be the most frequent non-`⊥` proposal received and
//!    `c` its count. If `c ≥ n − t`, adopt `top` and *lock* (the king is
//!    ignored); if `c ≥ t + 1`, adopt `top` unlocked; otherwise fall back
//!    to the default value unlocked. Because correct non-`⊥` proposals
//!    agree, any count `≥ t + 1` identifies the *unique* correct proposal
//!    value.
//! 3. **King** — the phase king broadcasts its post-step-2 value; unlocked
//!    processors adopt it.
//!
//! If all correct processors start a phase with the same value they all
//! lock on it (persistence); if the phase king is correct the phase ends
//! with all correct processors unanimous. With `t + 1` phases under
//! distinct kings, at least one king is correct, so agreement always
//! holds; validity follows from persistence seeded by the source round.
//!
//! The phase machinery is exposed as [`KingCore`] so that the
//! shift-into-king hybrid ([`crate::king_shift`]) can drive the same
//! phases from a converted information-gathering tree instead of a source
//! broadcast — the paper's §6 open question about shifting into foreign
//! algorithms, answered affirmatively for this family.

use sg_sim::{
    Inbox, PackedBallots, Payload, ProcCtx, ProcessId, ProcessSet, Protocol, RoundStatus,
    RunConfig, TraceEvent, Value,
};

use crate::params::Params;

/// The out-of-domain sentinel used on the wire for a `⊥` proposal.
///
/// Receivers do not trust the sentinel itself: *any* out-of-domain value
/// (including a garbled or missing message) is read as `⊥`, so a Byzantine
/// sender gains nothing by malforming proposals.
pub const BOT_WIRE: Value = Value(u16::MAX);

/// Which round of a phase a [`KingCore`] is executing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhaseStep {
    /// Round 1 of the phase: broadcast the current value.
    Exchange,
    /// Round 2: broadcast the `n − t`-supported proposal (or `⊥`).
    Propose,
    /// Round 3: the king broadcasts its value; unlocked processors adopt.
    King,
}

impl PhaseStep {
    /// The step for 0-based round-within-phase `i ∈ {0, 1, 2}`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    pub fn from_index(i: usize) -> Self {
        match i {
            0 => PhaseStep::Exchange,
            1 => PhaseStep::Propose,
            2 => PhaseStep::King,
            _ => panic!("phase steps are 0, 1, 2; got {i}"),
        }
    }
}

/// The state machine of one processor's three-round king phases.
///
/// Drive it with ([`KingCore::outgoing`], [`KingCore::deliver`]) once per
/// engine round, passing the phase number and [`PhaseStep`]. The embedding
/// protocol decides how the initial value is seeded (source broadcast in
/// [`OptimalKing`], converted tree root in the shift-into-king hybrid) and
/// how rounds map to phases.
pub struct KingCore {
    params: Params,
    me: ProcessId,
    current: Value,
    /// This processor's proposal from the exchange step (`None` = `⊥`).
    proposal: Option<Value>,
    locked: bool,
    /// Whether the latest propose step locked. Unlike `locked` (which
    /// the king step consumes and clears), this flag survives to the end
    /// of the phase: it is the early-stopping signal. If *every* correct
    /// processor locked in the same propose step they locked on the same
    /// value (correct non-`⊥` proposals agree), so correct unanimity
    /// holds and persists through every later phase — the decision is
    /// final and the engine may stop right at that propose round.
    ready: bool,
    /// Processors whose messages are masked to `⊥`/default — the paper's
    /// auxiliary fault list carried across a shift (empty unless the
    /// embedding protocol seeds it).
    masked: ProcessSet,
    /// Completed phases whose propose step did not lock — the tail-side
    /// fault-evidence stream (a failed phase means the adversary kept
    /// correct processors from a super-majority, or the phase king was
    /// faulty), surfaced for gear-shifting policies via
    /// [`KingCore::failed_phases`].
    failed_phases: usize,
}

impl KingCore {
    /// A core for processor `me` starting from the default value.
    pub fn new(params: Params, me: ProcessId) -> Self {
        KingCore {
            params,
            me,
            current: Value::DEFAULT,
            proposal: None,
            locked: false,
            ready: false,
            masked: ProcessSet::new(params.n),
            failed_phases: 0,
        }
    }

    /// Restores the core to its just-constructed state for processor
    /// `me`, reusing the masked-set storage when `n` is unchanged (the
    /// instance-pool path).
    pub fn reset(&mut self, params: Params, me: ProcessId) {
        self.params = params;
        self.me = me;
        self.current = Value::DEFAULT;
        self.proposal = None;
        self.locked = false;
        self.ready = false;
        self.failed_phases = 0;
        if self.masked.universe() == params.n {
            self.masked.clear();
        } else {
            self.masked = ProcessSet::new(params.n);
        }
    }

    /// Sets the current value (seeding at a shift boundary or after the
    /// source round).
    pub fn set_current(&mut self, v: Value) {
        self.current = v;
    }

    /// The processor's current value.
    pub fn current(&self) -> Value {
        self.current
    }

    /// Whether the processor locked its value in the current phase.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// The early-stopping signal: whether the latest propose step
    /// locked. Embedding protocols forward this from
    /// [`sg_sim::Protocol::round_status`]; the engine's all-correct
    /// conjunction makes it sound (see the `ready` field).
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Completed phases whose propose step failed to lock at this
    /// processor — the king tail's accumulated fault evidence, the
    /// counterpart of the tree prefix's detection ledger for
    /// gear-shifting policies (`sg_core::gearbox`). Fault-free phases
    /// lock immediately, so a nonzero count certifies adversary
    /// interference (a blocked super-majority or a faulty king).
    pub fn failed_phases(&self) -> usize {
        self.failed_phases
    }

    /// Masks `who`: all further messages from it are read as `⊥`/default.
    ///
    /// This is the Fault Masking Rule carried across a shift: faults
    /// globally detected by the tree algorithm stay masked in the king
    /// phases.
    pub fn mask(&mut self, who: ProcessId) {
        self.masked.insert(who);
    }

    /// The set of masked processors.
    pub fn masked(&self) -> &ProcessSet {
        &self.masked
    }

    /// The king of 0-based `phase`: the `phase`-th processor id, skipping
    /// the source (whose round-1 influence is not doubled).
    ///
    /// # Panics
    ///
    /// Panics if `phase ≥ n − 1` — there are only `n − 1` non-source kings.
    pub fn king(&self, phase: usize) -> ProcessId {
        assert!(
            phase < self.params.n - 1,
            "phase {phase} exceeds the {} available kings",
            self.params.n - 1
        );
        let mut remaining = phase;
        for idx in 0..self.params.n {
            if ProcessId(idx) != self.params.source {
                if remaining == 0 {
                    return ProcessId(idx);
                }
                remaining -= 1;
            }
        }
        unreachable!("phase bound checked above")
    }

    /// The payload to broadcast for `step` of `phase` (`None` = silent).
    ///
    /// Built with [`Payload::single`], so binary values and the `⊥`
    /// sentinel allocate nothing on their way to the interned shared
    /// payloads.
    pub fn outgoing(&mut self, phase: usize, step: PhaseStep) -> Option<Payload> {
        match step {
            PhaseStep::Exchange => Some(Payload::single(self.current)),
            PhaseStep::Propose => Some(Payload::single(self.proposal.unwrap_or(BOT_WIRE))),
            PhaseStep::King => (self.king(phase) == self.me).then(|| Payload::single(self.current)),
        }
    }

    /// Reads the single value `sender` sent, or `None` when the message is
    /// absent, malformed, out of domain, or the sender is masked.
    fn read(&self, inbox: &Inbox, sender: ProcessId) -> Option<Value> {
        if self.masked.contains(sender) {
            return None;
        }
        let v = inbox.from(sender).value_at(0)?;
        self.params.domain.contains(v).then_some(v)
    }

    /// The engine's packed-ballot view with this core's own fault masks
    /// and self slot applied — `None` when the view is absent or the
    /// domain is not binary (fall back to per-payload reads). Masked
    /// senders are cleared from both masks, exactly mirroring
    /// [`KingCore::read`] returning `None` for them.
    fn masked_ballots(&self, inbox: &Inbox) -> Option<PackedBallots> {
        if self.params.domain.size() != 2 {
            return None;
        }
        let mut ballots = inbox.ballots()?;
        if !self.masked.is_empty() {
            for p in self.masked.iter() {
                ballots.clear(p);
            }
        }
        ballots.clear(self.me);
        Some(ballots)
    }

    /// Consumes one round's inbox for `step` of `phase`.
    pub fn deliver(&mut self, phase: usize, step: PhaseStep, inbox: &Inbox, ctx: &mut ProcCtx) {
        let n = self.params.n;
        let t = self.params.t;
        match step {
            PhaseStep::Exchange => {
                // Count every processor's value; absent/garbled messages
                // count as the default value per the paper's convention.
                if let Some(mut ballots) = self.masked_ballots(inbox) {
                    // Binary popcount fast path: ones via `count_ones`;
                    // everything else (zeros, ⊥, masked, garbled) lands
                    // on the default, so zeros = n − ones.
                    ballots.record(self.me, self.current);
                    ctx.charge(n as u64);
                    let ones = ballots.ones.count_ones() as usize;
                    self.proposal = if n - ones >= n - t {
                        Some(Value(0))
                    } else if ones >= n - t {
                        Some(Value(1))
                    } else {
                        None
                    };
                } else {
                    let mut counts = vec![0usize; self.params.domain.size() as usize];
                    for i in 0..n {
                        let v = if ProcessId(i) == self.me {
                            self.current
                        } else {
                            self.read(inbox, ProcessId(i)).unwrap_or(Value::DEFAULT)
                        };
                        counts[v.raw() as usize] += 1;
                        ctx.charge(1);
                    }
                    self.proposal = counts
                        .iter()
                        .position(|&c| c >= n - t)
                        .map(|i| Value(i as u16));
                }
            }
            PhaseStep::Propose => {
                // Count non-⊥ proposals; anything unreadable is ⊥ and
                // counts for no value. Plurality with the smaller value
                // winning ties.
                let (top, c) = if let Some(mut ballots) = self.masked_ballots(inbox) {
                    if let Some(p) = self.proposal {
                        ballots.record(self.me, p);
                    }
                    ctx.charge(n as u64);
                    let count_1 = ballots.ones.count_ones() as usize;
                    let count_0 = ballots.zeros.count_ones() as usize;
                    if count_1 > count_0 {
                        (Value(1), count_1)
                    } else {
                        (Value(0), count_0)
                    }
                } else {
                    let mut counts = vec![0usize; self.params.domain.size() as usize];
                    for i in 0..n {
                        let prop = if ProcessId(i) == self.me {
                            self.proposal
                        } else {
                            self.read(inbox, ProcessId(i))
                        };
                        if let Some(v) = prop {
                            counts[v.raw() as usize] += 1;
                        }
                        ctx.charge(1);
                    }
                    let (top_raw, &c) = counts
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                        .expect("domain has at least two values");
                    (Value(top_raw as u16), c)
                };
                if c >= n - t {
                    self.current = top;
                    self.locked = true;
                } else if c > t {
                    self.current = top;
                    self.locked = false;
                } else {
                    self.current = Value::DEFAULT;
                    self.locked = false;
                }
                self.ready = self.locked;
            }
            PhaseStep::King => {
                if !self.locked {
                    let king = self.king(phase);
                    self.current = if king == self.me {
                        self.current
                    } else {
                        self.read(inbox, king).unwrap_or(Value::DEFAULT)
                    };
                }
                if !self.ready {
                    self.failed_phases += 1;
                }
                // Phase over: reset per-phase state.
                self.proposal = None;
                self.locked = false;
                ctx.charge(1);
                ctx.emit(TraceEvent::Preferred {
                    value: self.current,
                });
            }
        }
    }
}

/// One processor's instance of the optimally resilient Phase King
/// Byzantine-agreement protocol.
///
/// Rounds: `1` (source broadcast) followed by `t + 1` phases of three
/// rounds each, for `3t + 4` rounds total. Resilience `n > 3t`
/// (`t ≤ ⌊(n−1)/3⌋`) with messages of O(1) values — the optimal-resilience
/// counterpart of [`crate::phase_king::PhaseKing`].
///
/// Build through [`crate::AlgorithmSpec::OptimalKing`]:
///
/// ```
/// use sg_core::{execute, AlgorithmSpec};
/// use sg_sim::{NoFaults, RunConfig, Value};
///
/// let config = RunConfig::new(10, 3).with_source_value(Value(1));
/// let outcome = execute(AlgorithmSpec::OptimalKing, &config, &mut NoFaults)?;
/// assert_eq!(outcome.decision(), Some(Value(1)));
/// assert_eq!(outcome.scheduled_rounds, 13); // 1 + 3·(t+1)
/// // Fault-free runs lock in the very first propose step and stop there
/// // (the expedite win; `sg_sim::set_early_stopping(false)` restores the
/// // full fixed-length schedule).
/// assert_eq!(outcome.rounds_used, 3);
/// assert!(outcome.early_stopped);
/// # Ok::<(), sg_core::SpecError>(())
/// ```
pub struct OptimalKing {
    params: Params,
    input: Option<Value>,
    core: KingCore,
}

impl OptimalKing {
    /// Builds an instance for processor `me`. `input` must be `Some`
    /// exactly when `me` is the source.
    ///
    /// # Panics
    ///
    /// Panics if the input/source relationship is violated.
    pub fn new(params: Params, me: ProcessId, input: Option<Value>) -> Self {
        assert_eq!(
            input.is_some(),
            me == params.source,
            "exactly the source carries an input"
        );
        OptimalKing {
            params,
            input,
            core: KingCore::new(params, me),
        }
    }

    /// Maps an engine round to (phase, step); round 1 is the source round.
    fn locate(&self, round: usize) -> Option<(usize, PhaseStep)> {
        if round == 1 {
            return None;
        }
        let i = round - 2;
        Some((i / 3, PhaseStep::from_index(i % 3)))
    }
}

impl Protocol for OptimalKing {
    fn total_rounds(&self) -> usize {
        1 + 3 * (self.params.t + 1)
    }

    fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload> {
        match self.locate(ctx.round) {
            None => self.input.map(Payload::single),
            Some((phase, step)) => self.core.outgoing(phase, step),
        }
    }

    fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx) {
        match self.locate(ctx.round) {
            None => {
                let v = match self.input {
                    Some(v) => v,
                    None => self.params.domain.sanitize(
                        inbox
                            .from(self.params.source)
                            .value_at(0)
                            .unwrap_or(Value::DEFAULT),
                    ),
                };
                self.core.set_current(v);
                ctx.charge(1);
                ctx.emit(TraceEvent::Preferred { value: v });
            }
            Some((phase, step)) => self.core.deliver(phase, step, inbox, ctx),
        }
    }

    fn decide(&mut self, ctx: &mut ProcCtx) -> Value {
        let value = match self.input {
            Some(v) => v,
            None => self.core.current(),
        };
        ctx.emit(TraceEvent::Decided { value });
        value
    }

    /// Ready once the latest propose step locked ([`KingCore::is_ready`]);
    /// the source is always ready — it decides its own input.
    fn round_status(&self, _ctx: &ProcCtx) -> RoundStatus {
        if self.input.is_some() || self.core.is_ready() {
            RoundStatus::ReadyToDecide
        } else {
            RoundStatus::Continue
        }
    }

    fn reset(&mut self, id: ProcessId, config: &RunConfig) -> bool {
        let params = Params::from_config(config);
        self.params = params;
        self.input = (id == config.source).then_some(config.source_value);
        self.core.reset(params, id);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sim::ValueDomain;

    fn params(n: usize, t: usize) -> Params {
        Params {
            n,
            t,
            source: ProcessId(0),
            domain: ValueDomain::binary(),
        }
    }

    fn deliver_exchange(core: &mut KingCore, values: &[Value]) {
        // Build an inbox where processor i sends values[i]; the core's own
        // slot is ignored (it uses its local state).
        let n = values.len();
        let mut inbox = Inbox::empty(n);
        for (i, &v) in values.iter().enumerate() {
            if ProcessId(i) != core.me {
                inbox.set(ProcessId(i), Payload::values([v]));
            }
        }
        let mut ctx = ProcCtx::new(core.me);
        core.deliver(0, PhaseStep::Exchange, &inbox, &mut ctx);
    }

    #[test]
    fn kings_are_distinct_and_skip_source() {
        let core = KingCore::new(params(7, 2), ProcessId(3));
        let kings: Vec<ProcessId> = (0..3).map(|k| core.king(k)).collect();
        assert_eq!(kings, vec![ProcessId(1), ProcessId(2), ProcessId(3)]);
    }

    #[test]
    #[should_panic(expected = "available kings")]
    fn king_phase_out_of_range_panics() {
        let core = KingCore::new(params(4, 1), ProcessId(1));
        let _ = core.king(3);
    }

    #[test]
    fn unanimous_exchange_proposes_that_value() {
        let mut core = KingCore::new(params(7, 2), ProcessId(1));
        core.set_current(Value(1));
        deliver_exchange(&mut core, &[Value(1); 7]);
        assert_eq!(core.proposal, Some(Value(1)));
    }

    #[test]
    fn split_exchange_proposes_bot() {
        let mut core = KingCore::new(params(7, 2), ProcessId(1));
        core.set_current(Value(1));
        // 4 ones (including own), 3 zeros: below n - t = 5.
        deliver_exchange(
            &mut core,
            &[
                Value(0),
                Value(1),
                Value(1),
                Value(1),
                Value(0),
                Value(0),
                Value(1),
            ],
        );
        assert_eq!(core.proposal, None);
    }

    #[test]
    fn garbled_exchange_values_count_as_default() {
        let mut core = KingCore::new(params(4, 1), ProcessId(1));
        core.set_current(Value(0));
        // Out-of-domain junk from 2 and a missing message from 3 both
        // count as the default 0, joining our own 0 and the source's 0.
        let mut inbox = Inbox::empty(4);
        inbox.set(ProcessId(0), Payload::values([Value(0)]));
        inbox.set(ProcessId(2), Payload::values([Value(999)]));
        let mut ctx = ProcCtx::new(ProcessId(1));
        core.deliver(0, PhaseStep::Exchange, &inbox, &mut ctx);
        assert_eq!(core.proposal, Some(Value(0)));
    }

    #[test]
    fn strong_proposal_count_locks() {
        let mut core = KingCore::new(params(4, 1), ProcessId(1));
        core.proposal = Some(Value(1));
        let mut inbox = Inbox::empty(4);
        for i in [0usize, 2, 3] {
            inbox.set(ProcessId(i), Payload::values([Value(1)]));
        }
        let mut ctx = ProcCtx::new(ProcessId(1));
        core.deliver(0, PhaseStep::Propose, &inbox, &mut ctx);
        assert!(core.is_locked());
        assert_eq!(core.current(), Value(1));
    }

    #[test]
    fn weak_proposal_count_adopts_unlocked() {
        let mut core = KingCore::new(params(4, 1), ProcessId(1));
        core.proposal = Some(Value(1));
        // Only one other proposal for 1 (count 2 = t + 1), rest ⊥.
        let mut inbox = Inbox::empty(4);
        inbox.set(ProcessId(0), Payload::values([Value(1)]));
        inbox.set(ProcessId(2), Payload::values([BOT_WIRE]));
        let mut ctx = ProcCtx::new(ProcessId(1));
        core.deliver(0, PhaseStep::Propose, &inbox, &mut ctx);
        assert!(!core.is_locked());
        assert_eq!(core.current(), Value(1));
    }

    #[test]
    fn all_bot_proposals_fall_back_to_default() {
        let mut core = KingCore::new(params(4, 1), ProcessId(1));
        core.proposal = None;
        core.set_current(Value(1));
        let inbox = Inbox::empty(4);
        let mut ctx = ProcCtx::new(ProcessId(1));
        core.deliver(0, PhaseStep::Propose, &inbox, &mut ctx);
        assert!(!core.is_locked());
        assert_eq!(core.current(), Value::DEFAULT);
    }

    #[test]
    fn unlocked_adopts_king_locked_ignores() {
        let p = params(4, 1);
        let mut unlocked = KingCore::new(p, ProcessId(2));
        unlocked.set_current(Value(0));
        unlocked.locked = false;
        let mut locked = KingCore::new(p, ProcessId(3));
        locked.set_current(Value(0));
        locked.locked = true;

        let king = unlocked.king(0);
        let mut inbox = Inbox::empty(4);
        inbox.set(king, Payload::values([Value(1)]));
        let mut ctx = ProcCtx::new(ProcessId(2));
        unlocked.deliver(0, PhaseStep::King, &inbox, &mut ctx);
        let mut ctx = ProcCtx::new(ProcessId(3));
        locked.deliver(0, PhaseStep::King, &inbox, &mut ctx);

        assert_eq!(unlocked.current(), Value(1));
        assert_eq!(locked.current(), Value(0));
    }

    #[test]
    fn masked_sender_reads_as_bot() {
        let mut core = KingCore::new(params(4, 1), ProcessId(1));
        core.mask(ProcessId(2));
        core.proposal = Some(Value(1));
        let mut inbox = Inbox::empty(4);
        inbox.set(ProcessId(0), Payload::values([Value(1)]));
        inbox.set(ProcessId(2), Payload::values([Value(1)]));
        inbox.set(ProcessId(3), Payload::values([BOT_WIRE]));
        let mut ctx = ProcCtx::new(ProcessId(1));
        core.deliver(0, PhaseStep::Propose, &inbox, &mut ctx);
        // Count for 1 is 2 (own + P0): the masked P2 does not count, so
        // the core adopts unlocked rather than locking with count 3.
        assert_eq!(core.current(), Value(1));
        assert!(!core.is_locked());
    }

    #[test]
    fn total_rounds_is_3t_plus_4() {
        let p = OptimalKing::new(params(7, 2), ProcessId(1), None);
        assert_eq!(p.total_rounds(), 10);
    }

    #[test]
    fn source_round_seeds_core() {
        let mut p = OptimalKing::new(params(4, 1), ProcessId(2), None);
        let mut ctx = ProcCtx::new(ProcessId(2));
        ctx.round = 1;
        let mut inbox = Inbox::empty(4);
        inbox.set(ProcessId(0), Payload::values([Value(1)]));
        p.deliver(&inbox, &mut ctx);
        assert_eq!(p.core.current(), Value(1));
    }

    #[test]
    fn only_king_speaks_in_king_round() {
        let mut p = OptimalKing::new(params(4, 1), ProcessId(2), None);
        let mut ctx = ProcCtx::new(ProcessId(2));
        // Round 4 is phase 0's king step; the phase-0 king is P1.
        ctx.round = 4;
        assert_eq!(p.outgoing(&mut ctx), None);
        let mut k = OptimalKing::new(params(4, 1), ProcessId(1), None);
        let mut ctx = ProcCtx::new(ProcessId(1));
        ctx.round = 4;
        assert!(k.outgoing(&mut ctx).is_some());
    }
}
