//! Lock-step batch tallies for the king family.
//!
//! [`KingBatchKernel`] re-expresses [`OptimalKing`](crate::OptimalKing)'s
//! per-round logic over lane words: each processor-slot's preferred value,
//! proposal, and lock bit become one `u64` spanning up to 64 runs, and the
//! `n − t` / `t + 1` threshold tests of the exchange and propose steps
//! become bit-plane comparisons ([`LaneCounts`]) evaluated for every run
//! at once. The engine-side driver lives in [`sg_sim::batch`]; this module
//! only supplies the protocol semantics, mirroring how the scalar
//! [`KingCore`](crate::KingCore) sits behind the engine's round loop.
//!
//! Only [`AlgorithmSpec::OptimalKing`] has a kernel: its schedule is
//! static, its messages are single binary values, and its tallies are
//! pure threshold tests — exactly the shape lane words express. Every
//! other family (including `dynamic-king`, whose gear shifts re-plan the
//! schedule mid-run) takes the scalar fallback, per the
//! `set_packed_broadcast` precedent of keeping one always-correct scalar
//! path beside each packed fast path.

use sg_sim::batch::{BatchKernel, BatchNet, LaneCounts};
use sg_sim::RunConfig;

use crate::optimal_king::PhaseStep;
use crate::spec::AlgorithmSpec;

/// Bit-sliced lane state for one batch of `OptimalKing` runs.
///
/// Per slot `i`, bit `r` of `current[i]` is run `r`'s preferred value,
/// `prop_some`/`prop_one` encode the three-way proposal (`Some(1)`,
/// `Some(0)`, `None`), and `locked`/`ready` carry the propose-step lock
/// across the phase — the exact fields of the scalar
/// [`KingCore`](crate::KingCore), one word per run instead of one scalar.
pub struct KingBatchKernel {
    n: usize,
    t: usize,
    source: usize,
    /// Lane mask of the source's input being `Value(1)` (uniform: every
    /// lane of a batch shares one configuration).
    input_one: u64,
    current: Vec<u64>,
    prop_some: Vec<u64>,
    prop_one: Vec<u64>,
    locked: Vec<u64>,
    ready: Vec<u64>,
}

impl KingBatchKernel {
    /// Maps an engine round to (phase, step); round 1 is the source round.
    fn locate(&self, round: usize) -> Option<(usize, PhaseStep)> {
        if round == 1 {
            return None;
        }
        let i = round - 2;
        Some((i / 3, PhaseStep::from_index(i % 3)))
    }

    /// The king of 0-based `phase`: the `phase`-th processor id, skipping
    /// the source — identical to [`KingCore::king`](crate::KingCore::king).
    fn king(&self, phase: usize) -> usize {
        let mut remaining = phase;
        for idx in 0..self.n {
            if idx != self.source {
                if remaining == 0 {
                    return idx;
                }
                remaining -= 1;
            }
        }
        unreachable!("phase bound checked by the schedule")
    }

    /// Commits `value` into `state[slot]` for lanes in `active` only,
    /// freezing retired runs.
    #[inline]
    fn commit(state: &mut [u64], slot: usize, value: u64, active: u64) {
        state[slot] = (value & active) | (state[slot] & !active);
    }
}

impl BatchKernel for KingBatchKernel {
    fn total_rounds(&self) -> usize {
        1 + 3 * (self.t + 1)
    }

    fn reset(&mut self, _lanes: usize) {
        for buf in [
            &mut self.current,
            &mut self.prop_some,
            &mut self.prop_one,
            &mut self.locked,
            &mut self.ready,
        ] {
            buf.clear();
            buf.resize(self.n, 0);
        }
    }

    fn charge(&self, round: usize) -> u64 {
        match self.locate(round) {
            None => 1,
            Some((_, PhaseStep::Exchange | PhaseStep::Propose)) => self.n as u64,
            Some((_, PhaseStep::King)) => 1,
        }
    }

    fn snapshot_round(&self, round: usize) -> bool {
        matches!(self.locate(round), None | Some((_, PhaseStep::King)))
    }

    fn outgoing(&mut self, round: usize, present: &mut [u64], one: &mut [u64], zero: &mut [u64]) {
        match self.locate(round) {
            None => {
                // Only the source speaks in round 1, with its input.
                present[self.source] = !0;
                one[self.source] = self.input_one;
                zero[self.source] = !self.input_one;
            }
            Some((_, PhaseStep::Exchange)) => {
                for j in 0..self.n {
                    present[j] = !0;
                    one[j] = self.current[j];
                    zero[j] = !self.current[j];
                }
            }
            Some((_, PhaseStep::Propose)) => {
                // `Some(1)` / `Some(0)` / `⊥` — present in all three cases.
                for j in 0..self.n {
                    present[j] = !0;
                    one[j] = self.prop_some[j] & self.prop_one[j];
                    zero[j] = self.prop_some[j] & !self.prop_one[j];
                }
            }
            Some((phase, PhaseStep::King)) => {
                let k = self.king(phase);
                present[k] = !0;
                one[k] = self.current[k];
                zero[k] = !self.current[k];
            }
        }
    }

    fn deliver(&mut self, round: usize, net: &BatchNet<'_>, active: u64) {
        let (n, t) = (self.n, self.t);
        match self.locate(round) {
            None => {
                // Everyone adopts the (sanitized) source value; unreadable
                // deliveries land on the default, i.e. the `one` lane mask
                // is exactly the adopted value.
                for i in 0..n {
                    let v = if i == self.source {
                        self.input_one
                    } else {
                        net.one(self.source, i)
                    };
                    Self::commit(&mut self.current, i, v, active);
                }
            }
            Some((_, PhaseStep::Exchange)) => {
                // Count ones over all n slots (own current substituted for
                // the cleared self slot); zeros are n − ones because
                // absent/garbled values default to 0. The zero threshold
                // is tested first, as in the scalar tally.
                for i in 0..n {
                    let mut ones = LaneCounts::default();
                    for j in 0..n {
                        ones.add(if j == i {
                            self.current[i]
                        } else {
                            net.one(j, i)
                        });
                    }
                    let zeros_win = !ones.ge(t + 1); // n − ones ≥ n − t
                    let ones_win = ones.ge(n - t) & !zeros_win;
                    Self::commit(&mut self.prop_some, i, zeros_win | ones_win, active);
                    Self::commit(&mut self.prop_one, i, ones_win, active);
                }
            }
            Some((_, PhaseStep::Propose)) => {
                // Plurality over non-⊥ proposals, smaller value winning
                // ties; lock at n − t, adopt above t, default otherwise.
                for i in 0..n {
                    let own_one = self.prop_some[i] & self.prop_one[i];
                    let own_zero = self.prop_some[i] & !self.prop_one[i];
                    let mut c1 = LaneCounts::default();
                    let mut c0 = LaneCounts::default();
                    for j in 0..n {
                        if j == i {
                            c1.add(own_one);
                            c0.add(own_zero);
                        } else {
                            c1.add(net.one(j, i));
                            c0.add(net.zero(j, i));
                        }
                    }
                    let top_one = c1.gt(&c0);
                    let lock = (top_one & c1.ge(n - t)) | (!top_one & c0.ge(n - t));
                    let adopt = (top_one & c1.ge(t + 1)) | (!top_one & c0.ge(t + 1));
                    Self::commit(&mut self.current, i, adopt & top_one, active);
                    Self::commit(&mut self.locked, i, lock, active);
                    Self::commit(&mut self.ready, i, lock, active);
                }
            }
            Some((phase, PhaseStep::King)) => {
                // Unlocked processors adopt the king's value (the king its
                // own); the phase's proposal and lock are then cleared.
                // In-place is safe: the king's own current never changes.
                let k = self.king(phase);
                for i in 0..n {
                    let read = if i == k {
                        self.current[k]
                    } else {
                        net.one(k, i)
                    };
                    let v = (self.locked[i] & self.current[i]) | (!self.locked[i] & read);
                    Self::commit(&mut self.current, i, v, active);
                }
                for i in 0..n {
                    Self::commit(&mut self.prop_some, i, 0, active);
                    Self::commit(&mut self.locked, i, 0, active);
                }
            }
        }
    }

    fn ready(&self, slot: usize) -> u64 {
        self.ready[slot]
    }

    fn current_one(&self, slot: usize) -> u64 {
        self.current[slot]
    }

    fn decision_one(&self, slot: usize) -> u64 {
        if slot == self.source {
            self.input_one
        } else {
            self.current[slot]
        }
    }
}

/// The batch kernel for `spec` under `config`, if one exists.
///
/// Returns `Some` only for [`AlgorithmSpec::OptimalKing`] on a valid
/// binary-domain, unauthenticated configuration with a binary source
/// value and at most 64 processors; everything else signals the caller
/// to take the scalar path.
pub fn king_batch_kernel(spec: &AlgorithmSpec, config: &RunConfig) -> Option<KingBatchKernel> {
    if !matches!(spec, AlgorithmSpec::OptimalKing)
        || config.authenticated
        || config.domain.size() != 2
        || config.source_value.raw() > 1
        || config.n > sg_sim::MAX_BATCH_RUNS
        || spec.validate(config.n, config.t).is_err()
    {
        return None;
    }
    Some(KingBatchKernel {
        n: config.n,
        t: config.t,
        source: config.source.index(),
        input_one: if config.source_value.raw() == 1 {
            !0
        } else {
            0
        },
        current: Vec::new(),
        prop_some: Vec::new(),
        prop_one: Vec::new(),
        locked: Vec::new(),
        ready: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sim::Value;

    fn config(n: usize, t: usize) -> RunConfig {
        RunConfig::new(n, t)
    }

    #[test]
    fn only_optimal_king_gets_a_kernel() {
        assert!(king_batch_kernel(&AlgorithmSpec::OptimalKing, &config(16, 5)).is_some());
        assert!(king_batch_kernel(&AlgorithmSpec::PhaseKing, &config(16, 3)).is_none());
        assert!(king_batch_kernel(&AlgorithmSpec::DynamicKing { b: 3 }, &config(16, 5)).is_none());
    }

    #[test]
    fn invalid_or_oversized_configs_are_refused() {
        // n ≤ 3t violates the resilience bound.
        assert!(king_batch_kernel(&AlgorithmSpec::OptimalKing, &config(9, 3)).is_none());
        // More processors than lanes in a word.
        assert!(king_batch_kernel(&AlgorithmSpec::OptimalKing, &config(100, 3)).is_none());
        // Wide-domain source values have no single-bit lane form.
        let wide = config(16, 5).with_source_value(Value(7));
        assert!(king_batch_kernel(&AlgorithmSpec::OptimalKing, &wide).is_none());
    }

    #[test]
    fn kings_skip_the_source() {
        let kernel = king_batch_kernel(&AlgorithmSpec::OptimalKing, &config(7, 2)).unwrap();
        assert_eq!(kernel.king(0), 1); // source is 0
        assert_eq!(kernel.king(1), 2);
        assert_eq!(kernel.total_rounds(), 10);
    }
}
