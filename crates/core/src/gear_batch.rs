//! Lock-step batch execution for the gear-shifting families.
//!
//! [`GearBatchKernel`] brings `king-shift` and `dynamic-king` — the two
//! families whose runs *change algorithms mid-flight* — onto the batch
//! path, closing the last scalar-fallback gap in the sweep executor. The
//! trick is a **mixed-width schedule**:
//!
//! * The Algorithm A *tree prefix* exchanges multi-value tree levels, so
//!   it cannot be one bit per lane. The kernel runs it **wide**: one real
//!   per-lane, per-slot protocol instance ([`KingShift`] /
//!   [`DynamicKing`]), driven round by round through
//!   [`BatchKernel::wide_round`] with the exact outgoing → adversary →
//!   deliver choreography of the scalar engine (same
//!   [`AdversaryView`]s, same call order — the `sg-trace/1` contract
//!   holds verbatim).
//! * The king *tail* is single-bit broadcasts and threshold tallies —
//!   exactly [`KingBatchKernel`](crate::KingBatchKernel)'s shape — so
//!   once a lane's gear box seeds its tail, the lane moves to the
//!   **narrow** bitwise path: its slot state becomes lane-mask words and
//!   every subsequent round costs full-width bitwise ops. The one
//!   addition over the `optimal-king` kernel is the carried fault masks:
//!   senders a processor globally detected during its A block read as
//!   zero/⊥/default in the tail tallies, via a per-(recipient, sender)
//!   lane mask.
//!
//! Lanes seed their tails at different rounds — `king-shift`
//! statically, `dynamic-king` whenever a lane's checkpoint vote commits
//! — so tail lanes are grouped into *cohorts* by seed round, each cohort
//! stepping through its own `exchange → propose → king` schedule. The
//! dynamic gear-commit rule is per lane: a lane whose correct
//! processors **unanimously** vote shift at a checkpoint commits in
//! batch (the scalar engine's `all_shift` dispatch, verbatim); a lane
//! whose votes *diverge* retires through [`WideRound::deferred`] and is
//! re-run by the caller on the scalar engine — the batch path stays a
//! fast path, never a semantic change.

use std::sync::Arc;

use sg_sim::batch::{BatchAdversary, BatchKernel, BatchNet, LaneCounts, WideRound};
use sg_sim::{
    AdversaryView, GearAction, Inbox, Payload, ProcCtx, ProcessId, Protocol, RunConfig, Value,
};

use crate::gearbox::{DynamicKing, GearBox};
use crate::king_shift::KingShift;
use crate::params::Params;
use crate::plan::RoundAction;
use crate::spec::AlgorithmSpec;

/// One lane-slot's scalar machine for the wide prefix.
enum GearInstance {
    Shift(KingShift),
    Dynamic(DynamicKing),
}

impl GearInstance {
    fn gear(&self) -> &GearBox {
        match self {
            GearInstance::Shift(p) => p.gear(),
            GearInstance::Dynamic(p) => p.gear(),
        }
    }

    fn proto(&self) -> &dyn Protocol {
        match self {
            GearInstance::Shift(p) => p,
            GearInstance::Dynamic(p) => p,
        }
    }

    fn proto_mut(&mut self) -> &mut dyn Protocol {
        match self {
            GearInstance::Shift(p) => p,
            GearInstance::Dynamic(p) => p,
        }
    }
}

/// Mixed-width lane state for one batch of `king-shift` or
/// `dynamic-king` runs: scalar prefix instances per (lane, slot) while a
/// lane's A block runs, [`KingBatchKernel`](crate::KingBatchKernel)-style
/// lane words plus carried fault masks once its king tail is seeded.
pub struct GearBatchKernel {
    config: RunConfig,
    params: Params,
    b: usize,
    dynamic: bool,
    n: usize,
    t: usize,
    source: usize,
    input_one: u64,
    total: usize,
    phases: usize,
    /// Rounds at which the prefix's block conversions land (the scalar
    /// `Shift` trace events), for snapshot scheduling.
    conversion_rounds: Vec<usize>,
    /// The dynamic plan's checkpoint rounds (empty for `king-shift`).
    checkpoint_rounds: Vec<usize>,
    lanes: usize,
    /// Flat `[lane * n + slot]` scalar machines and contexts.
    instances: Vec<GearInstance>,
    ctxs: Vec<ProcCtx>,
    /// Lanes still running their wide prefix.
    prefix_lanes: u64,
    /// Tail cohorts: (seed round, lanes seeded at it).
    cohorts: Vec<(usize, u64)>,
    /// The prefix lanes handled by the most recent `wide_round`.
    last_wide: u64,
    // Tail lane words, one per slot (see `KingBatchKernel`).
    current: Vec<u64>,
    prop_some: Vec<u64>,
    prop_one: Vec<u64>,
    locked: Vec<u64>,
    ready_mask: Vec<u64>,
    /// `masked[i * n + j]`: lanes in which recipient `i` carries sender
    /// `j` on its fault mask from the A block.
    masked: Vec<u64>,
    // Per-lane accounting (prefix bits, prefix max-ops, tail ops,
    // discoveries).
    bits_acc: Vec<u64>,
    ops_prefix: Vec<u64>,
    ops_tail: Vec<u64>,
    disc: Vec<u64>,
    // Per-lane view/delivery scratch for the wide prefix.
    honest: Vec<Option<Arc<Payload>>>,
    shadow: Vec<Option<Arc<Payload>>>,
    rows: Vec<Arc<Payload>>,
    inbox: Inbox,
}

impl GearBatchKernel {
    /// The king of 0-based `phase`: the `phase`-th processor id, skipping
    /// the source — identical to [`KingCore::king`](crate::KingCore::king).
    fn king(&self, phase: usize) -> usize {
        let mut remaining = phase;
        for idx in 0..self.n {
            if idx != self.source {
                if remaining == 0 {
                    return idx;
                }
                remaining -= 1;
            }
        }
        unreachable!("phase bound checked by the schedule")
    }

    /// Commits `value` into `state[slot]` for lanes in `active` only,
    /// freezing retired runs.
    #[inline]
    fn commit(state: &mut [u64], slot: usize, value: u64, active: u64) {
        state[slot] = (value & active) | (state[slot] & !active);
    }

    fn build_instances(&mut self) {
        self.instances.clear();
        self.instances.reserve(self.lanes * self.n);
        for _ in 0..self.lanes {
            for i in 0..self.n {
                let me = ProcessId(i);
                let input = (i == self.source).then_some(self.config.source_value);
                self.instances.push(if self.dynamic {
                    GearInstance::Dynamic(DynamicKing::new(self.params, me, input, self.b))
                } else {
                    GearInstance::Shift(KingShift::new(self.params, me, input, self.b))
                });
            }
        }
    }

    /// Moves `lane` from the wide prefix to the narrow tail: the seeded
    /// king cores' values and fault masks become lane-word bits, and the
    /// prefix's accounting (max local ops over all slots, honest bits,
    /// discoveries over correct slots) is banked for finalize.
    fn seed_lane(&mut self, lane: usize, round: usize, fault_set: &sg_sim::ProcessSet) {
        let n = self.n;
        let bit = 1u64 << lane;
        let base = lane * n;
        let mut max_ops = 0u64;
        let mut disc = 0u64;
        for i in 0..n {
            let gear = self.instances[base + i].gear();
            debug_assert!(gear.seeded(), "seed_lane on an unseeded gear box");
            let core = gear.core().expect("gear tail always has a king core");
            if core.current() == Value(1) {
                self.current[i] |= bit;
            }
            for p in core.masked().iter() {
                self.masked[i * n + p.index()] |= bit;
            }
            max_ops = max_ops.max(self.ctxs[base + i].ops());
            if !fault_set.contains(ProcessId(i)) {
                disc += gear.prefix().fault_list().len() as u64;
            }
        }
        self.ops_prefix[lane] = max_ops;
        self.disc[lane] = disc;
        self.prefix_lanes &= !bit;
        match self.cohorts.iter_mut().find(|c| c.0 == round) {
            Some(c) => c.1 |= bit,
            None => self.cohorts.push((round, bit)),
        }
    }

    /// Adds `per`-slot tail ops to every lane in `mask` (tail charges
    /// are uniform across slots, so per-lane totals stay exact).
    fn add_tail_ops(&mut self, mask: u64, per: u64) {
        let mut w = mask;
        while w != 0 {
            let lane = w.trailing_zeros() as usize;
            w &= w - 1;
            self.ops_tail[lane] += per;
        }
    }
}

impl BatchKernel for GearBatchKernel {
    fn total_rounds(&self) -> usize {
        self.total
    }

    fn reset(&mut self, lanes: usize) {
        let n = self.n;
        let rebuild = if self.lanes == lanes && self.instances.len() == lanes * n {
            // The instance-pool path: same (t, b) shape, reset in place.
            self.instances
                .iter_mut()
                .enumerate()
                .any(|(idx, inst)| !inst.proto_mut().reset(ProcessId(idx % n), &self.config))
        } else {
            true
        };
        self.lanes = lanes;
        if rebuild {
            self.build_instances();
        }
        self.ctxs.clear();
        self.ctxs
            .extend((0..lanes * n).map(|idx| ProcCtx::new(ProcessId(idx % n))));
        for buf in [
            &mut self.current,
            &mut self.prop_some,
            &mut self.prop_one,
            &mut self.locked,
            &mut self.ready_mask,
        ] {
            buf.clear();
            buf.resize(n, 0);
        }
        self.masked.clear();
        self.masked.resize(n * n, 0);
        for buf in [
            &mut self.bits_acc,
            &mut self.ops_prefix,
            &mut self.ops_tail,
            &mut self.disc,
        ] {
            buf.clear();
            buf.resize(lanes, 0);
        }
        self.prefix_lanes = if lanes == 64 { !0 } else { (1u64 << lanes) - 1 };
        self.cohorts.clear();
        self.last_wide = 0;
        self.honest.clear();
        self.honest.resize(n, None);
        self.shadow.clear();
        self.shadow.resize(n, None);
        self.rows.clear();
        self.rows.resize(n * n, Payload::shared_missing());
        self.inbox = Inbox::empty(n);
    }

    fn charge(&self, _round: usize) -> u64 {
        // Tail charges differ per cohort and prefix charges per slot;
        // everything is accounted internally via `lane_ops`.
        0
    }

    fn snapshot_round(&self, round: usize) -> bool {
        self.snapshot_lanes(round) != 0
    }

    fn snapshot_lanes(&self, round: usize) -> u64 {
        // Preference events land: at round 1 and at every block
        // conversion while a lane runs its prefix (the scalar `Preferred`
        // / `Shift` emissions — a commit's seed event shares its
        // conversion's round and value), and at every king step of a
        // seeded lane's tail.
        let mut lanes = 0u64;
        if round == 1 || self.conversion_rounds.contains(&round) {
            lanes |= self.last_wide;
        }
        for &(start, mask) in &self.cohorts {
            if round > start {
                let i = round - start - 1;
                if i < 3 * self.phases && i % 3 == 2 {
                    lanes |= mask;
                }
            }
        }
        lanes
    }

    fn wide_round(
        &mut self,
        round: usize,
        config: &RunConfig,
        adversary: &mut dyn BatchAdversary,
        fault_sets: &[sg_sim::ProcessSet],
        _faulty: &[u64],
        active: u64,
    ) -> WideRound {
        let wide = self.prefix_lanes & active;
        self.last_wide = wide;
        if wide == 0 {
            return WideRound::default();
        }
        let n = self.n;
        let bits_per_value = config.domain.bits_per_value();
        let missing = Payload::shared_missing();
        let mut deferred = 0u64;
        let mut w = wide;
        while w != 0 {
            let lane = w.trailing_zeros() as usize;
            w &= w - 1;
            let bit = 1u64 << lane;
            let base = lane * n;
            let fault_set = &fault_sets[lane];

            // 1. Outgoing, split into honest/shadow tables by this
            // lane's fault set; honest wire bits accounted as the scalar
            // RoundStats would.
            for i in 0..n {
                self.ctxs[base + i].round = round;
                let payload = self.instances[base + i]
                    .proto_mut()
                    .outgoing(&mut self.ctxs[base + i])
                    .map(Payload::into_shared);
                if fault_set.contains(ProcessId(i)) {
                    self.shadow[i] = payload;
                    self.honest[i] = None;
                } else {
                    if let Some(p) = &payload {
                        self.bits_acc[lane] += p.bits(bits_per_value) * (n as u64 - 1);
                    }
                    self.honest[i] = payload;
                    self.shadow[i] = None;
                }
            }

            // 2. The rushing adversary's rows, in the scalar call order:
            // faulty senders ascending, recipients ascending, self
            // skipped.
            if !fault_set.is_empty() {
                for slot in self.rows.iter_mut() {
                    *slot = missing.clone();
                }
                let view = AdversaryView {
                    round,
                    total_rounds: self.total,
                    n,
                    t: config.t,
                    source: config.source,
                    source_value: config.source_value,
                    domain: config.domain,
                    faulty: fault_set,
                    honest_broadcast: &self.honest,
                    shadow_broadcast: &self.shadow,
                    sigs: None,
                };
                let scalar = adversary.lane(lane);
                for f in fault_set.iter() {
                    for r in 0..n {
                        if r == f.index() {
                            continue;
                        }
                        self.rows[f.index() * n + r] =
                            scalar.payload(f, ProcessId(r), &view).into_shared();
                    }
                }
            }

            // 3. Delivery to every slot, shadows included (the scalar
            // engine keeps shadow instances live for the adversary's
            // honest-shadow views).
            for i in 0..n {
                for j in 0..n {
                    let p = if j == i {
                        missing.clone()
                    } else if fault_set.contains(ProcessId(j)) {
                        self.rows[j * n + i].clone()
                    } else {
                        self.honest[j].clone().unwrap_or_else(|| missing.clone())
                    };
                    self.inbox.set_shared(ProcessId(j), p);
                }
                self.instances[base + i]
                    .proto_mut()
                    .deliver(&self.inbox, &mut self.ctxs[base + i]);
            }

            // 4. Gear transitions. A static boundary seeds inside
            // `deliver` (every slot, deterministically); a dynamic
            // checkpoint replays the scalar engine's dispatch — commit
            // on a unanimous correct-processor shift vote, defer the
            // lane to the scalar engine when votes diverge.
            if self.instances[base].gear().seeded() {
                self.seed_lane(lane, round, fault_set);
            } else if self.dynamic && self.checkpoint_rounds.contains(&round) {
                let mut all_shift = true;
                let mut any_shift = false;
                for i in 0..n {
                    if fault_set.contains(ProcessId(i)) {
                        continue;
                    }
                    match self.instances[base + i]
                        .proto()
                        .next_action(&self.ctxs[base + i])
                    {
                        GearAction::ShiftGear => any_shift = true,
                        _ => all_shift = false,
                    }
                }
                if all_shift {
                    for i in 0..n {
                        self.instances[base + i]
                            .proto_mut()
                            .shift_gear(&mut self.ctxs[base + i]);
                    }
                    self.seed_lane(lane, round, fault_set);
                } else if any_shift {
                    deferred |= bit;
                }
            }
        }
        WideRound {
            handled: wide,
            deferred,
        }
    }

    fn finished(&self, round: usize) -> u64 {
        // A cohort's tail ends exactly `3 · phases` rounds after its
        // seed — the gear box's `end_round`, per lane.
        let mut fin = 0u64;
        for &(start, mask) in &self.cohorts {
            if round >= start + 3 * self.phases {
                fin |= mask;
            }
        }
        fin
    }

    fn outgoing(&mut self, round: usize, present: &mut [u64], one: &mut [u64], zero: &mut [u64]) {
        let n = self.n;
        for ci in 0..self.cohorts.len() {
            let (start, mask) = self.cohorts[ci];
            if round <= start {
                continue;
            }
            let i = round - start - 1;
            if i >= 3 * self.phases {
                continue; // fully retired cohort
            }
            match i % 3 {
                // Exchange: every slot broadcasts its current value.
                0 => {
                    for j in 0..n {
                        present[j] |= mask;
                        one[j] |= self.current[j] & mask;
                        zero[j] |= !self.current[j] & mask;
                    }
                }
                // Propose: `Some(1)` / `Some(0)` / `⊥`, present in all
                // three cases (⊥ rides the BOT sentinel on the wire).
                1 => {
                    for j in 0..n {
                        present[j] |= mask;
                        one[j] |= self.prop_some[j] & self.prop_one[j] & mask;
                        zero[j] |= self.prop_some[j] & !self.prop_one[j] & mask;
                    }
                }
                // King: only the phase king speaks.
                _ => {
                    let k = self.king(i / 3);
                    present[k] |= mask;
                    one[k] |= self.current[k] & mask;
                    zero[k] |= !self.current[k] & mask;
                }
            }
        }
    }

    fn deliver(&mut self, round: usize, net: &BatchNet<'_>, active: u64) {
        let (n, t) = (self.n, self.t);
        for ci in 0..self.cohorts.len() {
            let (start, cmask) = self.cohorts[ci];
            if round <= start {
                continue;
            }
            let i = round - start - 1;
            if i >= 3 * self.phases {
                continue;
            }
            let m = cmask & active;
            if m == 0 {
                continue;
            }
            match i % 3 {
                0 => {
                    // Exchange tally with the carried fault masks: a
                    // masked sender reads as the default 0, i.e. it
                    // simply never contributes to the ones count — the
                    // scalar `KingCore`'s masked-ballot clearing.
                    for s in 0..n {
                        let mut ones = LaneCounts::default();
                        for j in 0..n {
                            ones.add(if j == s {
                                self.current[s]
                            } else {
                                net.one(j, s) & !self.masked[s * n + j]
                            });
                        }
                        let zeros_win = !ones.ge(t + 1); // n − ones ≥ n − t
                        let ones_win = ones.ge(n - t) & !zeros_win;
                        Self::commit(&mut self.prop_some, s, zeros_win | ones_win, m);
                        Self::commit(&mut self.prop_one, s, ones_win, m);
                    }
                    self.add_tail_ops(m, n as u64);
                }
                1 => {
                    // Propose plurality: masked senders count as ⊥
                    // (their one/zero classifications are filtered out
                    // entirely), ties go to 0, lock at n − t, adopt
                    // above t.
                    for s in 0..n {
                        let own_one = self.prop_some[s] & self.prop_one[s];
                        let own_zero = self.prop_some[s] & !self.prop_one[s];
                        let mut c1 = LaneCounts::default();
                        let mut c0 = LaneCounts::default();
                        for j in 0..n {
                            if j == s {
                                c1.add(own_one);
                                c0.add(own_zero);
                            } else {
                                let unmasked = !self.masked[s * n + j];
                                c1.add(net.one(j, s) & unmasked);
                                c0.add(net.zero(j, s) & unmasked);
                            }
                        }
                        let top_one = c1.gt(&c0);
                        let lock = (top_one & c1.ge(n - t)) | (!top_one & c0.ge(n - t));
                        let adopt = (top_one & c1.ge(t + 1)) | (!top_one & c0.ge(t + 1));
                        Self::commit(&mut self.current, s, adopt & top_one, m);
                        Self::commit(&mut self.locked, s, lock, m);
                        Self::commit(&mut self.ready_mask, s, lock, m);
                    }
                    self.add_tail_ops(m, n as u64);
                }
                _ => {
                    // King: unlocked slots adopt the king's value; a
                    // masked king reads as the default 0. In-place is
                    // safe: the king's own current never changes.
                    let k = self.king(i / 3);
                    for s in 0..n {
                        let read = if s == k {
                            self.current[k]
                        } else {
                            net.one(k, s) & !self.masked[s * n + k]
                        };
                        let v = (self.locked[s] & self.current[s]) | (!self.locked[s] & read);
                        Self::commit(&mut self.current, s, v, m);
                    }
                    for s in 0..n {
                        Self::commit(&mut self.prop_some, s, 0, m);
                        Self::commit(&mut self.locked, s, 0, m);
                    }
                    self.add_tail_ops(m, 1);
                }
            }
        }
    }

    fn ready(&self, slot: usize) -> u64 {
        // Set only by seeded lanes' propose locks; prefix lanes are
        // never ready (their conversion needs the whole gathered tree).
        // The driver exempts the source itself.
        self.ready_mask[slot]
    }

    fn current_one(&self, slot: usize) -> u64 {
        // Tail lanes report their lane words; prefix lanes report the
        // per-instance tree preference (only consulted on snapshot
        // rounds, so the scalar walk stays off the hot path).
        let mut v = self.current[slot];
        let mut w = self.prefix_lanes;
        while w != 0 {
            let lane = w.trailing_zeros() as usize;
            w &= w - 1;
            if self.instances[lane * self.n + slot]
                .gear()
                .prefix()
                .preferred()
                == Value(1)
            {
                v |= 1u64 << lane;
            }
        }
        v
    }

    fn decision_one(&self, slot: usize) -> u64 {
        if slot == self.source {
            self.input_one
        } else {
            self.current[slot]
        }
    }

    fn lane_bits(&self, lane: usize) -> u64 {
        self.bits_acc[lane]
    }

    fn lane_ops(&self, lane: usize) -> u64 {
        // Tail charges are slot-uniform, so the per-processor max
        // distributes: max over slots of (prefix + tail) = prefix max +
        // tail total.
        self.ops_prefix[lane] + self.ops_tail[lane]
    }

    fn lane_discoveries(&self, lane: usize) -> u64 {
        self.disc[lane]
    }
}

/// The batch kernel for the gear-shifting families, if `spec` is
/// [`AlgorithmSpec::KingShift`] or [`AlgorithmSpec::DynamicKing`] on a
/// valid binary-domain, unauthenticated configuration with a binary
/// source value and at most 64 processors. Everything else signals the
/// caller to take the scalar path.
pub fn gear_batch_kernel(spec: &AlgorithmSpec, config: &RunConfig) -> Option<GearBatchKernel> {
    let (b, dynamic) = match spec {
        AlgorithmSpec::KingShift { b } => (*b, false),
        AlgorithmSpec::DynamicKing { b } => (*b, true),
        _ => return None,
    };
    if config.authenticated
        || config.domain.size() != 2
        || config.source_value.raw() > 1
        || config.n > sg_sim::MAX_BATCH_RUNS
        || spec.validate(config.n, config.t).is_err()
    {
        return None;
    }
    let params = Params::from_config(config);
    // A probe instance pins the schedule: total rounds, conversion
    // rounds (block boundaries) and checkpoint rounds all come from the
    // same construction the scalar path runs.
    let probe = if dynamic {
        GearInstance::Dynamic(DynamicKing::new(
            params,
            config.source,
            Some(config.source_value),
            b,
        ))
    } else {
        GearInstance::Shift(KingShift::new(
            params,
            config.source,
            Some(config.source_value),
            b,
        ))
    };
    let gear = probe.gear();
    let total = probe.proto().total_rounds();
    let phases = config.t + 1;
    let conversion_rounds: Vec<usize> = gear
        .prefix()
        .plan()
        .iter()
        .enumerate()
        .filter_map(|(idx, action)| {
            matches!(action, RoundAction::Gather { convert: Some(_) }).then_some(idx + 1)
        })
        .collect();
    let checkpoint_rounds: Vec<usize> = gear.checkpoints().iter().map(|c| c.round).collect();
    Some(GearBatchKernel {
        config: *config,
        params,
        b,
        dynamic,
        n: config.n,
        t: config.t,
        source: config.source.index(),
        input_one: if config.source_value.raw() == 1 {
            !0
        } else {
            0
        },
        total,
        phases,
        conversion_rounds,
        checkpoint_rounds,
        lanes: 0,
        instances: Vec::new(),
        ctxs: Vec::new(),
        prefix_lanes: 0,
        cohorts: Vec::new(),
        last_wide: 0,
        current: Vec::new(),
        prop_some: Vec::new(),
        prop_one: Vec::new(),
        locked: Vec::new(),
        ready_mask: Vec::new(),
        masked: Vec::new(),
        bits_acc: Vec::new(),
        ops_prefix: Vec::new(),
        ops_tail: Vec::new(),
        disc: Vec::new(),
        honest: Vec::new(),
        shadow: Vec::new(),
        rows: Vec::new(),
        inbox: Inbox::empty(config.n),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gearbox::dynamic_king_rounds;
    use crate::king_shift::king_shift_rounds;

    fn config(n: usize, t: usize) -> RunConfig {
        RunConfig::new(n, t)
    }

    #[test]
    fn both_gear_families_get_kernels() {
        assert!(gear_batch_kernel(&AlgorithmSpec::KingShift { b: 3 }, &config(16, 5)).is_some());
        assert!(gear_batch_kernel(&AlgorithmSpec::DynamicKing { b: 3 }, &config(16, 5)).is_some());
        assert!(gear_batch_kernel(&AlgorithmSpec::OptimalKing, &config(16, 5)).is_none());
        assert!(gear_batch_kernel(&AlgorithmSpec::Hybrid { b: 3 }, &config(16, 5)).is_none());
    }

    #[test]
    fn invalid_or_oversized_configs_are_refused() {
        // n ≤ 3t violates the resilience bound.
        assert!(gear_batch_kernel(&AlgorithmSpec::KingShift { b: 3 }, &config(9, 3)).is_none());
        // More processors than lanes in a word.
        assert!(gear_batch_kernel(&AlgorithmSpec::KingShift { b: 3 }, &config(100, 3)).is_none());
        // Wide-domain source values have no single-bit lane form.
        let wide = config(16, 5).with_source_value(sg_sim::Value(7));
        assert!(gear_batch_kernel(&AlgorithmSpec::DynamicKing { b: 3 }, &wide).is_none());
    }

    #[test]
    fn schedules_match_the_scalar_formulas() {
        let ks = gear_batch_kernel(&AlgorithmSpec::KingShift { b: 3 }, &config(16, 5)).unwrap();
        assert_eq!(ks.total_rounds(), king_shift_rounds(5, 3));
        // One statically planned conversion, no checkpoints.
        assert_eq!(ks.conversion_rounds, vec![1 + 3]);
        assert!(ks.checkpoint_rounds.is_empty());

        let dk = gear_batch_kernel(&AlgorithmSpec::DynamicKing { b: 3 }, &config(16, 5)).unwrap();
        assert_eq!(dk.total_rounds(), dynamic_king_rounds(5, 3));
        // A conversion closes every block; a checkpoint follows every
        // non-final one.
        assert_eq!(dk.conversion_rounds, vec![4, 7, 10, 13]);
        assert_eq!(dk.checkpoint_rounds, vec![4, 7, 10]);
    }
}
