//! Algorithm selection, validation and construction.
//!
//! [`AlgorithmSpec`] names every agreement protocol this reproduction
//! provides — the paper's five (plain/modified Exponential, Algorithms A,
//! B, C, and the Hybrid) plus two baselines from the surrounding
//! literature (Phase King and authenticated Dolev–Strong) — validates
//! parameters against each algorithm's resilience, and builds per-process
//! protocol instances for the engine.

use std::fmt;

use sg_sim::{PoolKey, ProcessId, Protocol, RunConfig, Value};

use crate::dolev_strong::DolevStrong;
use crate::gearbox::{dynamic_king_rounds, DynamicKing};
use crate::geared::GearedProtocol;
use crate::king_shift::{king_shift_rounds, KingShift};
use crate::optimal_king::OptimalKing;
use crate::params::{t_a, t_b, t_c, Params};
use crate::phase_king::PhaseKing;
use crate::phase_queen::PhaseQueen;
use crate::plan::{
    algorithm_a_plan, algorithm_b_plan, algorithm_c_plan, exponential_plan, hybrid_plan,
    RoundAction,
};
use crate::schedule::HybridSchedule;
use sg_eigtree::Conversion;

/// Which agreement algorithm to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AlgorithmSpec {
    /// The Exponential Algorithm exactly as in §3 *without* fault
    /// discovery and masking — the paper's simplification of Pease,
    /// Shostak & Lamport (1980), kept as the unmodified baseline.
    PlainExponential,
    /// The modified Exponential Algorithm (§3/§4): discovery + masking on,
    /// conversion by `resolve`.
    Exponential,
    /// The modified Exponential Algorithm converting with `resolve'`
    /// (Remark 1 after Claim 2 in §4.2).
    ExponentialPrime,
    /// Algorithm A with block parameter `b` (§4.2, Theorem 2);
    /// resilience `⌊(n−1)/3⌋`.
    AlgorithmA {
        /// Maximum gather rounds per block (after round 1); `3 ≤ b`.
        b: usize,
    },
    /// Algorithm B with block parameter `b` (§4.1, Theorem 3, Fig. 2);
    /// resilience `⌊(n−1)/4⌋`.
    AlgorithmB {
        /// Maximum gather rounds per block (after round 1); `2 ≤ b`.
        b: usize,
    },
    /// Algorithm C (§4.3, Theorem 4), the Dolev–Reischuk–Strong
    /// adaptation; resilience ≈ `√(n/2)`.
    AlgorithmC,
    /// The hybrid A→B→C algorithm (§4.4, Fig. 3, Main Theorem);
    /// resilience `⌊(n−1)/3⌋`.
    Hybrid {
        /// Maximum gather rounds per block; `3 ≤ b ≤ t_A(n)`.
        b: usize,
    },
    /// Phase King (Berman–Garay–Perry style) baseline from the paper's
    /// §5 discussion: `t+1` phases of two rounds after the source round,
    /// constant-size messages, resilience `⌊(n−1)/4⌋`.
    PhaseKing,
    /// Optimally resilient Phase King: `t+1` phases of *three* rounds
    /// after the source round, constant-size messages, resilience
    /// `⌊(n−1)/3⌋` — the optimal-resilience member of the §5 king family.
    OptimalKing,
    /// The A→King hybrid (§5/§6 shifting-into-foreign-algorithms
    /// demonstration): one Algorithm A block, shift via `resolve'`, then
    /// optimally resilient Phase King on the converted preferred values.
    /// Resilience `⌊(n−1)/3⌋`.
    KingShift {
        /// Gather rounds in the A block (clamped to `t`); `3 ≤ b`.
        b: usize,
    },
    /// The *dynamic* gear-shifted king hybrid: a worst-case prefix of
    /// Algorithm A blocks whose interior boundaries are runtime shift
    /// checkpoints — the execution enters its Phase King tail as soon as
    /// observed fault evidence bounds the active adversary, instead of
    /// completing the precompiled plan (`sg_core::gearbox`). Resilience
    /// `⌊(n−1)/3⌋`; `rounds()` reports the never-shift worst case.
    DynamicKing {
        /// Gather rounds per A block (clamped to `t`); `3 ≤ b`.
        b: usize,
    },
    /// Phase Queen (Berman & Garay) baseline: like Phase King but with a
    /// pure threshold rule; binary domain, resilience `⌊(n−1)/4⌋`.
    PhaseQueen,
    /// Authenticated Dolev–Strong (1983) baseline with simulated
    /// signatures: `t+1` rounds, resilience up to `n−2`.
    DolevStrong,
}

/// A parameter-validation failure for an [`AlgorithmSpec`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpecError {
    /// The algorithm cannot tolerate `t` faults among `n` processors.
    ResilienceExceeded {
        /// The algorithm's name.
        algorithm: String,
        /// Offered system size.
        n: usize,
        /// Requested fault bound.
        t: usize,
        /// The maximum fault bound the algorithm tolerates at this `n`.
        max_t: usize,
    },
    /// The block parameter `b` is outside the admissible range.
    BadBlockParameter {
        /// The algorithm's name.
        algorithm: String,
        /// Offered block parameter.
        b: usize,
        /// Least admissible value.
        min_b: usize,
    },
    /// The fault bound must be positive (agreement is trivial at `t = 0`,
    /// and the paper assumes `t ≥ 1`).
    FaultBoundZero,
    /// The hybrid must be instantiated at exactly its design resilience
    /// `t = t_A(n)` with `t ≥ 3`.
    HybridFaultBound {
        /// Offered fault bound.
        t: usize,
        /// Required fault bound `t_A(n)`.
        expected: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::ResilienceExceeded {
                algorithm,
                n,
                t,
                max_t,
            } => write!(
                f,
                "{algorithm} tolerates at most {max_t} faults at n={n}, got t={t}"
            ),
            SpecError::BadBlockParameter {
                algorithm,
                b,
                min_b,
            } => write!(f, "{algorithm} requires b >= {min_b}, got b={b}"),
            SpecError::FaultBoundZero => write!(f, "fault bound t must be at least 1"),
            SpecError::HybridFaultBound { t, expected } => write!(
                f,
                "the hybrid runs at its design resilience t = t_A(n) = {expected} (>= 3), got t={t}"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

impl AlgorithmSpec {
    /// Human-readable name including parameters.
    pub fn name(&self) -> String {
        match self {
            AlgorithmSpec::PlainExponential => "plain-exponential".to_string(),
            AlgorithmSpec::Exponential => "exponential".to_string(),
            AlgorithmSpec::ExponentialPrime => "exponential-prime".to_string(),
            AlgorithmSpec::AlgorithmA { b } => format!("algorithm-a(b={b})"),
            AlgorithmSpec::AlgorithmB { b } => format!("algorithm-b(b={b})"),
            AlgorithmSpec::AlgorithmC => "algorithm-c".to_string(),
            AlgorithmSpec::Hybrid { b } => format!("hybrid(b={b})"),
            AlgorithmSpec::PhaseKing => "phase-king".to_string(),
            AlgorithmSpec::OptimalKing => "optimal-king".to_string(),
            AlgorithmSpec::KingShift { b } => format!("king-shift(b={b})"),
            AlgorithmSpec::DynamicKing { b } => format!("dynamic-king(b={b})"),
            AlgorithmSpec::PhaseQueen => "phase-queen".to_string(),
            AlgorithmSpec::DolevStrong => "dolev-strong".to_string(),
        }
    }

    /// The algorithm's maximum fault bound at system size `n`.
    pub fn max_resilience(&self, n: usize) -> usize {
        match self {
            AlgorithmSpec::PlainExponential
            | AlgorithmSpec::Exponential
            | AlgorithmSpec::ExponentialPrime
            | AlgorithmSpec::AlgorithmA { .. }
            | AlgorithmSpec::OptimalKing
            | AlgorithmSpec::KingShift { .. }
            | AlgorithmSpec::DynamicKing { .. }
            | AlgorithmSpec::Hybrid { .. } => t_a(n),
            AlgorithmSpec::AlgorithmB { .. }
            | AlgorithmSpec::PhaseKing
            | AlgorithmSpec::PhaseQueen => t_b(n),
            AlgorithmSpec::AlgorithmC => t_c(n),
            AlgorithmSpec::DolevStrong => n.saturating_sub(2),
        }
    }

    /// Checks that the algorithm may run with `n` processors and fault
    /// bound `t`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the violated constraint.
    pub fn validate(&self, n: usize, t: usize) -> Result<(), SpecError> {
        if t == 0 {
            return Err(SpecError::FaultBoundZero);
        }
        let max_t = self.max_resilience(n);
        if t > max_t {
            return Err(SpecError::ResilienceExceeded {
                algorithm: self.name(),
                n,
                t,
                max_t,
            });
        }
        match *self {
            AlgorithmSpec::AlgorithmA { b } if b < 3 => Err(SpecError::BadBlockParameter {
                algorithm: self.name(),
                b,
                min_b: 3,
            }),
            AlgorithmSpec::AlgorithmB { b } if b < 2 => Err(SpecError::BadBlockParameter {
                algorithm: self.name(),
                b,
                min_b: 2,
            }),
            AlgorithmSpec::KingShift { b } | AlgorithmSpec::DynamicKing { b } if b < 3 => {
                Err(SpecError::BadBlockParameter {
                    algorithm: self.name(),
                    b,
                    min_b: 3,
                })
            }
            AlgorithmSpec::Hybrid { b } => {
                let expected = t_a(n);
                if t != expected || expected < 3 {
                    Err(SpecError::HybridFaultBound { t, expected })
                } else if !(3..=expected).contains(&b) {
                    Err(SpecError::BadBlockParameter {
                        algorithm: self.name(),
                        b,
                        min_b: 3,
                    })
                } else {
                    Ok(())
                }
            }
            _ => Ok(()),
        }
    }

    /// The exact number of communication rounds the algorithm runs with
    /// fault bound `t` (and `n` where relevant).
    pub fn rounds(&self, n: usize, t: usize) -> usize {
        match *self {
            AlgorithmSpec::PlainExponential
            | AlgorithmSpec::Exponential
            | AlgorithmSpec::ExponentialPrime
            | AlgorithmSpec::AlgorithmC => t + 1,
            AlgorithmSpec::AlgorithmA { b } => {
                crate::schedule::algorithm_a_rounds_exact(t, b.min(t))
            }
            AlgorithmSpec::AlgorithmB { b } => {
                crate::schedule::algorithm_b_rounds_exact(t, b.min(t))
            }
            AlgorithmSpec::Hybrid { b } => HybridSchedule::compute(n, b).total_rounds(),
            AlgorithmSpec::PhaseKing | AlgorithmSpec::PhaseQueen => 1 + 2 * (t + 1),
            AlgorithmSpec::OptimalKing => 1 + 3 * (t + 1),
            AlgorithmSpec::KingShift { b } => king_shift_rounds(t, b),
            AlgorithmSpec::DynamicKing { b } => dynamic_king_rounds(t, b),
            AlgorithmSpec::DolevStrong => t + 1,
        }
    }

    /// The round plan for plan-driven algorithms (`None` for the
    /// non-tree baselines Phase King and Dolev–Strong).
    pub fn plan(&self, n: usize, t: usize) -> Option<Vec<RoundAction>> {
        match *self {
            AlgorithmSpec::PlainExponential | AlgorithmSpec::Exponential => {
                Some(exponential_plan(t, Conversion::Resolve))
            }
            AlgorithmSpec::ExponentialPrime => {
                Some(exponential_plan(t, Conversion::ResolvePrime { t }))
            }
            AlgorithmSpec::AlgorithmA { b } => Some(algorithm_a_plan(t, b)),
            AlgorithmSpec::AlgorithmB { b } => Some(algorithm_b_plan(t, b)),
            AlgorithmSpec::AlgorithmC => Some(algorithm_c_plan(t)),
            AlgorithmSpec::Hybrid { b } => Some(hybrid_plan(&HybridSchedule::compute(n, b))),
            AlgorithmSpec::PhaseKing
            | AlgorithmSpec::PhaseQueen
            | AlgorithmSpec::OptimalKing
            | AlgorithmSpec::KingShift { .. }
            | AlgorithmSpec::DynamicKing { .. }
            | AlgorithmSpec::DolevStrong => None,
        }
    }

    /// Whether this spec needs the engine's simulated-signature registry.
    pub fn needs_authentication(&self) -> bool {
        matches!(self, AlgorithmSpec::DolevStrong)
    }

    /// Builds the protocol instance for processor `me`.
    ///
    /// `input` must be `Some` exactly when `me` is the source.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`AlgorithmSpec::validate`].
    pub fn build(&self, params: Params, me: ProcessId, input: Option<Value>) -> Box<dyn Protocol> {
        self.validate(params.n, params.t)
            .unwrap_or_else(|e| panic!("invalid algorithm parameters: {e}"));
        match self {
            AlgorithmSpec::PhaseKing => Box::new(PhaseKing::new(params, me, input)),
            AlgorithmSpec::OptimalKing => Box::new(OptimalKing::new(params, me, input)),
            AlgorithmSpec::KingShift { b } => Box::new(KingShift::new(params, me, input, *b)),
            AlgorithmSpec::DynamicKing { b } => Box::new(DynamicKing::new(params, me, input, *b)),
            AlgorithmSpec::PhaseQueen => Box::new(PhaseQueen::new(params, me, input)),
            AlgorithmSpec::DolevStrong => Box::new(DolevStrong::new(params, me, input)),
            _ => {
                let plan = self
                    .plan(params.n, params.t)
                    .expect("tree algorithms have plans");
                let modified = !matches!(self, AlgorithmSpec::PlainExponential);
                Box::new(GearedProtocol::new(
                    params,
                    me,
                    input,
                    self.name(),
                    modified,
                    plan,
                ))
            }
        }
    }

    /// A per-processor factory suitable for [`sg_sim::run`].
    pub fn factory(self, config: &RunConfig) -> impl Fn(ProcessId) -> Box<dyn Protocol> {
        let params = Params::from_config(config);
        let source = config.source;
        let source_value = config.source_value;
        move |me| {
            let input = (me == source).then_some(source_value);
            self.build(params, me, input)
        }
    }

    /// The instance-pool key for this spec under `config`: a stable,
    /// allocation-free hash of the algorithm (with its block parameters)
    /// and every configuration field that shapes or seeds an instance.
    /// Runs with equal keys may recycle each other's protocol instances
    /// through [`sg_sim::run_pooled`].
    pub fn pool_key(&self, config: &RunConfig) -> PoolKey {
        let (tag, b): (u64, usize) = match *self {
            AlgorithmSpec::PlainExponential => (0, 0),
            AlgorithmSpec::Exponential => (1, 0),
            AlgorithmSpec::ExponentialPrime => (2, 0),
            AlgorithmSpec::AlgorithmA { b } => (3, b),
            AlgorithmSpec::AlgorithmB { b } => (4, b),
            AlgorithmSpec::AlgorithmC => (5, 0),
            AlgorithmSpec::Hybrid { b } => (6, b),
            AlgorithmSpec::PhaseKing => (7, 0),
            AlgorithmSpec::OptimalKing => (8, 0),
            AlgorithmSpec::KingShift { b } => (9, b),
            AlgorithmSpec::PhaseQueen => (10, 0),
            AlgorithmSpec::DolevStrong => (11, 0),
            AlgorithmSpec::DynamicKing { b } => (12, b),
        };
        PoolKey::of(&[
            tag,
            b as u64,
            config.n as u64,
            config.t as u64,
            u64::from(config.domain.size()),
            config.source.index() as u64,
            u64::from(config.source_value.raw()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_enforces_resilience() {
        assert!(AlgorithmSpec::Exponential.validate(4, 1).is_ok());
        assert!(matches!(
            AlgorithmSpec::Exponential.validate(4, 2),
            Err(SpecError::ResilienceExceeded { .. })
        ));
        assert!(AlgorithmSpec::AlgorithmB { b: 2 }.validate(9, 2).is_ok());
        assert!(matches!(
            AlgorithmSpec::AlgorithmB { b: 2 }.validate(8, 2),
            Err(SpecError::ResilienceExceeded { .. })
        ));
        assert!(AlgorithmSpec::AlgorithmC.validate(18, 3).is_ok());
        assert!(matches!(
            AlgorithmSpec::AlgorithmC.validate(18, 4),
            Err(SpecError::ResilienceExceeded { .. })
        ));
    }

    #[test]
    fn validation_enforces_block_parameter() {
        assert!(matches!(
            AlgorithmSpec::AlgorithmA { b: 2 }.validate(16, 5),
            Err(SpecError::BadBlockParameter { .. })
        ));
        assert!(matches!(
            AlgorithmSpec::AlgorithmB { b: 1 }.validate(21, 5),
            Err(SpecError::BadBlockParameter { .. })
        ));
        assert!(AlgorithmSpec::AlgorithmA { b: 3 }.validate(16, 5).is_ok());
    }

    #[test]
    fn hybrid_requires_design_resilience() {
        assert!(AlgorithmSpec::Hybrid { b: 3 }.validate(16, 5).is_ok());
        assert!(matches!(
            AlgorithmSpec::Hybrid { b: 3 }.validate(16, 4),
            Err(SpecError::HybridFaultBound { .. })
        ));
        assert!(matches!(
            AlgorithmSpec::Hybrid { b: 6 }.validate(16, 5),
            Err(SpecError::BadBlockParameter { .. })
        ));
    }

    #[test]
    fn zero_faults_rejected() {
        assert_eq!(
            AlgorithmSpec::Exponential.validate(4, 0),
            Err(SpecError::FaultBoundZero)
        );
    }

    #[test]
    fn rounds_match_plan_lengths() {
        for (spec, n, t) in [
            (AlgorithmSpec::Exponential, 10, 3),
            (AlgorithmSpec::AlgorithmA { b: 3 }, 16, 5),
            (AlgorithmSpec::AlgorithmB { b: 3 }, 21, 5),
            (AlgorithmSpec::AlgorithmC, 32, 4),
            (AlgorithmSpec::Hybrid { b: 3 }, 16, 5),
        ] {
            let plan = spec.plan(n, t).unwrap();
            assert_eq!(plan.len(), spec.rounds(n, t), "{}", spec.name());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            AlgorithmSpec::AlgorithmA { b: 4 }.name(),
            "algorithm-a(b=4)"
        );
        assert_eq!(AlgorithmSpec::Hybrid { b: 3 }.name(), "hybrid(b=3)");
    }
}
