//! The plan-driven protocol machine.
//!
//! [`GearedProtocol`] interprets a round plan (see [`crate::plan`]) over
//! the paper's two principal data structures — the no-repetition
//! [`IgTree`] and Algorithm C's [`RepTree`] — with one shared auxiliary
//! structure, the fault list `L_p`. Because shifting only converts the
//! principal structure and leaves the auxiliary ones intact (§4), *every*
//! algorithm in the paper (and the hybrid that shifts across all three) is
//! an instance of this one machine with a different plan.
//!
//! The tree machine deliberately keeps the default
//! [`sg_sim::RoundStatus::Continue`] status: its decisions are functions
//! of the *complete* gathered structure (resolve/`resolve'` over full
//! levels), so no per-processor state short of the final conversion
//! proves the decision final — early stopping belongs to the quiescent
//! families (Dolev–Strong) and the lock-detecting king tails, which is
//! exactly where the paper's expedite argument places it. The lock-in
//! *measurement* for tree runs lives in `sg_analysis::stability`.

use sg_eigtree::{convert, discover_during_conversion, discover_ig, FaultList, IgTree, RepTree};
use sg_sim::{
    Inbox, Payload, ProcCtx, ProcessId, ProcessSet, Protocol, RunConfig, TraceEvent, Value,
};

use crate::params::Params;
use crate::plan::RoundAction;

/// One processor's instance of a plan-driven agreement protocol.
///
/// Construct through [`crate::AlgorithmSpec::build`] (or the factory on
/// [`crate::AlgorithmSpec`]) rather than directly; the spec validates
/// parameters and picks the right plan.
pub struct GearedProtocol {
    params: Params,
    me: ProcessId,
    /// The source's initial value; `Some` iff `me == source`.
    input: Option<Value>,
    name: String,
    /// Whether fault discovery + masking are active (the paper's
    /// "modified" Exponential Algorithm; off only for the plain PSL-style
    /// baseline).
    modified: bool,
    plan: Vec<RoundAction>,
    tree: IgTree,
    rep: RepTree,
    faults: FaultList,
    /// High-water mark of live principal-structure nodes, so the space
    /// bound reflects the gathered tree even though block conversions
    /// shrink it before the engine samples.
    peak_nodes: u64,
}

impl GearedProtocol {
    /// Builds an instance for processor `me`.
    ///
    /// `input` must be `Some` exactly when `me` is the source.
    ///
    /// # Panics
    ///
    /// Panics if `input.is_some() != (me == params.source)` or the plan is
    /// empty / does not start with [`RoundAction::Initial`].
    pub fn new(
        params: Params,
        me: ProcessId,
        input: Option<Value>,
        name: String,
        modified: bool,
        plan: Vec<RoundAction>,
    ) -> Self {
        assert_eq!(
            input.is_some(),
            me == params.source,
            "exactly the source carries an input"
        );
        assert!(
            matches!(plan.first(), Some(RoundAction::Initial)),
            "plans start with the source's broadcast round"
        );
        GearedProtocol {
            tree: IgTree::new(params.n, params.source),
            rep: RepTree::new(params.n, params.source),
            faults: FaultList::new(params.n),
            params,
            me,
            input,
            name,
            modified,
            plan,
            peak_nodes: 0,
        }
    }

    /// Records the current structure sizes into the high-water mark.
    fn note_peak(&mut self) {
        let live = self.tree.node_count() + self.rep.node_count();
        self.peak_nodes = self.peak_nodes.max(live);
    }

    /// The protocol's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This processor's current list `L_p` of discovered faults.
    pub fn fault_list(&self) -> &FaultList {
        &self.faults
    }

    /// The no-repetition information-gathering tree (inspection hook for
    /// executable-lemma tests).
    pub fn tree(&self) -> &IgTree {
        &self.tree
    }

    /// The with-repetitions tree (inspection hook for executable-lemma
    /// tests).
    pub fn rep(&self) -> &RepTree {
        &self.rep
    }

    /// The round plan being interpreted.
    pub fn plan(&self) -> &[RoundAction] {
        &self.plan
    }

    /// The current preferred value (root of the active principal
    /// structure).
    pub fn preferred(&self) -> Value {
        if self.rep_active() {
            self.rep.preferred()
        } else {
            self.tree.root()
        }
    }

    /// Whether the with-repetitions structure is the active one (i.e. the
    /// execution has reached a rep-gather round).
    fn rep_active(&self) -> bool {
        self.rep.has_intermediates()
    }

    fn action(&self, round: usize) -> RoundAction {
        self.plan[round - 1]
    }

    /// A tree level as a broadcast payload: bit-packed one-bit-per-slot
    /// for binary domains (the common case — allocation-free up to 256
    /// slots, 16× denser beyond), a plain value vector otherwise.
    fn level_payload(&self, level: &[Value]) -> Payload {
        if self.params.domain.size() == 2 {
            Payload::packed(level.iter().copied())
        } else {
            Payload::Values(level.to_vec())
        }
    }

    /// Records newly discovered processors: updates `L`, emits trace
    /// events, returns them as a set (empty if none).
    fn admit_discoveries(
        &mut self,
        discovered: &[ProcessId],
        during_conversion: bool,
        ctx: &mut ProcCtx,
    ) -> ProcessSet {
        let mut newly = ProcessSet::new(self.params.n);
        for &r in discovered {
            if self.faults.insert(r, ctx.round) {
                newly.insert(r);
                ctx.emit(TraceEvent::Discovered {
                    suspect: r,
                    during_conversion,
                });
            }
        }
        newly
    }
}

impl Protocol for GearedProtocol {
    fn total_rounds(&self) -> usize {
        self.plan.len()
    }

    fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload> {
        match self.action(ctx.round) {
            RoundAction::Initial => self.input.map(Payload::single),
            RoundAction::Gather { .. } => {
                if self.me == self.params.source {
                    // The no-repetition tree has no slots labelled by the
                    // source after round 1; it stays silent (§3).
                    None
                } else {
                    let deepest = self.tree.deepest_level();
                    Some(self.level_payload(self.tree.level(deepest)))
                }
            }
            RoundAction::RepFirstGather => Some(Payload::single(self.rep.root())),
            RoundAction::RepGather => Some(self.level_payload(self.rep.intermediates())),
        }
    }

    fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx) {
        let t = self.params.t;
        let domain = self.params.domain;
        let me = self.me;
        match self.action(ctx.round) {
            RoundAction::Initial => {
                // The source stores its own value; everyone else stores
                // what the source sent (default on anything illegitimate).
                let v = match self.input {
                    Some(v) => v,
                    None => domain.sanitize(
                        inbox
                            .from(self.params.source)
                            .value_at(0)
                            .unwrap_or(Value::DEFAULT),
                    ),
                };
                self.tree.set_root(v);
                self.rep.set_root(v);
                ctx.charge(1);
                ctx.emit(TraceEvent::Preferred { value: v });
            }

            RoundAction::Gather { convert: conv } => {
                // 1. Store the new level, masking known faults as we go.
                let deepest = self.tree.deepest_level();
                let own_level: Vec<Value> = self.tree.level(deepest).to_vec();
                {
                    let faults = &self.faults;
                    let ops = self.tree.append_level(|parent, sender| {
                        if sender == me {
                            own_level[parent]
                        } else if faults.contains(sender) {
                            Value::DEFAULT
                        } else {
                            domain.sanitize(
                                inbox
                                    .from(sender)
                                    .value_at(parent)
                                    .unwrap_or(Value::DEFAULT),
                            )
                        }
                    });
                    ctx.charge(ops);
                }

                self.note_peak();

                // 2. Fault Discovery Rule on the fresh level, then mask
                // the newly discovered processors' current messages.
                if self.modified {
                    let report = discover_ig(&self.tree, t, &self.faults);
                    ctx.charge(report.ops);
                    let newly = self.admit_discoveries(&report.discovered, false, ctx);
                    if !newly.is_empty() {
                        let k = self.tree.deepest_level();
                        ctx.charge(self.tree.mask_level(k, &newly));
                    }
                }

                // 3. Block boundary: convert and shrink (the shift).
                if let Some(spec) = conv {
                    let converted = convert(&self.tree, spec.conversion);
                    ctx.charge(converted.ops());
                    if spec.discovery && self.modified {
                        let report =
                            discover_during_conversion(&self.tree, &converted, t, &self.faults);
                        ctx.charge(report.ops);
                        self.admit_discoveries(&report.discovered, true, ctx);
                    }
                    let preferred = converted.root().value_or_default();
                    self.tree.shrink_to_root(preferred);
                    // Keep the rep root in sync so a later shift into
                    // Algorithm C starts from the converted preferred
                    // value (the hybrid's B→C boundary).
                    self.rep.set_root(preferred);
                    ctx.emit(TraceEvent::Shift {
                        conversion: spec.conversion.name().to_string(),
                        preferred,
                    });
                }
            }

            RoundAction::RepFirstGather => {
                let own_root = self.rep.root();
                {
                    let faults = &self.faults;
                    let ops = self.rep.store_intermediates(|q| {
                        if q == me {
                            own_root
                        } else if faults.contains(q) {
                            Value::DEFAULT
                        } else {
                            domain.sanitize(inbox.from(q).value_at(0).unwrap_or(Value::DEFAULT))
                        }
                    });
                    ctx.charge(ops);
                }
                if self.modified {
                    let report = self.rep.discover_root(t, &self.faults);
                    ctx.charge(report.ops);
                    let newly = self.admit_discoveries(&report.discovered, false, ctx);
                    if !newly.is_empty() {
                        ctx.charge(self.rep.mask_intermediates(&newly));
                    }
                }
                ctx.emit(TraceEvent::Preferred {
                    value: self.rep.preferred(),
                });
            }

            RoundAction::RepGather => {
                let own: Vec<Value> = self.rep.intermediates().to_vec();
                {
                    let faults = &self.faults;
                    let ops = self.rep.store_leaves(|w, r| {
                        if r == me {
                            own[w]
                        } else if faults.contains(r) {
                            Value::DEFAULT
                        } else {
                            domain.sanitize(inbox.from(r).value_at(w).unwrap_or(Value::DEFAULT))
                        }
                    });
                    ctx.charge(ops);
                }
                self.note_peak();
                if self.modified {
                    let report = self.rep.discover_intermediates(t, &self.faults);
                    ctx.charge(report.ops);
                    let newly = self.admit_discoveries(&report.discovered, false, ctx);
                    if !newly.is_empty() {
                        ctx.charge(self.rep.mask_leaves(&newly));
                    }
                }
                ctx.charge(self.rep.reorder());
                ctx.charge(self.rep.convert_to_intermediates());
                ctx.emit(TraceEvent::Shift {
                    conversion: "resolve".to_string(),
                    preferred: self.rep.preferred(),
                });
            }
        }
    }

    fn decide(&mut self, ctx: &mut ProcCtx) -> Value {
        // The source decided its own value in round 1 (§3) and never
        // revisits that decision.
        let value = match self.input {
            Some(v) => v,
            None => match self.plan.last() {
                Some(a) if a.is_rep() => self.rep.preferred(),
                _ => self.tree.root(),
            },
        };
        ctx.emit(TraceEvent::Decided { value });
        value
    }

    fn space_nodes(&self) -> u64 {
        self.peak_nodes
            .max(self.tree.node_count() + self.rep.node_count())
    }

    fn reset(&mut self, id: ProcessId, config: &RunConfig) -> bool {
        // The plan (and hence `t` and the block structure) is keyed by
        // the instance pool; everything else re-derives from `config`.
        let params = Params::from_config(config);
        self.params = params;
        self.me = id;
        self.input = (id == config.source).then_some(config.source_value);
        self.tree.reset(params.n, params.source);
        self.rep.reset(params.n, params.source);
        self.faults.reset(params.n);
        self.peak_nodes = 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::exponential_plan;
    use sg_eigtree::Conversion;
    use sg_sim::ValueDomain;

    fn params(n: usize, t: usize) -> Params {
        Params {
            n,
            t,
            source: ProcessId(0),
            domain: ValueDomain::binary(),
        }
    }

    fn proto(n: usize, t: usize, me: usize) -> GearedProtocol {
        let p = params(n, t);
        let input = (me == 0).then_some(Value(1));
        GearedProtocol::new(
            p,
            ProcessId(me),
            input,
            "test".to_string(),
            true,
            exponential_plan(t, Conversion::Resolve),
        )
    }

    #[test]
    fn source_broadcasts_only_in_round_1() {
        let mut s = proto(4, 1, 0);
        let mut ctx = ProcCtx::new(ProcessId(0));
        ctx.round = 1;
        assert_eq!(s.outgoing(&mut ctx), Some(Payload::values([Value(1)])));
        let inbox = Inbox::empty(4);
        s.deliver(&inbox, &mut ctx);
        ctx.round = 2;
        assert_eq!(s.outgoing(&mut ctx), None);
    }

    #[test]
    fn non_source_stores_and_echoes_root() {
        let mut p = proto(4, 1, 1);
        let mut ctx = ProcCtx::new(ProcessId(1));
        ctx.round = 1;
        assert_eq!(p.outgoing(&mut ctx), None);
        let mut inbox = Inbox::empty(4);
        inbox.set(ProcessId(0), Payload::values([Value(1)]));
        p.deliver(&inbox, &mut ctx);
        assert_eq!(p.preferred(), Value(1));
        ctx.round = 2;
        assert_eq!(p.outgoing(&mut ctx), Some(Payload::values([Value(1)])));
    }

    #[test]
    fn missing_source_message_defaults() {
        let mut p = proto(4, 1, 2);
        let mut ctx = ProcCtx::new(ProcessId(2));
        ctx.round = 1;
        p.deliver(&Inbox::empty(4), &mut ctx);
        assert_eq!(p.preferred(), Value::DEFAULT);
    }

    #[test]
    #[should_panic(expected = "exactly the source carries an input")]
    fn non_source_with_input_rejected() {
        let p = params(4, 1);
        let _ = GearedProtocol::new(
            p,
            ProcessId(1),
            Some(Value(1)),
            "bad".to_string(),
            true,
            exponential_plan(1, Conversion::Resolve),
        );
    }
}
