//! Parallel composition of agreement protocols.
//!
//! Runs `k` independent sub-protocols in lock-step over the same
//! communication rounds, concatenating their broadcasts into one framed
//! payload per round. Because every correct processor runs the same
//! deterministic schedules, framing is self-describing and a receiver can
//! split a peer's payload back into per-instance segments; malformed
//! frames from Byzantine senders degrade to missing messages for the
//! affected instances, which the inner protocols already tolerate.
//!
//! This is the substrate for interactive consistency (`n` parallel
//! broadcasts, one per source — the problem of Pease, Shostak & Lamport
//! that §1 of the paper builds on) and for the multivalued-to-binary
//! reduction of [`crate::multivalued`].

use sg_sim::{
    Inbox, Payload, ProcCtx, ProcessId, Protocol, RoundStatus, RunConfig, TraceEvent, Value,
};

/// Combines the sub-protocols' decisions into the composite decision.
pub type Combiner = Box<dyn Fn(&[Value]) -> Value>;

/// `k` agreement protocols running in parallel as one.
pub struct Multiplex {
    subs: Vec<Box<dyn Protocol>>,
    combine: Combiner,
    decided_vector: Option<Vec<Value>>,
    name: String,
    /// Per-instance run configurations enabling pooled resets; `None`
    /// leaves [`Protocol::reset`] unsupported (always a pool miss).
    sub_configs: Option<Vec<RunConfig>>,
}

impl Multiplex {
    /// Composes `subs` (at least one) with a decision `combine`r.
    ///
    /// # Panics
    ///
    /// Panics if `subs` is empty or the sub-protocols disagree on the
    /// number of rounds (lock-step composition needs one schedule).
    pub fn new(name: String, subs: Vec<Box<dyn Protocol>>, combine: Combiner) -> Self {
        assert!(!subs.is_empty(), "need at least one sub-protocol");
        let rounds = subs[0].total_rounds();
        assert!(
            subs.iter().all(|s| s.total_rounds() == rounds),
            "sub-protocols must share one schedule"
        );
        Multiplex {
            subs,
            combine,
            decided_vector: None,
            name,
            sub_configs: None,
        }
    }

    /// Attaches one [`RunConfig`] per sub-protocol, enabling pooled
    /// [`Protocol::reset`]: each sub resets against its own config (its
    /// own source and source value), while the composite's pool key must
    /// capture everything these configs were derived from — for
    /// interactive consistency that includes the full input vector.
    ///
    /// # Panics
    ///
    /// Panics if the count differs from the number of sub-protocols.
    pub fn with_sub_configs(mut self, sub_configs: Vec<RunConfig>) -> Self {
        assert_eq!(
            sub_configs.len(),
            self.subs.len(),
            "one config per sub-protocol"
        );
        self.sub_configs = Some(sub_configs);
        self
    }

    /// The vector of sub-decisions, available after [`Protocol::decide`].
    pub fn decided_vector(&self) -> Option<&[Value]> {
        self.decided_vector.as_deref()
    }

    /// Number of composed instances.
    pub fn width(&self) -> usize {
        self.subs.len()
    }

    /// Splits a framed payload into per-instance segments.
    ///
    /// Frame format, repeated `k` times: two length values (lo, hi) then
    /// `lo + hi·2^16` payload values. Returns `None` if the payload is
    /// not a well-formed frame sequence — the receiver then treats every
    /// instance's message from this sender as missing.
    fn split(&self, payload: &Payload) -> Option<Vec<Payload>> {
        let Payload::Values(vals) = payload else {
            return None;
        };
        let mut segments = Vec::with_capacity(self.subs.len());
        let mut pos = 0usize;
        for _ in 0..self.subs.len() {
            let lo = vals.get(pos)?.raw() as usize;
            let hi = vals.get(pos + 1)?.raw() as usize;
            let len = lo + (hi << 16);
            pos += 2;
            if pos + len > vals.len() {
                return None;
            }
            segments.push(Payload::Values(vals[pos..pos + len].to_vec()));
            pos += len;
        }
        (pos == vals.len()).then_some(segments)
    }
}

/// Appends one frame to the composite payload (vector and bit-packed
/// segments frame identically — the frame is always a value vector).
fn push_frame(out: &mut Vec<Value>, segment: Option<Payload>) {
    match segment {
        Some(ref p @ (Payload::Values(_) | Payload::Bits { .. })) => {
            let len = p.num_values();
            out.push(Value((len & 0xFFFF) as u16));
            out.push(Value((len >> 16) as u16));
            out.extend((0..len).map(|i| p.value_at(i).expect("index in range")));
        }
        _ => {
            out.push(Value(0));
            out.push(Value(0));
        }
    }
}

impl Protocol for Multiplex {
    fn total_rounds(&self) -> usize {
        self.subs[0].total_rounds()
    }

    fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload> {
        let mut any = false;
        let mut out: Vec<Value> = Vec::new();
        for sub in &mut self.subs {
            let segment = sub.outgoing(ctx);
            any |= segment.is_some();
            push_frame(&mut out, segment);
        }
        any.then_some(Payload::Values(out))
    }

    fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx) {
        let n = inbox.n();
        // Pre-split every sender's payload once.
        let split: Vec<Option<Vec<Payload>>> = (0..n)
            .map(|j| self.split(inbox.from(ProcessId(j))))
            .collect();
        for (i, sub) in self.subs.iter_mut().enumerate() {
            let mut sub_inbox = Inbox::empty(n);
            for (j, segments) in split.iter().enumerate() {
                if let Some(segments) = segments {
                    sub_inbox.set(ProcessId(j), segments[i].clone());
                }
            }
            sub.deliver(&sub_inbox, ctx);
        }
    }

    fn decide(&mut self, ctx: &mut ProcCtx) -> Value {
        let vector: Vec<Value> = self.subs.iter_mut().map(|s| s.decide(ctx)).collect();
        let decision = (self.combine)(&vector);
        ctx.emit(TraceEvent::Note {
            text: format!("{} vector {:?}", self.name, vector),
        });
        self.decided_vector = Some(vector);
        ctx.emit(TraceEvent::Decided { value: decision });
        decision
    }

    fn space_nodes(&self) -> u64 {
        self.subs.iter().map(|s| s.space_nodes()).sum()
    }

    /// Ready exactly when *every* composed instance is ready: the
    /// combined decision vector is final iff each slot is. Instances
    /// without a status hook report [`RoundStatus::Continue`], which
    /// correctly pins the composition to its full schedule.
    fn round_status(&self, ctx: &ProcCtx) -> RoundStatus {
        if self
            .subs
            .iter()
            .all(|s| s.round_status(ctx) == RoundStatus::ReadyToDecide)
        {
            RoundStatus::ReadyToDecide
        } else {
            RoundStatus::Continue
        }
    }

    fn reset(&mut self, id: ProcessId, _config: &RunConfig) -> bool {
        // Without per-instance configs the composite cannot re-derive its
        // subs' sources and inputs: report a pool miss.
        let Some(sub_configs) = &self.sub_configs else {
            return false;
        };
        for (sub, cfg) in self.subs.iter_mut().zip(sub_configs) {
            if !sub.reset(id, cfg) {
                return false;
            }
        }
        self.decided_vector = None;
        true
    }
}

/// The plurality value of `vector` (smallest value wins ties) — the usual
/// consensus combiner over an interactive-consistency vector.
pub fn plurality(vector: &[Value]) -> Value {
    let mut counts: Vec<(Value, usize)> = Vec::new();
    for v in vector {
        match counts.iter_mut().find(|(u, _)| u == v) {
            Some((_, c)) => *c += 1,
            None => counts.push((*v, 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts.first().map_or(Value::DEFAULT, |(v, _)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stub sub-protocol that broadcasts a fixed vector and decides a
    /// fixed value.
    struct Stub {
        send: Vec<Value>,
        silent: bool,
        got: Vec<Option<Value>>,
        decide: Value,
    }

    impl Protocol for Stub {
        fn total_rounds(&self) -> usize {
            1
        }
        fn outgoing(&mut self, _ctx: &mut ProcCtx) -> Option<Payload> {
            (!self.silent).then(|| Payload::Values(self.send.clone()))
        }
        fn deliver(&mut self, inbox: &Inbox, _ctx: &mut ProcCtx) {
            self.got = (0..inbox.n())
                .map(|j| inbox.from(ProcessId(j)).value_at(0))
                .collect();
        }
        fn decide(&mut self, _ctx: &mut ProcCtx) -> Value {
            self.decide
        }
    }

    fn stub(send: Vec<Value>, silent: bool, decide: Value) -> Box<dyn Protocol> {
        Box::new(Stub {
            send,
            silent,
            got: Vec::new(),
            decide,
        })
    }

    #[test]
    fn frames_roundtrip_through_split() {
        let mx = Multiplex::new(
            "test".to_string(),
            vec![
                stub(vec![Value(1), Value(2)], false, Value(0)),
                stub(vec![], false, Value(0)),
                stub(vec![Value(3)], true, Value(0)),
            ],
            Box::new(plurality),
        );
        let mut out = Vec::new();
        push_frame(&mut out, Some(Payload::values([Value(1), Value(2)])));
        push_frame(&mut out, Some(Payload::values([])));
        push_frame(&mut out, None);
        let segments = mx.split(&Payload::Values(out)).expect("well-formed");
        assert_eq!(segments[0], Payload::values([Value(1), Value(2)]));
        assert_eq!(segments[1], Payload::values([]));
        assert_eq!(segments[2], Payload::values([]));
    }

    #[test]
    fn malformed_frames_are_rejected() {
        let mx = Multiplex::new(
            "test".to_string(),
            vec![stub(vec![], false, Value(0))],
            Box::new(plurality),
        );
        // Length claims more values than present.
        assert!(mx
            .split(&Payload::values([Value(5), Value(0), Value(1)]))
            .is_none());
        // Trailing garbage.
        assert!(mx
            .split(&Payload::values([Value(0), Value(0), Value(9)]))
            .is_none());
        assert!(mx.split(&Payload::Missing).is_none());
    }

    #[test]
    fn decide_combines_and_records_vector() {
        let mut mx = Multiplex::new(
            "test".to_string(),
            vec![
                stub(vec![], true, Value(1)),
                stub(vec![], true, Value(0)),
                stub(vec![], true, Value(1)),
            ],
            Box::new(plurality),
        );
        let mut ctx = ProcCtx::new(ProcessId(0));
        assert_eq!(mx.decide(&mut ctx), Value(1));
        assert_eq!(
            mx.decided_vector(),
            Some(&[Value(1), Value(0), Value(1)][..])
        );
    }

    #[test]
    fn plurality_breaks_ties_downward() {
        assert_eq!(plurality(&[Value(1), Value(0)]), Value(0));
        assert_eq!(plurality(&[Value(2), Value(2), Value(1)]), Value(2));
        assert_eq!(plurality(&[]), Value::DEFAULT);
    }
}
