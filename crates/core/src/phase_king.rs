//! Phase King baseline (Berman–Garay–Perry).
//!
//! The paper's §5 points to Berman, Garay & Perry's then-new agreement
//! algorithms as successors built on related fault-masking ideas. We
//! provide the classic *Phase King* protocol as a constant-message-size
//! baseline: after the source round, it runs `t+1` phases of two rounds
//! each; phase `k`'s designated king breaks ties. Resilience `n > 4t`
//! (i.e. `t ≤ ⌊(n−1)/4⌋`), messages of O(1) values.
//!
//! Adaptation to Byzantine *agreement* (broadcast): round 1 is the
//! source's broadcast; the received value seeds each processor's
//! consensus input, and validity follows from persistence (a unanimous
//! correct majority survives every phase).

use sg_sim::{
    Inbox, Payload, ProcCtx, ProcessId, Protocol, RoundStatus, RunConfig, TraceEvent, Value,
};

use crate::params::Params;

/// One processor's Phase King instance.
///
/// Rounds: `1` (source broadcast), then for each phase `k ∈ 0..=t`:
/// round `2+2k` (everyone broadcasts its current value) and round `3+2k`
/// (the phase king — processor with id `k`, skipping the source — breaks
/// ties).
pub struct PhaseKing {
    params: Params,
    me: ProcessId,
    input: Option<Value>,
    current: Value,
    /// Plurality value and its count from the phase's first round.
    tally: Option<(Value, usize)>,
    /// Whether the last completed phase saw this processor's plurality
    /// backed by a super-majority (`count > n/2 + t`) — the condition
    /// under which it ignored the king. If *every* correct processor is
    /// super-majority-backed in the same phase they all back the same
    /// value (two values cannot each have more than `n/2` correct
    /// holders), so correct unanimity holds and, at `n > 4t`, persists
    /// through every later phase: the decision is final and the engine
    /// may stop the run.
    stable: bool,
}

impl PhaseKing {
    /// Builds an instance for processor `me`. `input` must be `Some`
    /// exactly when `me` is the source.
    ///
    /// # Panics
    ///
    /// Panics if the input/source relationship is violated.
    pub fn new(params: Params, me: ProcessId, input: Option<Value>) -> Self {
        assert_eq!(
            input.is_some(),
            me == params.source,
            "exactly the source carries an input"
        );
        PhaseKing {
            params,
            me,
            input,
            current: Value::DEFAULT,
            tally: None,
            stable: false,
        }
    }

    /// The king of phase `k` (0-based): the `k`-th processor id, skipping
    /// the source so the source's round-1 influence is not doubled.
    fn king(&self, phase: usize) -> ProcessId {
        let mut idx = 0usize;
        let mut remaining = phase;
        loop {
            if ProcessId(idx) != self.params.source {
                if remaining == 0 {
                    return ProcessId(idx);
                }
                remaining -= 1;
            }
            idx += 1;
        }
    }

    /// Decomposes a round number into its role within the protocol.
    fn role(&self, round: usize) -> Role {
        if round == 1 {
            Role::SourceRound
        } else if round.is_multiple_of(2) {
            Role::Exchange
        } else {
            Role::KingRound {
                phase: (round - 3) / 2,
            }
        }
    }
}

enum Role {
    SourceRound,
    Exchange,
    KingRound { phase: usize },
}

impl Protocol for PhaseKing {
    fn total_rounds(&self) -> usize {
        1 + 2 * (self.params.t + 1)
    }

    fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload> {
        match self.role(ctx.round) {
            Role::SourceRound => self.input.map(Payload::single),
            Role::Exchange => Some(Payload::single(self.current)),
            Role::KingRound { phase } => {
                let (maj, _) = self.tally.unwrap_or((Value::DEFAULT, 0));
                (self.king(phase) == self.me).then(|| Payload::single(maj))
            }
        }
    }

    fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx) {
        let n = self.params.n;
        let domain = self.params.domain;
        match self.role(ctx.round) {
            Role::SourceRound => {
                self.current = match self.input {
                    Some(v) => v,
                    None => domain.sanitize(
                        inbox
                            .from(self.params.source)
                            .value_at(0)
                            .unwrap_or(Value::DEFAULT),
                    ),
                };
                ctx.charge(1);
                ctx.emit(TraceEvent::Preferred {
                    value: self.current,
                });
            }
            Role::Exchange => {
                // Tally everyone's value (own included); plurality with
                // smallest-value tie-break.
                if let Some(mut ballots) = inbox.ballots().filter(|_| domain.size() == 2) {
                    // Binary popcount fast path: everything that is not a
                    // readable 1 sanitizes to the default, so the zero
                    // count is n − ones and the smaller value wins ties.
                    ballots.clear(self.me);
                    ballots.record(self.me, self.current);
                    ctx.charge(n as u64);
                    let ones = ballots.ones.count_ones() as usize;
                    self.tally = Some(if ones > n - ones {
                        (Value(1), ones)
                    } else {
                        (Value(0), n - ones)
                    });
                } else {
                    let mut counts: Vec<(Value, usize)> = Vec::new();
                    for i in 0..n {
                        let v = if ProcessId(i) == self.me {
                            self.current
                        } else {
                            domain.sanitize(
                                inbox
                                    .from(ProcessId(i))
                                    .value_at(0)
                                    .unwrap_or(Value::DEFAULT),
                            )
                        };
                        match counts.iter_mut().find(|(u, _)| *u == v) {
                            Some((_, c)) => *c += 1,
                            None => counts.push((v, 1)),
                        }
                        ctx.charge(1);
                    }
                    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    self.tally = counts.first().copied();
                }
            }
            Role::KingRound { phase } => {
                let king = self.king(phase);
                let (maj, count) = self.tally.take().unwrap_or((Value::DEFAULT, 0));
                let king_value = if king == self.me {
                    maj
                } else {
                    domain.sanitize(inbox.from(king).value_at(0).unwrap_or(Value::DEFAULT))
                };
                // Keep the plurality only with super-majority support.
                self.stable = count > n / 2 + self.params.t;
                self.current = if self.stable { maj } else { king_value };
                ctx.charge(1);
                ctx.emit(TraceEvent::Preferred {
                    value: self.current,
                });
            }
        }
    }

    fn decide(&mut self, ctx: &mut ProcCtx) -> Value {
        let value = match self.input {
            Some(v) => v,
            None => self.current,
        };
        ctx.emit(TraceEvent::Decided { value });
        value
    }

    /// Ready once the latest phase kept its value by super-majority (see
    /// the `stable` field's invariant); the source is always ready — it
    /// decides its own input.
    fn round_status(&self, _ctx: &ProcCtx) -> RoundStatus {
        if self.input.is_some() || self.stable {
            RoundStatus::ReadyToDecide
        } else {
            RoundStatus::Continue
        }
    }

    fn reset(&mut self, id: ProcessId, config: &RunConfig) -> bool {
        self.params = Params::from_config(config);
        self.me = id;
        self.input = (id == config.source).then_some(config.source_value);
        self.current = Value::DEFAULT;
        self.tally = None;
        self.stable = false;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sim::ValueDomain;

    fn params(n: usize, t: usize) -> Params {
        Params {
            n,
            t,
            source: ProcessId(0),
            domain: ValueDomain::binary(),
        }
    }

    #[test]
    fn kings_skip_the_source_and_are_distinct() {
        let p = PhaseKing::new(params(9, 2), ProcessId(1), None);
        let kings: Vec<ProcessId> = (0..3).map(|k| p.king(k)).collect();
        assert_eq!(kings, vec![ProcessId(1), ProcessId(2), ProcessId(3)]);
    }

    #[test]
    fn round_count_is_1_plus_2_phases() {
        let p = PhaseKing::new(params(9, 2), ProcessId(1), None);
        assert_eq!(p.total_rounds(), 7);
    }

    #[test]
    fn source_round_seeds_current() {
        let mut p = PhaseKing::new(params(5, 1), ProcessId(2), None);
        let mut ctx = ProcCtx::new(ProcessId(2));
        ctx.round = 1;
        let mut inbox = Inbox::empty(5);
        inbox.set(ProcessId(0), Payload::values([Value(1)]));
        p.deliver(&inbox, &mut ctx);
        assert_eq!(p.current, Value(1));
    }

    #[test]
    fn super_majority_overrides_king() {
        let mut p = PhaseKing::new(params(5, 1), ProcessId(2), None);
        p.current = Value(1);
        let mut ctx = ProcCtx::new(ProcessId(2));
        // Exchange: everyone says 1 -> count 5 > n/2 + t = 3.
        ctx.round = 2;
        let mut inbox = Inbox::empty(5);
        for i in 0..5 {
            if i != 2 {
                inbox.set(ProcessId(i), Payload::values([Value(1)]));
            }
        }
        p.deliver(&inbox, &mut ctx);
        // King round: the king says 0, but the super-majority wins.
        ctx.round = 3;
        let mut inbox = Inbox::empty(5);
        inbox.set(p.king(0), Payload::values([Value(0)]));
        p.deliver(&inbox, &mut ctx);
        assert_eq!(p.current, Value(1));
    }

    #[test]
    fn king_breaks_weak_plurality() {
        let mut p = PhaseKing::new(params(5, 1), ProcessId(2), None);
        p.current = Value(1);
        let mut ctx = ProcCtx::new(ProcessId(2));
        ctx.round = 2;
        let mut inbox = Inbox::empty(5);
        inbox.set(ProcessId(0), Payload::values([Value(0)]));
        inbox.set(ProcessId(1), Payload::values([Value(0)]));
        inbox.set(ProcessId(3), Payload::values([Value(1)]));
        inbox.set(ProcessId(4), Payload::values([Value(0)]));
        p.deliver(&inbox, &mut ctx);
        // Plurality 0 with count 3, not > 3: king decides.
        ctx.round = 3;
        let mut inbox = Inbox::empty(5);
        inbox.set(p.king(0), Payload::values([Value(1)]));
        p.deliver(&inbox, &mut ctx);
        assert_eq!(p.current, Value(1));
    }
}
