//! The gear box: one scheduler for every tree-prefix → king-tail
//! composition, static or dynamic.
//!
//! Before this module, [`crate::compose::ComposedProtocol`],
//! [`crate::KingShift`] and the plan-driven [`GearedProtocol`] each
//! carried their own copy of the same round dispatch: drive the tree
//! machine through a prefix plan, seed a [`KingCore`] at the boundary,
//! then map the remaining rounds onto three-round king phases.
//! [`GearBox`] is that dispatch, written once — the wrappers delegate to
//! it — and it is where the paper's headline becomes *runtime* behaviour:
//! the box can pick its next segment **while the execution runs**, from
//! accumulated fault evidence, instead of replaying a worst-case plan.
//!
//! # Dynamic gear shifting
//!
//! A dynamic gear box carries a list of [`Checkpoint`]s — the prefix's
//! A/B block boundaries — and, at each one, weighs the block that just
//! closed against its worst-case detection guarantee (§4.4's ledger:
//! `b − 2` new global detections per Algorithm A block, `b − 1` per B
//! block). A block that *under-delivers* detections is evidence the
//! adversary has fewer active faults than the remaining worst-case plan
//! was sized for, so the box votes to shift straight into its king tail
//! ([`sg_sim::GearAction::ShiftGear`]); a full ledger (`|L_p| ≥ t`)
//! votes likewise — every fault is already masked. The engine commits
//! the shift only when **every correct processor** votes it in the same
//! round (the same omniscient conjunction as status-driven early
//! stopping), then calls [`GearBox::shift_gear`] on every instance so
//! the schedule stays common.
//!
//! Why this is sound at any checkpoint, in the paper's own terms:
//! shifting into an optimally resilient king tail is **unconditional**
//! at `t ≤ t_A(n)` (see [`crate::compose`]) — Phase King reaches
//! agreement from arbitrary seed values, and validity rides the
//! Persistence Lemma through the prefix exactly as in the static
//! A→King hybrid. The evidence rule therefore only affects *speed*,
//! never safety: a non-committed vote simply continues the static plan,
//! and a committed shift lands in a protocol whose guarantees do not
//! depend on why the shift happened. Failed king phases
//! ([`KingCore::failed_phases`]) are surfaced as the matching
//! tail-side evidence stream for future policies.
//!
//! The escape hatch is the policy itself: a box with no checkpoints is
//! exactly the old static dispatch, bit for bit — the static
//! compositions' committed fingerprints survive unchanged.

use sg_sim::{
    GearAction, Inbox, Payload, ProcCtx, ProcessId, Protocol, RoundStatus, RunConfig, TraceEvent,
    Value,
};

use sg_eigtree::Conversion;

use crate::geared::GearedProtocol;
use crate::optimal_king::{KingCore, PhaseStep};
use crate::params::Params;
use crate::plan::{ConvertSpec, RoundAction};

/// One dynamic shift checkpoint: a prefix block boundary at which a
/// [`GearBox`] may vote to shift into its king tail.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Checkpoint {
    /// The engine round whose delivery closes the block (a conversion
    /// round of the prefix plan, strictly before the static prefix end).
    pub round: usize,
    /// The closed block's guaranteed worst-case detection capacity
    /// (`b − 2` for an Algorithm A block, `b − 1` for a B block): the
    /// vote shifts when the block discovered fewer new faults than this.
    pub capacity: usize,
}

/// The schedule half of a [`GearBox`]: how the king tail is entered
/// (statically planned and/or through dynamic checkpoints), how long it
/// runs, and the fault budget the evidence rule is calibrated against.
#[derive(Clone, Debug)]
pub struct GearPlan {
    /// Whether the static plan itself ends in the king tail (vs the tail
    /// existing only as the dynamic escape target).
    pub static_tail: bool,
    /// King-tail length, in three-round phases.
    pub phases: usize,
    /// Trace label for the prefix → tail seeding event.
    pub tail_label: &'static str,
    /// Dynamic shift checkpoints, ascending, all strictly inside the
    /// prefix (empty = static dispatch).
    pub checkpoints: Vec<Checkpoint>,
    /// The fault bound `t` the evidence rule's full-ledger vote uses.
    pub t: usize,
}

/// The unified tree-prefix → king-tail round dispatcher behind
/// [`crate::KingShift`], [`crate::compose::ComposedProtocol`] and
/// [`DynamicKing`]. See the module docs for the dynamic-shifting rules;
/// with no checkpoints the box replays its static plan exactly.
pub struct GearBox {
    input: Option<Value>,
    geared: GearedProtocol,
    king: Option<KingCore>,
    /// Effective prefix length: the static plan length until a dynamic
    /// shift truncates it.
    prefix_rounds: usize,
    /// The static plan's prefix length (restored on reset).
    static_prefix: usize,
    /// Whether the static plan itself ends in the king tail (vs the tail
    /// existing only as the dynamic escape target).
    static_tail: bool,
    phases: usize,
    /// Trace label for the prefix → tail seeding event.
    tail_label: &'static str,
    seeded: bool,
    shifted: bool,
    checkpoints: Vec<Checkpoint>,
    /// `|L_p|` at the previous checkpoint — the evidence baseline.
    ledger_baseline: usize,
    /// Whether the checkpoint just delivered voted to shift.
    vote_shift: bool,
    t: usize,
}

impl GearBox {
    /// Assembles a gear box.
    ///
    /// `geared` interprets the prefix plan; `king` is the tail core
    /// (mandatory when the [`GearPlan`] has a static tail or any
    /// checkpoint); `input` must be `Some` exactly for the source.
    ///
    /// # Panics
    ///
    /// Panics if a tail is required but `king` is `None`, or a
    /// checkpoint falls outside the prefix.
    pub fn new(
        input: Option<Value>,
        geared: GearedProtocol,
        king: Option<KingCore>,
        plan: GearPlan,
    ) -> Self {
        let static_prefix = geared.plan().len();
        assert!(
            king.is_some() || (!plan.static_tail && plan.checkpoints.is_empty()),
            "a king tail or dynamic checkpoints require a king core"
        );
        assert!(
            plan.checkpoints.iter().all(|c| c.round < static_prefix),
            "checkpoints must fall strictly inside the prefix"
        );
        GearBox {
            input,
            geared,
            king,
            prefix_rounds: static_prefix,
            static_prefix,
            static_tail: plan.static_tail,
            phases: plan.phases,
            tail_label: plan.tail_label,
            seeded: false,
            shifted: false,
            checkpoints: plan.checkpoints,
            ledger_baseline: 0,
            vote_shift: false,
            t: plan.t,
        }
    }

    /// The tree-machine prefix (inspection hook).
    pub fn prefix(&self) -> &GearedProtocol {
        &self.geared
    }

    /// The king-tail core, if the box has one (inspection hook).
    pub fn core(&self) -> Option<&KingCore> {
        self.king.as_ref()
    }

    /// The effective prefix length: static until a dynamic shift
    /// truncates it to the shift round.
    pub fn prefix_rounds(&self) -> usize {
        self.prefix_rounds
    }

    /// Whether a dynamic shift has committed this run.
    pub fn shifted(&self) -> bool {
        self.shifted
    }

    /// Whether the king tail has been seeded from the prefix (statically
    /// at the planned boundary, or by a committed dynamic shift).
    pub fn seeded(&self) -> bool {
        self.seeded
    }

    /// The dynamic shift checkpoints (empty for static dispatch).
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Whether the king tail runs this execution: statically planned, or
    /// entered through a committed dynamic shift.
    fn tail_active(&self) -> bool {
        self.static_tail || self.shifted
    }

    /// The round after which this box's current schedule is exhausted.
    fn end_round(&self) -> usize {
        self.prefix_rounds
            + if self.tail_active() {
                3 * self.phases
            } else {
                0
            }
    }

    /// The worst-case schedule length: the longest schedule any gear
    /// sequence can produce (shifts only ever truncate the prefix, so
    /// with a static tail this is simply the full static plan).
    pub fn worst_case_rounds(&self) -> usize {
        worst_case_schedule(
            self.static_prefix,
            self.static_tail,
            self.phases,
            &self.checkpoints,
        )
    }

    /// Maps a post-prefix engine round to (phase, step).
    fn locate(&self, round: usize) -> (usize, PhaseStep) {
        debug_assert!(round > self.prefix_rounds);
        let i = round - self.prefix_rounds - 1;
        (i / 3, PhaseStep::from_index(i % 3))
    }

    /// The prefix → tail boundary: seed the king core from the converted
    /// tree root and carry the fault list across as masks (the paper's
    /// auxiliary-structure rule).
    fn seed_tail(&mut self, ctx: &mut ProcCtx) {
        let preferred = self.geared.preferred();
        let king = self
            .king
            .as_mut()
            .expect("seeding requires a king tail core");
        king.set_current(preferred);
        for p in self.geared.fault_list().iter() {
            king.mask(p);
        }
        self.seeded = true;
        ctx.emit(TraceEvent::Shift {
            conversion: self.tail_label.to_string(),
            preferred,
        });
    }

    /// The box's payload for the round in `ctx.round`.
    pub fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload> {
        if ctx.round <= self.prefix_rounds {
            self.geared.outgoing(ctx)
        } else {
            let (phase, step) = self.locate(ctx.round);
            self.king
                .as_mut()
                .expect("tail rounds only exist with a king core")
                .outgoing(phase, step)
        }
    }

    /// Consumes one round's inbox, evaluating the dynamic shift vote at
    /// checkpoints and seeding the tail at the static boundary.
    pub fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx) {
        self.vote_shift = false;
        if ctx.round <= self.prefix_rounds {
            self.geared.deliver(inbox, ctx);
            if ctx.round == self.prefix_rounds {
                if self.static_tail && !self.seeded {
                    self.seed_tail(ctx);
                }
            } else if !self.shifted {
                if let Some(cp) = self.checkpoints.iter().find(|c| c.round == ctx.round) {
                    // The evidence rule: a block that under-delivered
                    // against its worst-case detection guarantee, or a
                    // full ledger, votes to shift into the tail now.
                    let ledger = self.geared.fault_list().len();
                    let newly = ledger.saturating_sub(self.ledger_baseline);
                    self.vote_shift = newly < cp.capacity || ledger >= self.t;
                    self.ledger_baseline = ledger;
                }
            }
        } else {
            let (phase, step) = self.locate(ctx.round);
            self.king
                .as_mut()
                .expect("tail rounds only exist with a king core")
                .deliver(phase, step, inbox, ctx);
        }
    }

    /// The decision: the source's own input; otherwise the tail's final
    /// value when the tail ran, or the prefix's converted root.
    pub fn decide(&mut self, ctx: &mut ProcCtx) -> Value {
        let value = match self.input {
            Some(v) => v,
            None => {
                if self.seeded {
                    self.king
                        .as_ref()
                        .expect("seeded boxes have a king core")
                        .current()
                } else {
                    self.geared.preferred()
                }
            }
        };
        ctx.emit(TraceEvent::Decided { value });
        value
    }

    /// Live principal-structure nodes (the prefix tree dominates).
    pub fn space_nodes(&self) -> u64 {
        self.geared.space_nodes()
    }

    /// Forwards the active segment's status: the tree prefix is
    /// fixed-length ([`RoundStatus::Continue`] — conversions need the
    /// whole gathered structure), a running king tail reports
    /// [`KingCore::is_ready`], and the source is always ready.
    pub fn round_status(&self, _ctx: &ProcCtx) -> RoundStatus {
        let king_ready = self.seeded && self.king.as_ref().is_some_and(KingCore::is_ready);
        if self.input.is_some() || king_ready {
            RoundStatus::ReadyToDecide
        } else {
            RoundStatus::Continue
        }
    }

    /// The schedule vote (see [`sg_sim::Protocol::next_action`]):
    /// `Finished` past the current schedule's end, `ShiftGear` when the
    /// checkpoint just delivered voted to shift, `Round` otherwise.
    pub fn next_action(&self, ctx: &ProcCtx) -> GearAction {
        if ctx.round >= self.end_round() {
            GearAction::Finished
        } else if self.vote_shift {
            GearAction::ShiftGear
        } else {
            GearAction::Round
        }
    }

    /// Commits an engine-mediated dynamic shift: truncates the prefix at
    /// the current round and seeds the king tail. Called on every
    /// instance — including honest shadows whose own vote may have
    /// differed — so the post-shift schedule is common.
    pub fn shift_gear(&mut self, ctx: &mut ProcCtx) {
        if self.seeded || self.shifted {
            return;
        }
        self.prefix_rounds = ctx.round;
        self.shifted = true;
        self.vote_shift = false;
        self.seed_tail(ctx);
    }

    /// Restores the box (and its prefix machine and tail core) to the
    /// freshly-constructed state for processor `id` under `config` — the
    /// instance-pool path. The plan shape, checkpoints and phase count
    /// are fixed by the pool key.
    pub fn reset(&mut self, id: ProcessId, config: &RunConfig) -> bool {
        let params = Params::from_config(config);
        if !self.geared.reset(id, config) {
            return false;
        }
        self.input = (id == config.source).then_some(config.source_value);
        if let Some(king) = self.king.as_mut() {
            king.reset(params, id);
        }
        self.prefix_rounds = self.static_prefix;
        self.seeded = false;
        self.shifted = false;
        self.vote_shift = false;
        self.ledger_baseline = 0;
        true
    }
}

/// The worst-case schedule length of a gear plan: the static prefix
/// (plus the statically planned king tail, when there is one), or — when
/// a checkpoint's escape tail would outrun that — the latest checkpoint
/// plus its full `3 · phases`-round tail. The one formula behind both
/// [`GearBox::worst_case_rounds`] (the engine's schedule ceiling) and
/// [`crate::ShiftComposition::rounds`] (the reported round budget), so
/// the two can never drift apart.
pub fn worst_case_schedule(
    static_prefix: usize,
    static_tail: bool,
    phases: usize,
    checkpoints: &[Checkpoint],
) -> usize {
    let static_total = static_prefix + if static_tail { 3 * phases } else { 0 };
    checkpoints
        .iter()
        .map(|c| c.round + 3 * phases)
        .fold(static_total, usize::max)
}

/// The worst-case round count of [`DynamicKing`] at `(t, b)`: round 1,
/// the full prefix of [`dynamic_king_blocks`]`(t, b)` Algorithm A blocks
/// of `min(b, t)` gather rounds each, then `t + 1` three-round king
/// phases. A dynamic shift can only shorten this.
pub fn dynamic_king_rounds(t: usize, b: usize) -> usize {
    let b_eff = b.min(t).max(1);
    1 + dynamic_king_blocks(t, b) * b_eff + 3 * (t + 1)
}

/// How many Algorithm A blocks [`DynamicKing`]'s worst-case prefix runs
/// at `(t, b)`: enough for the §4.4 detection ledger (`1` for the faulty
/// source plus `b − 2` per block) to reach `t`, so the never-shift path
/// enters its tail with every fault guaranteed detected.
pub fn dynamic_king_blocks(t: usize, b: usize) -> usize {
    let capacity = b.min(t).saturating_sub(2);
    if capacity == 0 {
        1
    } else {
        t.saturating_sub(1).div_ceil(capacity).max(1)
    }
}

/// The dynamic gear-shifted king hybrid —
/// [`crate::AlgorithmSpec::DynamicKing`].
///
/// The worst-case plan is [`crate::KingShift`] generalized to
/// [`dynamic_king_blocks`] Algorithm A blocks: gather, discover, mask and
/// convert block by block, then finish with an optimally resilient Phase
/// King tail of `t + 1` phases. The dynamic part is *when the tail
/// starts*: at every block boundary the [`GearBox`] evidence rule may
/// shift into the tail immediately, so an execution facing few active
/// faults skips the remaining worst-case blocks — the paper's
/// "changing algorithms on the fly to expedite" as a runtime decision
/// rather than a precompiled plan. Resilience `⌊(n−1)/3⌋`, like
/// Algorithm A and the static king shift.
///
/// ```
/// use sg_core::{execute, AlgorithmSpec};
/// use sg_sim::{NoFaults, RunConfig, Value};
///
/// let config = RunConfig::new(16, 5).with_source_value(Value(1));
/// let outcome = execute(AlgorithmSpec::DynamicKing { b: 3 }, &config, &mut NoFaults)?;
/// assert_eq!(outcome.decision(), Some(Value(1)));
/// assert_eq!(outcome.scheduled_rounds, 31); // 1 + 4·b + 3·(t+1) worst case
/// // Fault-free, the first block under-delivers detections, the shift
/// // commits at its boundary, and the tail locks one propose step later.
/// assert_eq!(outcome.rounds_used, 6); // 1 + b + exchange + propose
/// # Ok::<(), sg_core::SpecError>(())
/// ```
pub struct DynamicKing {
    gear: GearBox,
    b: usize,
}

impl DynamicKing {
    /// Builds an instance for processor `me` with block parameter `b`
    /// (clamped to `t` like every block algorithm).
    ///
    /// `input` must be `Some` exactly when `me` is the source.
    ///
    /// # Panics
    ///
    /// Panics if the input/source relationship is violated or `b < 3`.
    pub fn new(params: Params, me: ProcessId, input: Option<Value>, b: usize) -> Self {
        assert!(b >= 3, "Algorithm A blocks require b >= 3, got {b}");
        let t = params.t;
        let b_eff = b.min(t).max(1);
        let blocks = dynamic_king_blocks(t, b);
        let capacity = b_eff.saturating_sub(2);
        let mut plan = vec![RoundAction::Initial];
        let mut checkpoints = Vec::with_capacity(blocks.saturating_sub(1));
        for block in 0..blocks {
            for i in 0..b_eff {
                plan.push(RoundAction::Gather {
                    convert: (i == b_eff - 1).then_some(ConvertSpec {
                        conversion: Conversion::ResolvePrime { t },
                        discovery: true,
                    }),
                });
            }
            if block + 1 < blocks {
                checkpoints.push(Checkpoint {
                    round: plan.len(),
                    capacity,
                });
            }
        }
        let geared = GearedProtocol::new(
            params,
            me,
            input,
            format!("dynamic-king-prefix(b={b})"),
            true,
            plan,
        );
        DynamicKing {
            gear: GearBox::new(
                input,
                geared,
                Some(KingCore::new(params, me)),
                GearPlan {
                    static_tail: true,
                    phases: t + 1,
                    tail_label: "dynamic resolve' -> phase-king",
                    checkpoints,
                    t,
                },
            ),
            b,
        }
    }

    /// The block parameter the instance was built with.
    pub fn b(&self) -> usize {
        self.b
    }

    /// The underlying gear box (inspection hook for tests).
    pub fn gear(&self) -> &GearBox {
        &self.gear
    }
}

impl Protocol for DynamicKing {
    fn total_rounds(&self) -> usize {
        self.gear.worst_case_rounds()
    }

    fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload> {
        self.gear.outgoing(ctx)
    }

    fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx) {
        self.gear.deliver(inbox, ctx)
    }

    fn decide(&mut self, ctx: &mut ProcCtx) -> Value {
        self.gear.decide(ctx)
    }

    fn space_nodes(&self) -> u64 {
        self.gear.space_nodes()
    }

    fn round_status(&self, ctx: &ProcCtx) -> RoundStatus {
        self.gear.round_status(ctx)
    }

    fn next_action(&self, ctx: &ProcCtx) -> GearAction {
        self.gear.next_action(ctx)
    }

    fn shift_gear(&mut self, ctx: &mut ProcCtx) {
        self.gear.shift_gear(ctx)
    }

    fn reset(&mut self, id: ProcessId, config: &RunConfig) -> bool {
        self.gear.reset(id, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sim::ValueDomain;

    fn params(n: usize, t: usize) -> Params {
        Params {
            n,
            t,
            source: ProcessId(0),
            domain: ValueDomain::binary(),
        }
    }

    #[test]
    fn block_count_covers_the_ledger() {
        // t = 5, b = 3: capacity 1 per block, 4 blocks to detect t−1 = 4
        // beyond the source's +1.
        assert_eq!(dynamic_king_blocks(5, 3), 4);
        assert_eq!(dynamic_king_blocks(5, 4), 2);
        assert_eq!(dynamic_king_blocks(5, 5), 2);
        // Degenerate small t: one block, KingShift's shape.
        assert_eq!(dynamic_king_blocks(1, 3), 1);
        assert_eq!(dynamic_king_blocks(2, 3), 1);
        assert_eq!(dynamic_king_rounds(5, 3), 1 + 4 * 3 + 18);
        assert_eq!(dynamic_king_rounds(1, 3), 1 + 1 + 6);
    }

    #[test]
    fn checkpoints_sit_at_interior_block_boundaries() {
        let p = DynamicKing::new(params(16, 5), ProcessId(1), None, 3);
        let rounds: Vec<usize> = p.gear().checkpoints().iter().map(|c| c.round).collect();
        assert_eq!(rounds, vec![4, 7, 10]);
        assert!(p.gear().checkpoints().iter().all(|c| c.capacity == 1));
        assert_eq!(p.total_rounds(), 31);
        assert_eq!(p.gear().prefix_rounds(), 13);
    }

    #[test]
    fn static_box_has_no_votes() {
        let g = GearedProtocol::new(
            params(10, 3),
            ProcessId(1),
            None,
            "test".to_string(),
            true,
            vec![
                RoundAction::Initial,
                RoundAction::Gather { convert: None },
                RoundAction::Gather { convert: None },
                RoundAction::Gather {
                    convert: Some(ConvertSpec {
                        conversion: Conversion::ResolvePrime { t: 3 },
                        discovery: true,
                    }),
                },
            ],
        );
        let gear = GearBox::new(
            None,
            g,
            Some(KingCore::new(params(10, 3), ProcessId(1))),
            GearPlan {
                static_tail: true,
                phases: 4,
                tail_label: "resolve' -> phase-king",
                checkpoints: Vec::new(),
                t: 3,
            },
        );
        let mut ctx = ProcCtx::new(ProcessId(1));
        ctx.round = 2;
        assert_eq!(gear.next_action(&ctx), GearAction::Round);
        ctx.round = gear.worst_case_rounds();
        assert_eq!(gear.next_action(&ctx), GearAction::Finished);
        assert_eq!(gear.worst_case_rounds(), 4 + 12);
    }

    #[test]
    #[should_panic(expected = "require a king core")]
    fn tail_without_core_rejected() {
        let g = GearedProtocol::new(
            params(10, 3),
            ProcessId(1),
            None,
            "test".to_string(),
            true,
            vec![RoundAction::Initial],
        );
        let _ = GearBox::new(
            None,
            g,
            None,
            GearPlan {
                static_tail: true,
                phases: 4,
                tail_label: "x",
                checkpoints: Vec::new(),
                t: 3,
            },
        );
    }
}
