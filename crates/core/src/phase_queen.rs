//! Phase Queen baseline (Berman & Garay).
//!
//! The companion of [`crate::phase_king`] from the same line of work the
//! paper's §5 surveys. Phase Queen also runs `t+1` two-round phases after
//! the source round, but replaces the plurality-with-proof rule by a pure
//! *threshold* rule on binary values: keep your value only if more than
//! `n/2 + t` processors reported it, otherwise adopt the phase queen's.
//! Resilience `n > 4t`, messages of one value.
//!
//! Including both variants lets the benchmark suite compare two
//! constant-message-size designs against the paper's tree-based
//! algorithms. The queen protocol is binary-valued by construction; the
//! [`crate::multivalued`] reduction lifts it to larger domains.

use sg_sim::{
    Inbox, Payload, ProcCtx, ProcessId, Protocol, RoundStatus, RunConfig, TraceEvent, Value,
};

use crate::params::Params;

/// One processor's Phase Queen instance (binary domain).
pub struct PhaseQueen {
    params: Params,
    me: ProcessId,
    input: Option<Value>,
    current: Value,
    /// Count of `1` reports in the current phase's first round.
    ones: usize,
    /// Whether the last completed phase crossed the super-threshold
    /// (`2·count > n + 2t` for either bit), overriding the queen. If
    /// every correct processor crosses it in the same phase they cross
    /// it for the same bit (each implies more than `n/2` *correct*
    /// holders), so correct unanimity holds and, at `n > 4t`, persists
    /// through every later phase: the decision is final.
    stable: bool,
}

impl PhaseQueen {
    /// Builds an instance for processor `me`. `input` must be `Some`
    /// exactly when `me` is the source.
    ///
    /// # Panics
    ///
    /// Panics if the input/source relationship is violated or the domain
    /// is not binary (lift with [`crate::multivalued`] instead).
    pub fn new(params: Params, me: ProcessId, input: Option<Value>) -> Self {
        assert_eq!(
            input.is_some(),
            me == params.source,
            "exactly the source carries an input"
        );
        assert_eq!(
            params.domain.size(),
            2,
            "Phase Queen is binary; lift with the multivalued reduction"
        );
        PhaseQueen {
            params,
            me,
            input,
            current: Value::DEFAULT,
            ones: 0,
            stable: false,
        }
    }

    /// The queen of phase `k` (0-based): the `k`-th processor id skipping
    /// the source.
    fn queen(&self, phase: usize) -> ProcessId {
        let mut idx = 0usize;
        let mut remaining = phase;
        loop {
            if ProcessId(idx) != self.params.source {
                if remaining == 0 {
                    return ProcessId(idx);
                }
                remaining -= 1;
            }
            idx += 1;
        }
    }
}

impl Protocol for PhaseQueen {
    fn total_rounds(&self) -> usize {
        1 + 2 * (self.params.t + 1)
    }

    fn outgoing(&mut self, ctx: &mut ProcCtx) -> Option<Payload> {
        let round = ctx.round;
        if round == 1 {
            return self.input.map(Payload::single);
        }
        if round.is_multiple_of(2) {
            // Exchange round.
            Some(Payload::single(self.current))
        } else {
            // Queen round: only the queen speaks, sending the majority
            // bit of her exchange tally. (Sending a stale value instead
            // breaks consistency: a processor that keeps its value by the
            // threshold rule needs the queen's broadcast to agree with
            // the super-majority it saw.)
            let phase = (round - 3) / 2;
            let majority = Value(u16::from(2 * self.ones > self.params.n));
            (self.queen(phase) == self.me).then(|| Payload::single(majority))
        }
    }

    fn deliver(&mut self, inbox: &Inbox, ctx: &mut ProcCtx) {
        let n = self.params.n;
        let t = self.params.t;
        let domain = self.params.domain;
        let round = ctx.round;
        if round == 1 {
            self.current = match self.input {
                Some(v) => v,
                None => domain.sanitize(
                    inbox
                        .from(self.params.source)
                        .value_at(0)
                        .unwrap_or(Value::DEFAULT),
                ),
            };
            ctx.charge(1);
            ctx.emit(TraceEvent::Preferred {
                value: self.current,
            });
            return;
        }
        if round.is_multiple_of(2) {
            // Tally ones (own value included).
            if let Some(mut ballots) = inbox.ballots() {
                // Binary popcount fast path (the queen domain is always
                // binary): anything unreadable sanitizes to the default
                // and never counts as a one.
                ballots.clear(self.me);
                ballots.record(self.me, self.current);
                ctx.charge(n as u64);
                self.ones = ballots.ones.count_ones() as usize;
            } else {
                self.ones = 0;
                for i in 0..n {
                    let v = if ProcessId(i) == self.me {
                        self.current
                    } else {
                        domain.sanitize(
                            inbox
                                .from(ProcessId(i))
                                .value_at(0)
                                .unwrap_or(Value::DEFAULT),
                        )
                    };
                    if v == Value(1) {
                        self.ones += 1;
                    }
                    ctx.charge(1);
                }
            }
        } else {
            let phase = (round - 3) / 2;
            let queen = self.queen(phase);
            let queen_value = if queen == self.me {
                Value(u16::from(2 * self.ones > n))
            } else {
                domain.sanitize(inbox.from(queen).value_at(0).unwrap_or(Value::DEFAULT))
            };
            // Threshold rule: a super-majority for either bit overrides
            // the queen; otherwise her value wins the phase. Exact
            // integer arithmetic (2·count > n + 2t) avoids floor issues.
            self.current = if 2 * self.ones > n + 2 * t {
                Value(1)
            } else if 2 * (n - self.ones) > n + 2 * t {
                Value(0)
            } else {
                queen_value
            };
            self.stable = 2 * self.ones > n + 2 * t || 2 * (n - self.ones) > n + 2 * t;
            ctx.charge(1);
            ctx.emit(TraceEvent::Preferred {
                value: self.current,
            });
        }
    }

    fn decide(&mut self, ctx: &mut ProcCtx) -> Value {
        let value = match self.input {
            Some(v) => v,
            None => self.current,
        };
        ctx.emit(TraceEvent::Decided { value });
        value
    }

    /// Ready once the latest phase crossed the super-threshold (see the
    /// `stable` field's invariant); the source is always ready — it
    /// decides its own input.
    fn round_status(&self, _ctx: &ProcCtx) -> RoundStatus {
        if self.input.is_some() || self.stable {
            RoundStatus::ReadyToDecide
        } else {
            RoundStatus::Continue
        }
    }

    fn reset(&mut self, id: ProcessId, config: &RunConfig) -> bool {
        if config.domain.size() != 2 {
            // Phase Queen is binary-only; let the factory surface the
            // constructor's domain assertion instead of resetting.
            return false;
        }
        self.params = Params::from_config(config);
        self.me = id;
        self.input = (id == config.source).then_some(config.source_value);
        self.current = Value::DEFAULT;
        self.ones = 0;
        self.stable = false;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sim::ValueDomain;

    fn params(n: usize, t: usize) -> Params {
        Params {
            n,
            t,
            source: ProcessId(0),
            domain: ValueDomain::binary(),
        }
    }

    #[test]
    fn round_count_matches_phase_king() {
        let q = PhaseQueen::new(params(9, 2), ProcessId(1), None);
        assert_eq!(q.total_rounds(), 7);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_domain_rejected() {
        let p = Params {
            domain: ValueDomain::new(3),
            ..params(9, 2)
        };
        let _ = PhaseQueen::new(p, ProcessId(1), None);
    }

    #[test]
    fn threshold_overrides_queen() {
        let mut q = PhaseQueen::new(params(5, 1), ProcessId(2), None);
        q.current = Value(1);
        let mut ctx = ProcCtx::new(ProcessId(2));
        // Exchange: everyone says 1 -> ones = 5 > n/2 + t = 3.
        ctx.round = 2;
        let mut inbox = Inbox::empty(5);
        for i in 0..5 {
            if i != 2 {
                inbox.set(ProcessId(i), Payload::values([Value(1)]));
            }
        }
        q.deliver(&inbox, &mut ctx);
        ctx.round = 3;
        let mut inbox = Inbox::empty(5);
        inbox.set(q.queen(0), Payload::values([Value(0)]));
        q.deliver(&inbox, &mut ctx);
        // ones = 5 > (n + 2t)/2 = 3.5: threshold overrides the queen.
        assert_eq!(q.current, Value(1));
    }

    #[test]
    fn queen_decides_close_splits() {
        let mut q = PhaseQueen::new(params(5, 1), ProcessId(2), None);
        q.current = Value(1);
        let mut ctx = ProcCtx::new(ProcessId(2));
        ctx.round = 2;
        let mut inbox = Inbox::empty(5);
        inbox.set(ProcessId(0), Payload::values([Value(0)]));
        inbox.set(ProcessId(1), Payload::values([Value(0)]));
        inbox.set(ProcessId(3), Payload::values([Value(1)]));
        inbox.set(ProcessId(4), Payload::values([Value(0)]));
        q.deliver(&inbox, &mut ctx);
        // ones = 2, zeros = 3: neither beats n/2 + t = 3 strictly.
        ctx.round = 3;
        let mut inbox = Inbox::empty(5);
        inbox.set(q.queen(0), Payload::values([Value(1)]));
        q.deliver(&inbox, &mut ctx);
        assert_eq!(q.current, Value(1));
    }
}
