//! Protocol parameters and the resilience bounds of the paper's three
//! algorithm families.

use sg_sim::{ProcessId, RunConfig, ValueDomain};

/// Static parameters shared by every processor running a protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Params {
    /// System size.
    pub n: usize,
    /// Fault bound the instance is built for (used by discovery
    /// thresholds and `resolve'`).
    pub t: usize,
    /// The distinguished source.
    pub source: ProcessId,
    /// The agreement value domain.
    pub domain: ValueDomain,
}

impl Params {
    /// Extracts protocol parameters from an engine configuration.
    pub fn from_config(config: &RunConfig) -> Self {
        Params {
            n: config.n,
            t: config.t,
            source: config.source,
            domain: config.domain,
        }
    }
}

/// Algorithm A's (and the Exponential Algorithm's and the hybrid's)
/// resilience: `t_A = ⌊(n−1)/3⌋` (paper §4).
pub fn t_a(n: usize) -> usize {
    (n.saturating_sub(1)) / 3
}

/// Algorithm B's resilience: `t_B = ⌊(n−1)/4⌋` (paper §4.1).
pub fn t_b(n: usize) -> usize {
    (n.saturating_sub(1)) / 4
}

/// Algorithm C's resilience — the largest `t` satisfying both proof
/// obligations of Proposition 4:
///
/// * `n − 2t > n/2` (the round-2 branch, with `|L_p| = 0`), i.e. `4t < n`;
/// * `n − t − (t−1)² > n/2` (the later-round branch, with `|L_p| ≥ 1`),
///   i.e. `2(t−1)² < n − 2t`.
///
/// Asymptotically this is the paper's `√(n/2)`; for small `n` the `4t < n`
/// constraint binds.
pub fn t_c(n: usize) -> usize {
    let mut best = 0usize;
    for t in 1..n {
        let fits_quarter = 4 * t < n;
        let lhs = 2 * (t - 1) * (t - 1);
        let fits_sqrt = n > 2 * t && lhs < n - 2 * t;
        if fits_quarter && fits_sqrt {
            best = t;
        } else if !fits_quarter {
            break;
        }
    }
    best
}

/// Integer square root (floor).
pub fn isqrt(x: usize) -> usize {
    if x < 2 {
        return x;
    }
    let mut r = (x as f64).sqrt() as usize;
    while (r + 1) * (r + 1) <= x {
        r += 1;
    }
    while r * r > x {
        r -= 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_resiliences() {
        assert_eq!(t_a(4), 1);
        assert_eq!(t_a(16), 5);
        assert_eq!(t_a(31), 10);
        assert_eq!(t_b(5), 1);
        assert_eq!(t_b(21), 5);
        assert_eq!(t_b(41), 10);
    }

    #[test]
    fn t_c_matches_sqrt_half_n_for_large_n() {
        for &(n, want) in &[(18, 3), (32, 4), (50, 5), (72, 6), (98, 7)] {
            assert_eq!(t_c(n), want, "n={n}");
            assert_eq!(isqrt(n / 2), want, "sqrt check n={n}");
        }
    }

    #[test]
    fn t_c_small_n_bound_by_quarter() {
        assert_eq!(t_c(4), 0);
        assert_eq!(t_c(5), 1);
        assert_eq!(t_c(8), 1);
        assert_eq!(t_c(9), 2);
    }

    #[test]
    fn t_c_satisfies_proof_inequalities() {
        for n in 5..200 {
            let t = t_c(n);
            if t == 0 {
                continue;
            }
            assert!(4 * t < n, "n={n} t={t}");
            assert!(2 * (t - 1) * (t - 1) < n - 2 * t, "n={n} t={t}");
        }
    }

    #[test]
    fn isqrt_exact() {
        for x in 0..1000usize {
            let r = isqrt(x);
            assert!(r * r <= x && (r + 1) * (r + 1) > x, "x={x} r={r}");
        }
    }
}
