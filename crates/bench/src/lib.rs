//! # sg-bench — benchmark harness
//!
//! Two entry points:
//!
//! * `cargo run --release -p sg-bench --bin repro [-- --exp <id>]` —
//!   regenerates every table and figure of the paper as
//!   paper-predicted-vs-measured tables (the source of EXPERIMENTS.md);
//! * `cargo bench -p sg-bench` — Criterion wall-clock benchmarks, one
//!   group per theorem (exponential, algorithm-a, algorithm-b,
//!   algorithm-c, hybrid, baselines).
//!
//! This crate re-exports small helpers shared by both.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use sg_adversary::{ChainRevealer, FaultSelection};
use sg_core::AlgorithmSpec;
use sg_sim::{Outcome, RunConfig, Value};

/// Runs one execution of `spec` under the standard stress adversary —
/// the workload every wall-clock benchmark times.
///
/// # Panics
///
/// Panics if the parameters are invalid for `spec` or the execution
/// violates agreement/validity.
pub fn stress_run(spec: AlgorithmSpec, n: usize, t: usize, seed: u64) -> Outcome {
    let config = RunConfig::new(n, t).with_source_value(Value(1));
    let mut adversary = ChainRevealer::new(FaultSelection::without_source(), 2, 2, seed);
    let outcome = sg_core::execute(spec, &config, &mut adversary)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
    outcome.assert_correct();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_run_produces_correct_outcome() {
        let outcome = stress_run(AlgorithmSpec::Exponential, 7, 2, 5);
        assert!(outcome.agreement());
        assert_eq!(outcome.rounds_used, 3);
    }
}
