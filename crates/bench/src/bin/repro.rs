//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro                 # all experiments, full scale, text tables
//! repro --quick         # all experiments, small parameters
//! repro --markdown      # emit GitHub-flavoured markdown (EXPERIMENTS.md)
//! repro --csv           # emit CSV (one block per experiment)
//! repro --jobs 8        # size the sweep engine's worker pool
//! repro --exp t3        # one experiment: p1|t1|t2|t3|t4|tradeoff|dominance|detect|
//!                       #   stability|early-stopping|king|compose|plans|sweep
//! repro --exp sweep     # the benchmark sweep: phase-king n=16 t=5 Monte-Carlo,
//!                       # timed, machine-readable trajectory in BENCH_sweep.json
//! ```

use std::env;
use std::time::Instant;

use sg_adversary::FaultSelection;
use sg_analysis::experiments::{
    experiment_compositions, experiment_detect, experiment_dominance, experiment_early_stopping,
    experiment_king, experiment_p1, experiment_stability, experiment_t1, experiment_t2,
    experiment_t3, experiment_t4, experiment_tradeoff, plan_figures, Scale,
};
use sg_analysis::{AdversaryFamily, SweepConfig, SweepPlan, SweepReport, Table};
use sg_core::AlgorithmSpec;

/// Peak resident-set proxy: `VmHWM` from `/proc/self/status`, in kB
/// (0 where unavailable — the field is Linux-specific).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches(" kB")
                    .trim()
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

/// Order-sensitive FNV-1a fingerprint of every sample in the report, so
/// bit-identity across `--jobs` settings can be checked from the JSON
/// alone.
fn report_fingerprint(report: &SweepReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for cell in &report.cells {
        for s in &cell.samples {
            mix(s.lock_in);
            mix(s.discoveries);
            mix(s.total_bits);
            mix(s.max_local_ops);
        }
    }
    h
}

/// The benchmark sweep behind `--exp sweep` and `BENCH_sweep.json`: the
/// phase-king n=16, t=5 Monte-Carlo grid under seeded random liars.
fn experiment_sweep(scale: Scale, jobs: usize) {
    let (n, t) = (16, 5);
    let seeds: u64 = match scale {
        Scale::Quick => 100,
        Scale::Full => 1_000,
    };
    let plan = SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, n, t)],
        vec![AdversaryFamily::random_liar(
            FaultSelection::without_source(),
        )],
        seeds,
    );
    let started = Instant::now();
    let report = plan.run_with_jobs(jobs);
    let wall = started.elapsed();
    let runs_per_sec = report.total_runs as f64 / wall.as_secs_f64().max(1e-9);

    print!("{}", report.render());
    println!(
        "BENCH-SWEEP — optimal-king n={n} t={t}: {} runs in {:.1} ms on {jobs} worker(s) — {:.0} runs/sec",
        report.total_runs,
        wall.as_secs_f64() * 1e3,
        runs_per_sec,
    );

    let json = format!(
        "{{\n  \"schema\": \"sg-bench-sweep/1\",\n  \"experiment\": \"phase-king-montecarlo\",\n  \
         \"spec\": \"optimal-king\",\n  \"n\": {n},\n  \"t\": {t},\n  \
         \"adversary\": \"random-liar\",\n  \"runs\": {},\n  \"jobs\": {jobs},\n  \
         \"wall_ms\": {:.3},\n  \"runs_per_sec\": {:.3},\n  \"peak_rss_kb\": {},\n  \
         \"report_fingerprint\": \"{:016x}\"\n}}\n",
        report.total_runs,
        wall.as_secs_f64() * 1e3,
        runs_per_sec,
        peak_rss_kb(),
        report_fingerprint(&report),
    );
    match std::fs::write("BENCH_sweep.json", &json) {
        Ok(()) => println!("wrote BENCH_sweep.json"),
        Err(e) => eprintln!("cannot write BENCH_sweep.json: {e}"),
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let csv = args.iter().any(|a| a == "--csv");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let jobs: usize = match args.iter().position(|a| a == "--jobs") {
        Some(i) => {
            let Some(v) = args.get(i + 1) else {
                eprintln!("--jobs expects a number");
                std::process::exit(2);
            };
            v.parse().unwrap_or_else(|_| {
                eprintln!("--jobs expects a number, got '{v}'");
                std::process::exit(2);
            })
        }
        None => 0,
    };
    sg_analysis::set_jobs(jobs);
    let effective_jobs = sg_analysis::sweep::jobs();
    let which: Option<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1).cloned());

    let print = |table: Table| {
        if csv {
            println!("# {}", table.title);
            println!("{}", table.to_csv());
        } else if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    };

    let run_one = |id: &str| match id {
        "p1" => print(experiment_p1(scale)),
        "t2" => print(experiment_t2(scale)),
        "t3" => print(experiment_t3(scale)),
        "t4" => print(experiment_t4(scale)),
        "t1" => print(experiment_t1(scale)),
        "tradeoff" => print(experiment_tradeoff(scale)),
        "dominance" => print(experiment_dominance(scale)),
        "detect" => print(experiment_detect(scale)),
        "stability" => print(experiment_stability(scale)),
        "early-stopping" => print(experiment_early_stopping(scale)),
        "king" => print(experiment_king(scale)),
        "compose" => print(experiment_compositions(scale)),
        "sweep" => experiment_sweep(scale, effective_jobs),
        "plans" => {
            if markdown {
                println!("### EXP-F2/F3 — executable round plans (Figures 2 and 3)\n");
                println!("```text\n{}```\n", plan_figures());
            } else {
                println!("{}", plan_figures());
            }
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "known: p1 t1 t2 t3 t4 tradeoff dominance detect stability \
                 early-stopping king compose plans sweep"
            );
            std::process::exit(2);
        }
    };

    match which {
        Some(id) => run_one(&id),
        None => {
            for id in [
                "p1",
                "t2",
                "t3",
                "t4",
                "t1",
                "tradeoff",
                "dominance",
                "detect",
                "stability",
                "early-stopping",
                "king",
                "compose",
                "plans",
            ] {
                run_one(id);
            }
        }
    }
}
