//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro                    # all experiments, full scale, text tables
//! repro --quick            # all experiments, small parameters
//! repro --markdown         # emit GitHub-flavoured markdown (EXPERIMENTS.md)
//! repro --csv              # emit CSV (one block per experiment)
//! repro --jobs 8           # size the sweep engine's worker pool
//! repro --no-instance-pool # rebuild protocol instances every run (the
//!                          # escape hatch CI cross-checks fingerprints with)
//! repro --no-early-stop    # run every execution for its full static
//!                          # schedule (fixed-length mode; its sweep must
//!                          # reproduce BENCH_sweep_fixed.json's
//!                          # fingerprint)
//! repro --no-batch         # disable the lock-step batch executor (64
//!                          # runs per instruction) — the scalar path
//!                          # must reproduce the same fingerprints
//! repro --no-batch-adversary
//!                          # keep the batch executor but drive each
//!                          # fault lane through the scalar adversary
//!                          # bridge instead of the vectorized families
//! repro --exp t3           # one experiment: p1|t1|t2|t3|t4|tradeoff|dominance|
//!                          #   detect|stability|early-stopping|king|compose|
//!                          #   rounds-vs-f|plans|sweep
//! repro --exp rounds-vs-f  # the static-vs-dynamic gear table across the
//!                          # actual-fault budget; writes the committed
//!                          # BENCH_rounds_vs_f.md artifact
//! repro --exp sweep        # the benchmark sweep: phase-king n=16 t=5
//!                          # Monte-Carlo, timed, machine-readable trajectory
//!                          # in BENCH_sweep.json (schema sg-bench-sweep/6,
//!                          # including the cold→warm journal delta)
//! repro --exp sweep --via-server
//!                          # same grid, but submitted to an in-process
//!                          # sg-serve daemon over localhost TCP — the
//!                          # fingerprint must match the batch path
//! repro --exp sweep --expect-fingerprint <hex>
//!                          # exit non-zero unless the sweep reproduces
//!                          # the given report fingerprint
//! repro --exp serve-load [--chaos]
//!                          # the serving-path load benchmark: concurrent
//!                          # connections (half through a fault-injecting
//!                          # proxy with --chaos) hammering one daemon;
//!                          # writes BENCH_serve.json (sg-serve-load/1)
//!                          # and exits non-zero on any fingerprint
//!                          # mismatch
//! ```

use std::env;
use std::time::Instant;

use sg_adversary::FaultSelection;
use sg_analysis::experiments::{
    experiment_compositions, experiment_detect, experiment_dominance, experiment_early_stopping,
    experiment_king, experiment_p1, experiment_rounds_vs_f, experiment_stability, experiment_t1,
    experiment_t2, experiment_t3, experiment_t4, experiment_tradeoff, plan_figures, Scale,
};
use sg_analysis::{AdversaryFamily, SweepConfig, SweepPlan, SweepReport, Table};
use sg_core::AlgorithmSpec;

/// Counting global allocator behind `--features count-allocs`: the
/// `allocs_per_run` field of BENCH_sweep.json is the measured per-run
/// allocation count of a steady-state sequential sweep pass, `null`
/// without the feature.
#[cfg(feature = "count-allocs")]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// The system allocator with an allocation counter bolted on
    /// (reallocations count as one allocation; frees are not counted).
    pub struct CountingAllocator;

    // SAFETY: delegates every operation verbatim to `System`; the only
    // addition is a relaxed counter increment on the allocating paths.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static COUNTING: CountingAllocator = CountingAllocator;

    /// Allocations performed so far by this process.
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Peak resident-set proxy in kB: `VmHWM` from `/proc/self/status` where
/// available (Linux), otherwise `getrusage(RUSAGE_SELF).ru_maxrss` via
/// the libc shim below, otherwise 0.
fn peak_rss_kb() -> u64 {
    let vm_hwm = std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches(" kB")
                    .trim()
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0);
    if vm_hwm > 0 {
        vm_hwm
    } else {
        rusage_max_rss_kb()
    }
}

/// `getrusage`-based max-RSS fallback for Unix systems without
/// `/proc/self/status` (macOS, BSDs). Returns 0 off Unix or on error.
#[cfg(unix)]
fn rusage_max_rss_kb() -> u64 {
    // struct rusage: two timevals (4 longs) then ru_maxrss and 13 more
    // longs; glibc pads to 18 longs total. A generous zeroed buffer
    // keeps this safe across libc layouts that append fields.
    const RUSAGE_LONGS: usize = 36;
    const RU_MAXRSS_INDEX: usize = 4;
    const RUSAGE_SELF: i32 = 0;
    extern "C" {
        fn getrusage(who: i32, usage: *mut i64) -> i32;
    }
    let mut usage = [0i64; RUSAGE_LONGS];
    // SAFETY: RUSAGE_SELF with a buffer at least as large as any libc's
    // struct rusage; getrusage only writes within the struct.
    let rc = unsafe { getrusage(RUSAGE_SELF, usage.as_mut_ptr()) };
    if rc != 0 {
        return 0;
    }
    let max_rss = usage[RU_MAXRSS_INDEX].max(0) as u64;
    // Linux reports kilobytes; macOS reports bytes.
    if cfg!(target_os = "macos") {
        max_rss / 1024
    } else {
        max_rss
    }
}

#[cfg(not(unix))]
fn rusage_max_rss_kb() -> u64 {
    0
}

/// How `--exp sweep` executes the benchmark grid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Transport {
    /// `SweepPlan::run` in this process (the default).
    Batch,
    /// Submitted to an in-process `sg-serve` daemon over localhost TCP
    /// and reassembled from the streamed cell frames (`--via-server`) —
    /// exercising the full service path: wire encoding, scheduling,
    /// streaming, fingerprinting.
    Server,
}

impl Transport {
    fn as_str(self) -> &'static str {
        match self {
            Transport::Batch => "batch",
            Transport::Server => "server",
        }
    }
}

/// Runs `plan` through an ephemeral in-process daemon and returns the
/// reassembled report (bit-identical to the batch path by the serving
/// layer's determinism contract).
fn run_via_server(plan: &SweepPlan, jobs: usize) -> SweepReport {
    let handle = sg_serve::serve(
        &sg_serve::Bind::Tcp("127.0.0.1:0".to_string()),
        sg_serve::ServeOptions {
            workers: jobs,
            ..Default::default()
        },
    )
    .expect("bind in-process sg-serve daemon");
    let addr = handle.tcp_addr().expect("tcp addr").to_string();
    let mut client = sg_serve::Client::connect(&addr, std::time::Duration::from_secs(10))
        .expect("connect to in-process daemon");
    let streamed = client
        .submit_and_collect(plan)
        .unwrap_or_else(|e| panic!("server-path sweep failed: {e}"));
    handle.shutdown();
    streamed.report
}

/// Per-run allocation count of a steady-state sequential pass over
/// `plan` (the timed pass above already warmed every pool), as a JSON
/// value: a number with `--features count-allocs`, `null` without.
#[cfg(feature = "count-allocs")]
fn allocs_per_run_json(plan: &SweepPlan) -> String {
    let before = alloc_count::allocations();
    let report = plan.run_with_jobs(1);
    let delta = alloc_count::allocations() - before;
    format!("{:.1}", delta as f64 / report.total_runs as f64)
}

#[cfg(not(feature = "count-allocs"))]
fn allocs_per_run_json(_plan: &SweepPlan) -> String {
    "null".to_string()
}

/// The serving-path load benchmark behind `--exp serve-load` and
/// `BENCH_serve.json`: concurrent connections driving the mixed-plan
/// hammer ([`sg_serve::run_load`]) against one in-process daemon,
/// optionally with every other connection routed through the
/// fault-injecting chaos proxy (`--chaos`). Every job that completes
/// must reproduce its plan's batch-path fingerprint; any mismatch is a
/// non-zero exit, which is the CI gate.
fn experiment_serve_load(scale: Scale, jobs: usize, chaos: bool) {
    let seeds_per_cell: u64 = match scale {
        Scale::Quick => 24,
        Scale::Full => 96,
    };
    let report = sg_serve::run_load(&sg_serve::LoadOptions {
        connections: 6,
        jobs_per_connection: 4,
        seeds_per_cell,
        workers: if jobs == 0 { 2 } else { jobs },
        chaos: if chaos {
            Some(sg_serve::ChaosSpec::gentle(11))
        } else {
            None
        },
        ..sg_serve::LoadOptions::default()
    });

    println!(
        "BENCH-SERVE — {} of {} jobs completed across {} connection(s){}: \
         {:.0} runs/sec, frame latency p50 {:.3} ms / p99 {:.3} ms \
         (rejected {}, deadline {}, faulted {})",
        report.jobs_completed,
        report.jobs_submitted,
        report.connections,
        if chaos { " with chaos proxy" } else { "" },
        report.runs_per_sec,
        report.frame_latency_p50_ms,
        report.frame_latency_p99_ms,
        report.jobs_rejected,
        report.jobs_deadline,
        report.jobs_faulted,
    );
    let json = report.to_json_string();
    print!("{json}");
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("cannot write BENCH_serve.json: {e}"),
    }
    if report.fingerprint_mismatches > 0 {
        eprintln!(
            "FINGERPRINT MISMATCH: {} completed job(s) diverged from the batch path",
            report.fingerprint_mismatches
        );
        std::process::exit(1);
    }
    if report.jobs_completed == 0 {
        eprintln!("no job completed — the load harness proved nothing");
        std::process::exit(1);
    }
}

/// The benchmark sweep behind `--exp sweep` and `BENCH_sweep.json`: the
/// phase-king n=16, t=5 Monte-Carlo grid under seeded random liars,
/// executed in-process or through the service path (`--via-server`).
fn experiment_sweep(scale: Scale, jobs: usize, transport: Transport, expect: Option<u64>) {
    let (n, t) = (16, 5);
    let seeds: u64 = match scale {
        Scale::Quick => 100,
        Scale::Full => 1_000,
    };
    let plan = SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, n, t)],
        vec![AdversaryFamily::random_liar(
            FaultSelection::without_source(),
        )],
        seeds,
    );
    let started = Instant::now();
    let report = match transport {
        Transport::Batch => plan.run_with_jobs(jobs),
        Transport::Server => run_via_server(&plan, jobs),
    };
    let wall = started.elapsed();
    let runs_per_sec = report.total_runs as f64 / wall.as_secs_f64().max(1e-9);
    let fingerprint = report.fingerprint();

    print!("{}", report.render());
    println!(
        "BENCH-SWEEP — optimal-king n={n} t={t} via {}: {} runs in {:.1} ms on {jobs} worker(s) — {:.0} runs/sec",
        transport.as_str(),
        report.total_runs,
        wall.as_secs_f64() * 1e3,
        runs_per_sec,
    );

    // The cold→warm journal delta: a scratch journal is populated by one
    // write-through pass (which must reproduce the cold fingerprint),
    // then the identical grid is answered entirely from the store. The
    // warm rate is the headline number of the incremental-sweep story,
    // so it is committed alongside the cold rate.
    let scratch = env::temp_dir().join(format!("sg-bench-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let (cache_hit_cells, warm_runs_per_sec) = {
        let mut journal = sg_journal::Journal::open(&scratch).expect("scratch journal");
        let populate = plan.run_with_journal(&mut journal, jobs);
        assert_eq!(
            populate.report.fingerprint(),
            fingerprint,
            "journal populate pass diverged from the cold report"
        );
        let warm_started = Instant::now();
        let warm = plan.run_with_journal(&mut journal, jobs);
        let warm_wall = warm_started.elapsed();
        assert_eq!(
            warm.report.fingerprint(),
            fingerprint,
            "warm journal pass diverged from the cold report"
        );
        assert_eq!(
            warm.hits,
            plan.cell_count(),
            "a repeat of the same grid must hit every cell"
        );
        let rate = report.total_runs as f64 / warm_wall.as_secs_f64().max(1e-9);
        (warm.hits, rate)
    };
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "BENCH-SWEEP — journal warm pass: {cache_hit_cells} of {} cell(s) from cache — {:.0} runs/sec ({:.1}x cold)",
        plan.cell_count(),
        warm_runs_per_sec,
        warm_runs_per_sec / runs_per_sec.max(1e-9),
    );

    let instance_pool = sg_sim::instance_pooling_enabled();
    let early_stopping = sg_sim::early_stopping_enabled();
    let batch_runs = sg_sim::batch_runs_enabled();
    let allocs_per_run = allocs_per_run_json(&plan);
    // The expedite trajectory: the grid is a single cell, whose report
    // already carries the rounds summary and early-stop rate.
    let cell = &report.cells[0];
    let mean_rounds = cell.summaries[4].mean;
    let early_stop_rate = cell.early_stop_rate;
    println!(
        "BENCH-SWEEP — early_stopping {} — mean rounds {:.2} of {} scheduled, early-stop rate {:.0}%",
        if early_stopping { "on" } else { "off" },
        mean_rounds,
        AlgorithmSpec::OptimalKing.rounds(n, t),
        early_stop_rate * 100.0,
    );
    let json = format!(
        "{{\n  \"schema\": \"sg-bench-sweep/6\",\n  \"experiment\": \"phase-king-montecarlo\",\n  \
         \"spec\": \"optimal-king\",\n  \"n\": {n},\n  \"t\": {t},\n  \
         \"adversary\": \"random-liar\",\n  \"runs\": {},\n  \"jobs\": {jobs},\n  \
         \"instance_pool\": {instance_pool},\n  \"early_stopping\": {early_stopping},\n  \
         \"batch_runs\": {batch_runs},\n  \
         \"transport\": \"{}\",\n  \
         \"wall_ms\": {:.3},\n  \"runs_per_sec\": {:.3},\n  \"peak_rss_kb\": {},\n  \
         \"allocs_per_run\": {allocs_per_run},\n  \
         \"journal\": \"on\",\n  \"cache_hit_cells\": {cache_hit_cells},\n  \
         \"warm_runs_per_sec\": {warm_runs_per_sec:.3},\n  \
         \"mean_rounds\": {mean_rounds:.3},\n  \"early_stop_rate\": {early_stop_rate:.3},\n  \
         \"report_fingerprint\": \"{fingerprint:016x}\"\n}}\n",
        report.total_runs,
        transport.as_str(),
        wall.as_secs_f64() * 1e3,
        runs_per_sec,
        peak_rss_kb(),
    );
    match std::fs::write("BENCH_sweep.json", &json) {
        Ok(()) => println!("wrote BENCH_sweep.json"),
        Err(e) => eprintln!("cannot write BENCH_sweep.json: {e}"),
    }

    if let Some(expected) = expect {
        match sg_analysis::Fingerprint::cross_check(expected, fingerprint) {
            Ok(line) => println!("{line}"),
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let csv = args.iter().any(|a| a == "--csv");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let jobs: usize = match args.iter().position(|a| a == "--jobs") {
        Some(i) => {
            let Some(v) = args.get(i + 1) else {
                eprintln!("--jobs expects a number");
                std::process::exit(2);
            };
            v.parse().unwrap_or_else(|_| {
                eprintln!("--jobs expects a number, got '{v}'");
                std::process::exit(2);
            })
        }
        None => 0,
    };
    if args.iter().any(|a| a == "--no-instance-pool") {
        sg_sim::set_instance_pooling(false);
    }
    if args.iter().any(|a| a == "--no-early-stop") {
        sg_sim::set_early_stopping(false);
    }
    if args.iter().any(|a| a == "--no-batch") {
        sg_sim::set_batch_runs(false);
    }
    if args.iter().any(|a| a == "--no-batch-adversary") {
        sg_sim::set_batch_adversaries(false);
    }
    let transport = if args.iter().any(|a| a == "--via-server") {
        Transport::Server
    } else {
        Transport::Batch
    };
    let chaos = args.iter().any(|a| a == "--chaos");
    let expect: Option<u64> = args
        .iter()
        .position(|a| a == "--expect-fingerprint")
        .map(|i| {
            let Some(v) = args.get(i + 1) else {
                eprintln!("--expect-fingerprint expects a 16-digit hex fingerprint");
                std::process::exit(2);
            };
            sg_analysis::Fingerprint::parse_hex(v).unwrap_or_else(|| {
                eprintln!("--expect-fingerprint expects a 16-digit hex fingerprint, got '{v}'");
                std::process::exit(2);
            })
        });
    sg_analysis::set_jobs(jobs);
    let effective_jobs = sg_analysis::sweep::jobs();
    let which: Option<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1).cloned());

    let print = |table: Table| {
        if csv {
            println!("# {}", table.title);
            println!("{}", table.to_csv());
        } else if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    };

    let run_one = |id: &str| match id {
        "p1" => print(experiment_p1(scale)),
        "t2" => print(experiment_t2(scale)),
        "t3" => print(experiment_t3(scale)),
        "t4" => print(experiment_t4(scale)),
        "t1" => print(experiment_t1(scale)),
        "tradeoff" => print(experiment_tradeoff(scale)),
        "dominance" => print(experiment_dominance(scale)),
        "detect" => print(experiment_detect(scale)),
        "stability" => print(experiment_stability(scale)),
        "early-stopping" => print(experiment_early_stopping(scale)),
        "king" => print(experiment_king(scale)),
        "compose" => print(experiment_compositions(scale)),
        "rounds-vs-f" => {
            // The committed rounds-vs-f artifact: static vs dynamic gear
            // plans across the actual-fault budget, CI-uploaded alongside
            // the sweep trajectory files.
            let table = experiment_rounds_vs_f(scale);
            match std::fs::write("BENCH_rounds_vs_f.md", table.to_markdown()) {
                Ok(()) => println!("wrote BENCH_rounds_vs_f.md"),
                Err(e) => eprintln!("cannot write BENCH_rounds_vs_f.md: {e}"),
            }
            print(table);
        }
        "sweep" => experiment_sweep(scale, effective_jobs, transport, expect),
        "serve-load" => experiment_serve_load(scale, jobs, chaos),
        "plans" => {
            if markdown {
                println!("### EXP-F2/F3 — executable round plans (Figures 2 and 3)\n");
                println!("```text\n{}```\n", plan_figures());
            } else {
                println!("{}", plan_figures());
            }
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "known: p1 t1 t2 t3 t4 tradeoff dominance detect stability \
                 early-stopping king compose rounds-vs-f plans sweep serve-load"
            );
            std::process::exit(2);
        }
    };

    match which {
        Some(id) => run_one(&id),
        None => {
            for id in [
                "p1",
                "t2",
                "t3",
                "t4",
                "t1",
                "tradeoff",
                "dominance",
                "detect",
                "stability",
                "early-stopping",
                "king",
                "compose",
                "rounds-vs-f",
                "plans",
            ] {
                run_one(id);
            }
        }
    }
}
