//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro                 # all experiments, full scale, text tables
//! repro --quick         # all experiments, small parameters
//! repro --markdown      # emit GitHub-flavoured markdown (EXPERIMENTS.md)
//! repro --csv           # emit CSV (one block per experiment)
//! repro --exp t3        # one experiment: p1|t1|t2|t3|t4|tradeoff|dominance|detect|
//!                       #   stability|early-stopping|king|compose|plans
//! ```

use std::env;

use sg_analysis::experiments::{
    experiment_compositions, experiment_detect, experiment_dominance,
    experiment_early_stopping, experiment_king, experiment_p1, experiment_stability,
    experiment_t1, experiment_t2, experiment_t3, experiment_t4, experiment_tradeoff,
    plan_figures, Scale,
};
use sg_analysis::Table;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let csv = args.iter().any(|a| a == "--csv");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let which: Option<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1).cloned());

    let print = |table: Table| {
        if csv {
            println!("# {}", table.title);
            println!("{}", table.to_csv());
        } else if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    };

    let run_one = |id: &str| match id {
        "p1" => print(experiment_p1(scale)),
        "t2" => print(experiment_t2(scale)),
        "t3" => print(experiment_t3(scale)),
        "t4" => print(experiment_t4(scale)),
        "t1" => print(experiment_t1(scale)),
        "tradeoff" => print(experiment_tradeoff(scale)),
        "dominance" => print(experiment_dominance(scale)),
        "detect" => print(experiment_detect(scale)),
        "stability" => print(experiment_stability(scale)),
        "early-stopping" => print(experiment_early_stopping(scale)),
        "king" => print(experiment_king(scale)),
        "compose" => print(experiment_compositions(scale)),
        "plans" => {
            if markdown {
                println!("### EXP-F2/F3 — executable round plans (Figures 2 and 3)\n");
                println!("```text\n{}```\n", plan_figures());
            } else {
                println!("{}", plan_figures());
            }
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "known: p1 t1 t2 t3 t4 tradeoff dominance detect stability \
                 early-stopping king compose plans"
            );
            std::process::exit(2);
        }
    };

    match which {
        Some(id) => run_one(&id),
        None => {
            for id in [
                "p1", "t2", "t3", "t4", "t1", "tradeoff", "dominance", "detect", "stability",
                "early-stopping", "king", "compose", "plans",
            ] {
                run_one(id);
            }
        }
    }
}
