//! Wall-clock benchmarks for the §5/§6 extensions: the optimally
//! resilient Phase King, the A→King shift, and builder-validated shift
//! compositions, against the paper's hybrid at identical parameters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_adversary::{ChainRevealer, FaultSelection};
use sg_bench::stress_run;
use sg_core::compose::ShiftPlanBuilder;
use sg_core::{t_a, AlgorithmSpec};
use sg_sim::{RunConfig, Value};

fn bench_kings(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions_kings");
    group.sample_size(10);
    for n in [13usize, 16, 25] {
        let t = t_a(n);
        for (label, spec) in [
            ("hybrid", AlgorithmSpec::Hybrid { b: 3 }),
            ("optimal_king", AlgorithmSpec::OptimalKing),
            ("king_shift", AlgorithmSpec::KingShift { b: 3 }),
        ] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{label}_n{n}")),
                &(n, t, spec),
                |bencher, &(n, t, spec)| {
                    bencher.iter(|| stress_run(spec, n, t, 41));
                },
            );
        }
    }
    group.finish();
}

fn bench_compositions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions_compositions");
    group.sample_size(10);
    let n = 16;
    let t = t_a(n);
    let candidates = [
        (
            "paper_shape",
            ShiftPlanBuilder::new(n, t)
                .a_blocks(3, 2)
                .b_blocks(3, 1)
                .c_tail(4),
        ),
        (
            "a_to_c",
            ShiftPlanBuilder::new(n, t).a_blocks(4, 2).c_tail(2),
        ),
        (
            "a_to_king",
            ShiftPlanBuilder::new(n, t).a_blocks(3, 1).king_tail(),
        ),
    ];
    for (label, builder) in candidates {
        let composition = builder.build().expect("benchmark compositions validate");
        group.bench_function(label, |bencher| {
            bencher.iter(|| {
                let config = RunConfig::new(n, t).with_source_value(Value(1));
                let mut adversary = ChainRevealer::new(FaultSelection::without_source(), 2, 2, 43);
                let outcome = composition.execute(&config, &mut adversary);
                outcome.assert_correct();
                outcome
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kings, bench_compositions);
criterion_main!(benches);
