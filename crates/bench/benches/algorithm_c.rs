//! Wall-clock benchmark for Theorem 4: Algorithm C scales to large `n`
//! because its messages stay O(n) and its tree three levels deep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_bench::stress_run;
use sg_core::{t_c, AlgorithmSpec};

fn bench_algorithm_c(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_c");
    group.sample_size(10);
    for n in [18usize, 32, 50, 72, 98, 128] {
        let t = t_c(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_t{t}")),
            &(n, t),
            |bencher, &(n, t)| {
                bencher.iter(|| stress_run(AlgorithmSpec::AlgorithmC, n, t, 19));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithm_c);
criterion_main!(benches);
