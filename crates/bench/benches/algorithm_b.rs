//! Wall-clock benchmark for Theorem 3: Algorithm B across block
//! parameters `b`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_bench::stress_run;
use sg_core::{t_b, AlgorithmSpec};

fn bench_algorithm_b(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_b");
    group.sample_size(10);
    for n in [17usize, 21, 29] {
        let t = t_b(n);
        for b in 2..=t.min(4) {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("n{n}_t{t}_b{b}")),
                &(n, t, b),
                |bencher, &(n, t, b)| {
                    bencher.iter(|| stress_run(AlgorithmSpec::AlgorithmB { b }, n, t, 13));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithm_b);
criterion_main!(benches);
