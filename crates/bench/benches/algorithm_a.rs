//! Wall-clock benchmark for Theorem 2: Algorithm A across block
//! parameters `b` (messages `O(n^b)`, rounds `t + O(t/b)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_bench::stress_run;
use sg_core::{t_a, AlgorithmSpec};

fn bench_algorithm_a(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_a");
    group.sample_size(10);
    for n in [16usize, 22, 31] {
        let t = t_a(n);
        for b in 3..=t.min(4) {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("n{n}_t{t}_b{b}")),
                &(n, t, b),
                |bencher, &(n, t, b)| {
                    bencher.iter(|| stress_run(AlgorithmSpec::AlgorithmA { b }, n, t, 17));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithm_a);
criterion_main!(benches);
