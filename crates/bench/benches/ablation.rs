//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! * `masking` — the modified Exponential Algorithm (fault discovery +
//!   masking on) against the plain PSL-style baseline at identical
//!   parameters: the wall-clock price of the machinery that makes
//!   shifting possible.
//! * `conversion` — `resolve` against `resolve'` plus the Fault Discovery
//!   Rule During Conversion (Algorithm A's extra pass), the per-shift
//!   overhead the hybrid pays in its A phase.
//! * `fault_free_vs_stress` — the same algorithm with and without active
//!   faults, isolating the adversary-handling cost from protocol cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_bench::stress_run;
use sg_core::AlgorithmSpec;
use sg_sim::{NoFaults, RunConfig, Value};

fn fault_free_run(spec: AlgorithmSpec, n: usize, t: usize) {
    let config = RunConfig::new(n, t).with_source_value(Value(1));
    let outcome = sg_core::execute(spec, &config, &mut NoFaults).expect("valid");
    outcome.assert_correct();
}

fn bench_masking_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_masking");
    group.sample_size(10);
    for (n, t) in [(7usize, 2usize), (10, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("plain_n{n}_t{t}")),
            &(n, t),
            |bencher, &(n, t)| {
                bencher.iter(|| stress_run(AlgorithmSpec::PlainExponential, n, t, 29));
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("modified_n{n}_t{t}")),
            &(n, t),
            |bencher, &(n, t)| {
                bencher.iter(|| stress_run(AlgorithmSpec::Exponential, n, t, 29));
            },
        );
    }
    group.finish();
}

fn bench_conversion_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_conversion");
    group.sample_size(10);
    for (n, t) in [(7usize, 2usize), (10, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("resolve_n{n}_t{t}")),
            &(n, t),
            |bencher, &(n, t)| {
                bencher.iter(|| stress_run(AlgorithmSpec::Exponential, n, t, 31));
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("resolve_prime_n{n}_t{t}")),
            &(n, t),
            |bencher, &(n, t)| {
                bencher.iter(|| stress_run(AlgorithmSpec::ExponentialPrime, n, t, 31));
            },
        );
    }
    group.finish();
}

fn bench_fault_free_vs_stress(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fault_load");
    group.sample_size(10);
    let (n, t, b) = (16usize, 5usize, 3usize);
    group.bench_function("hybrid_fault_free", |bencher| {
        bencher.iter(|| fault_free_run(AlgorithmSpec::Hybrid { b }, n, t));
    });
    group.bench_function("hybrid_stress", |bencher| {
        bencher.iter(|| stress_run(AlgorithmSpec::Hybrid { b }, n, t, 37));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_masking_ablation,
    bench_conversion_ablation,
    bench_fault_free_vs_stress
);
criterion_main!(benches);
