//! Single-run hot-loop throughput, isolating the two layers of the
//! instance-pooled, bit-packed run loop:
//!
//! * `instances/*` — fresh-instance (`run_in`) vs pooled-instance
//!   (`run_pooled_in`) executions of the benchmark sweep's cell, so the
//!   cost of boxing `n` protocol instances per run is visible on its own;
//! * `payload/*` — packed-ballot deliveries vs the per-payload fallback
//!   (`set_packed_broadcast`), so the popcount-tally layer is measured
//!   separately from pooling;
//! * `rounds/*` — the `f_actual = 0` cell run status-driven
//!   (`set_early_stopping`, the default) vs fixed-length, so the
//!   expedite win of the early-stopping run loop is measured on its own;
//! * `batch/*` — 64 seeds of the cell run one by one through the scalar
//!   loop vs lock-step through `run_batch` (one bit lane per run), so
//!   the cross-run data-parallel layer is measured on its own;
//! * `batch-adversary/*` — the same 64-lane batch driven by a
//!   vectorized `BatchFamily` vs the per-lane `ScalarBridge`, so the
//!   fault-materialization layer (one mask computation per batch vs 64
//!   per-edge adversary walks per round) is measured on its own.
//!
//! The `instances/*` and `payload/*` variants execute identical work —
//! `tests/instance_pool.rs` pins down that their outcomes are
//! bit-identical — so those ratios are pure hot-loop overhead; the
//! `rounds/*` pair executes *fewer rounds* by design (identical
//! decisions, pinned by `tests/early_stopping.rs`), and its ratio is the
//! expedite speedup itself.

use criterion::{criterion_group, criterion_main, Criterion};
use sg_adversary::{BatchFamily, Crash, FaultSelection, RandomLiar, VectorFamily};
use sg_core::{king_batch_kernel, AlgorithmSpec};
use sg_sim::{
    run_batch, run_batch_with, run_in, run_pooled_in, set_early_stopping, set_packed_broadcast,
    Adversary, BatchArena, RunArena, RunConfig, ScalarBridge, Value, MAX_BATCH_RUNS,
};

const SEED: u64 = 7;

fn bench_config() -> (AlgorithmSpec, RunConfig) {
    // The BENCH_sweep.json cell: optimal-king n=16 t=5 under random liars.
    let spec = AlgorithmSpec::OptimalKing;
    let config = RunConfig::new(16, 5)
        .with_source_value(Value(1))
        .with_trace();
    (spec, config)
}

fn bench_instance_pool(c: &mut Criterion) {
    let (spec, config) = bench_config();
    let key = spec.pool_key(&config);
    let factory = spec.factory(&config);
    let mut group = c.benchmark_group("run_loop_optimal_king_n16_t5");
    group.sample_size(20);

    let mut arena = RunArena::new();
    group.bench_function("instances/fresh", |b| {
        b.iter(|| {
            let mut adversary = RandomLiar::new(FaultSelection::without_source(), SEED);
            run_in(&mut arena, &config, &mut adversary, &factory)
        });
    });

    let mut arena = RunArena::new();
    group.bench_function("instances/pooled", |b| {
        b.iter(|| {
            let mut adversary = RandomLiar::new(FaultSelection::without_source(), SEED);
            run_pooled_in(&mut arena, &config, &mut adversary, key, &factory)
        });
    });
    group.finish();
}

fn bench_packed_payloads(c: &mut Criterion) {
    let (spec, config) = bench_config();
    let key = spec.pool_key(&config);
    let factory = spec.factory(&config);
    let mut group = c.benchmark_group("run_loop_optimal_king_n16_t5");
    group.sample_size(20);

    // Both variants run pooled, so the packed-ballot layer is isolated.
    let mut arena = RunArena::new();
    set_packed_broadcast(false);
    group.bench_function("payload/vec-fallback", |b| {
        b.iter(|| {
            let mut adversary = RandomLiar::new(FaultSelection::without_source(), SEED);
            run_pooled_in(&mut arena, &config, &mut adversary, key, &factory)
        });
    });
    set_packed_broadcast(true);

    let mut arena = RunArena::new();
    group.bench_function("payload/bit-packed", |b| {
        b.iter(|| {
            let mut adversary = RandomLiar::new(FaultSelection::without_source(), SEED);
            run_pooled_in(&mut arena, &config, &mut adversary, key, &factory)
        });
    });
    group.finish();
}

/// The early-stopping layer in isolation: the benchmark cell at
/// `f_actual = 0` (every selected liar is disabled by `limit(0)`, so all
/// processors are correct), run status-driven vs fixed-length. The
/// status-driven run locks in the first king phase's propose step and
/// stops at round 3 of 19 — the `min(f+2, t+1)`-style expedite win the
/// paper's title promises, measured as wall time.
fn bench_early_stopping(c: &mut Criterion) {
    let (spec, config) = bench_config();
    let key = spec.pool_key(&config);
    let factory = spec.factory(&config);
    let mut group = c.benchmark_group("run_loop_optimal_king_n16_t5");
    group.sample_size(20);

    let mut arena = RunArena::new();
    set_early_stopping(false);
    group.bench_function("rounds/fixed-length-f0", |b| {
        b.iter(|| {
            let mut adversary = RandomLiar::new(FaultSelection::without_source().limit(0), SEED);
            run_pooled_in(&mut arena, &config, &mut adversary, key, &factory)
        });
    });
    set_early_stopping(true);

    let mut arena = RunArena::new();
    group.bench_function("rounds/early-stop-f0", |b| {
        b.iter(|| {
            let mut adversary = RandomLiar::new(FaultSelection::without_source().limit(0), SEED);
            run_pooled_in(&mut arena, &config, &mut adversary, key, &factory)
        });
    });
    group.finish();
}

/// The lock-step batch layer in isolation: the same 64 seeds of the
/// benchmark cell executed scalar (one `run_pooled_in` per seed) vs
/// lock-step (one `run_batch` call, one bit lane per run). Both
/// variants perform the identical per-run adversary calls — that
/// irreducible scalar work is what keeps the ratio below 64× — and
/// `tests/batch_identity.rs` pins their samples bit-identical.
fn bench_batch_runs(c: &mut Criterion) {
    let (spec, config) = bench_config();
    let key = spec.pool_key(&config);
    let factory = spec.factory(&config);
    let mut group = c.benchmark_group("run_loop_optimal_king_n16_t5");
    group.sample_size(20);

    let mut arena = RunArena::new();
    group.bench_function("batch/scalar-64", |b| {
        b.iter(|| {
            for seed in 0..MAX_BATCH_RUNS as u64 {
                let mut adversary = RandomLiar::new(FaultSelection::without_source(), seed);
                run_pooled_in(&mut arena, &config, &mut adversary, key, &factory);
            }
        });
    });

    let mut batch_arena = BatchArena::new();
    group.bench_function("batch/lock-step-64", |b| {
        b.iter(|| {
            let mut kernel = king_batch_kernel(&spec, &config).expect("eligible cell");
            let mut adversaries: Vec<Box<dyn Adversary>> = (0..MAX_BATCH_RUNS as u64)
                .map(|seed| {
                    Box::new(RandomLiar::new(FaultSelection::without_source(), seed))
                        as Box<dyn Adversary>
                })
                .collect();
            assert!(run_batch(
                &mut batch_arena,
                &config,
                &mut kernel,
                &mut adversaries
            ));
        });
    });
    group.finish();
}

/// The batch-adversary layer in isolation: the identical 64-lane batch
/// driven through `run_batch_with`, once with the per-lane
/// `ScalarBridge` (every round walks every lane's faulty edges through
/// the scalar `Adversary` trait) and once with the vectorized
/// `BatchFamily` (one selection and one mask computation cover all 64
/// lanes). Two families bracket the effect: `crash` is deterministic, so
/// the vector path is pure mask algebra and the ratio is the full
/// materialization cost; `random-liar` must reproduce the scalar path's
/// per-edge RNG draws for bit-identity, so its ratio shows the
/// irreducible RNG floor. `tests/batch_identity.rs` pins both paths
/// bit-identical.
fn bench_batch_adversaries(c: &mut Criterion) {
    let (spec, config) = bench_config();
    let mut group = c.benchmark_group("run_loop_optimal_king_n16_t5");
    group.sample_size(20);

    let selection = FaultSelection::without_source();
    let seeds: Vec<u64> = (0..MAX_BATCH_RUNS as u64).collect();
    let crash_lanes = |_: &u64| Box::new(Crash::new(selection.clone(), 2)) as Box<dyn Adversary>;
    let liar_lanes =
        |seed: &u64| Box::new(RandomLiar::new(selection.clone(), *seed)) as Box<dyn Adversary>;

    type LaneMaker<'a> = &'a dyn Fn(&u64) -> Box<dyn Adversary>;
    let cases: [(&str, VectorFamily, LaneMaker); 2] = [
        (
            "crash",
            VectorFamily::Crash { crash_round: 2 },
            &crash_lanes,
        ),
        (
            "random-liar",
            VectorFamily::RandomLiar {
                seeds: seeds.clone(),
            },
            &liar_lanes,
        ),
    ];
    let mut batch_arena = BatchArena::new();
    for (name, vector, make_lane) in cases {
        group.bench_function(format!("batch-adversary/{name}-bridge"), |b| {
            b.iter(|| {
                let mut kernel = king_batch_kernel(&spec, &config).expect("eligible cell");
                let mut lanes: Vec<Box<dyn Adversary>> = seeds.iter().map(make_lane).collect();
                let mut bridge = ScalarBridge(&mut lanes);
                assert!(run_batch_with(
                    &mut batch_arena,
                    &config,
                    &mut kernel,
                    &mut bridge
                ));
            });
        });
        group.bench_function(format!("batch-adversary/{name}-vector"), |b| {
            b.iter(|| {
                let mut kernel = king_batch_kernel(&spec, &config).expect("eligible cell");
                let mut lanes: Vec<Box<dyn Adversary>> = seeds.iter().map(make_lane).collect();
                let mut batch = BatchFamily::new(vector.clone(), selection.clone(), &mut lanes);
                assert!(run_batch_with(
                    &mut batch_arena,
                    &config,
                    &mut kernel,
                    &mut batch
                ));
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_instance_pool,
    bench_packed_payloads,
    bench_early_stopping,
    bench_batch_runs,
    bench_batch_adversaries
);
criterion_main!(benches);
