//! Sweep-engine throughput: serial vs. parallel execution of the same
//! seeded Monte-Carlo grid (the `BENCH_sweep.json` workload, in
//! miniature), plus the raw `sweep_map` executor.
//!
//! On a multi-core host the `jobs_hw` rows should approach
//! `jobs_1 / cores`; on a single-core host they bound the engine's
//! scheduling overhead instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_adversary::FaultSelection;
use sg_analysis::sweep::sweep_map_with_jobs;
use sg_analysis::{AdversaryFamily, SweepConfig, SweepPlan};
use sg_bench::stress_run;
use sg_core::AlgorithmSpec;

fn bench_plan(seeds: u64) -> SweepPlan {
    SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 16, 5)],
        vec![AdversaryFamily::random_liar(
            FaultSelection::without_source(),
        )],
        seeds,
    )
}

fn bench_sweep_plan(c: &mut Criterion) {
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    let mut group = c.benchmark_group("sweep_plan_optimal_king_n16_t5");
    group.sample_size(10);
    for seeds in [32u64, 128] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("seeds{seeds}_jobs_1")),
            &seeds,
            |bencher, &seeds| {
                bencher.iter(|| bench_plan(seeds).run_with_jobs(1));
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("seeds{seeds}_jobs_hw{hw}")),
            &seeds,
            |bencher, &seeds| {
                bencher.iter(|| bench_plan(seeds).run_with_jobs(hw));
            },
        );
    }
    group.finish();
}

fn bench_sweep_map(c: &mut Criterion) {
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    let mut group = c.benchmark_group("sweep_map_stress_runs");
    group.sample_size(10);
    for jobs in [1usize, hw] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("hybrid_n13_x32_jobs{jobs}")),
            &jobs,
            |bencher, &jobs| {
                bencher.iter(|| {
                    sweep_map_with_jobs((0..32u64).collect(), jobs, |seed| {
                        stress_run(AlgorithmSpec::Hybrid { b: 3 }, 13, 4, seed).rounds_used
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_plan, bench_sweep_map);
criterion_main!(benches);
