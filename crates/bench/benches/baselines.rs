//! Wall-clock benchmark for the baselines: Phase King (constant-size
//! messages) and authenticated Dolev–Strong (simulated signatures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_bench::stress_run;
use sg_core::{t_b, AlgorithmSpec};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for n in [9usize, 21, 41] {
        let t = t_b(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("phase_king_n{n}_t{t}")),
            &(n, t),
            |bencher, &(n, t)| {
                bencher.iter(|| stress_run(AlgorithmSpec::PhaseKing, n, t, 37));
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("dolev_strong_n{n}_t{t}")),
            &(n, t),
            |bencher, &(n, t)| {
                bencher.iter(|| stress_run(AlgorithmSpec::DolevStrong, n, t, 37));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
