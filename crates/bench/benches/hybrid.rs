//! Wall-clock benchmark for the Main Theorem: the hybrid A→B→C across
//! `n` and `b`, compared against running Algorithm A alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_bench::stress_run;
use sg_core::{t_a, AlgorithmSpec};

fn bench_hybrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid");
    group.sample_size(10);
    for n in [13usize, 16, 25, 31] {
        let t = t_a(n);
        for b in 3..=t.min(4) {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("hybrid_n{n}_b{b}")),
                &(n, t, b),
                |bencher, &(n, t, b)| {
                    bencher.iter(|| stress_run(AlgorithmSpec::Hybrid { b }, n, t, 23));
                },
            );
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("algorithm_a_n{n}_b{b}")),
                &(n, t, b),
                |bencher, &(n, t, b)| {
                    bencher.iter(|| stress_run(AlgorithmSpec::AlgorithmA { b }, n, t, 23));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hybrid);
criterion_main!(benches);
