//! Wall-clock benchmark for Proposition 1: the Exponential Algorithm as
//! `t` grows (messages and trees grow as `O(n^t)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_bench::stress_run;
use sg_core::AlgorithmSpec;

fn bench_exponential(c: &mut Criterion) {
    let mut group = c.benchmark_group("exponential");
    group.sample_size(10);
    for (n, t) in [(4usize, 1usize), (7, 2), (10, 3), (13, 4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_t{t}")),
            &(n, t),
            |bencher, &(n, t)| {
                bencher.iter(|| stress_run(AlgorithmSpec::Exponential, n, t, 11));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exponential);
criterion_main!(benches);
