//! Property-based tests for the tree-shape arithmetic: index/path
//! round-trips, contiguous children blocks, and visit-order consistency
//! across random system sizes and sources.

use proptest::prelude::*;
use sg_eigtree::{convert, strict_majority, Conversion, IgTree, Res, Shape};
use sg_sim::{ProcessId, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// path(index_of(p)) == p for every node of every level, any n and
    /// source.
    #[test]
    fn path_index_roundtrip(n in 3usize..9, src in 0usize..9, k in 0usize..4) {
        let src = src % n;
        prop_assume!(k <= n.saturating_sub(2));
        let shape = Shape::new(n, ProcessId(src));
        for i in 0..shape.level_size(k) {
            let path = shape.path(k, i);
            prop_assert_eq!(shape.index_of(&path), Some(i));
            for &p in &path {
                prop_assert_ne!(p, ProcessId(src));
            }
        }
    }

    /// Children of node (k, i) occupy exactly the contiguous block given
    /// by `children_range`, with labels matching `child_labels`.
    #[test]
    fn children_blocks_are_contiguous(n in 4usize..8, k in 0usize..3) {
        prop_assume!(k < n - 2);
        let shape = Shape::new(n, ProcessId(0));
        for i in 0..shape.level_size(k) {
            let path = shape.path(k, i);
            let labels = shape.child_labels(&path);
            let range = shape.children_range(k, i);
            prop_assert_eq!(labels.len(), range.len());
            for (offset, &label) in labels.iter().enumerate() {
                let child = range.start + offset;
                let mut child_path = path.clone();
                child_path.push(label);
                prop_assert_eq!(shape.path(k + 1, child), child_path);
                prop_assert_eq!(shape.parent(k + 1, child), i);
            }
        }
    }

    /// `visit_level` enumerates exactly `level_size(k)` nodes in index
    /// order with correct paths.
    #[test]
    fn visit_level_is_exact(n in 4usize..8, k in 0usize..3) {
        prop_assume!(k <= n - 2);
        let shape = Shape::new(n, ProcessId(n - 1));
        let mut next = 0usize;
        shape.visit_level(k, &mut |i, path, labels| {
            assert_eq!(i, next);
            assert_eq!(shape.path(k, i), path);
            assert_eq!(shape.child_labels(path), labels);
            next += 1;
        });
        prop_assert_eq!(next, shape.level_size(k));
    }

    /// Masking a sender and then resolving never increases the masked
    /// sender's influence: a tree whose deepest level is all `v` except
    /// for entries from one sender resolves to `v` once that sender is
    /// masked.
    #[test]
    fn masked_sender_cannot_flip_resolution(n in 5usize..8, v in 0u16..2) {
        let mut tree = IgTree::new(n, ProcessId(0));
        tree.set_root(Value(v));
        tree.append_level(|_, _| Value(v));
        // The liar (P1) poisoned its entries at level 2.
        tree.append_level(|_, sender| {
            if sender == ProcessId(1) { Value(1 - v) } else { Value(v) }
        });
        let masked = sg_sim::ProcessSet::from_members(n, [ProcessId(1)]);
        tree.mask_level(2, &masked);
        let converted = convert(&tree, Conversion::Resolve);
        // With P1's level-2 entries defaulted, every level-1 node has at
        // most one non-v child (the default 0), and n−2 ≥ 3 children, so
        // the majority stays v.
        prop_assert_eq!(converted.root(), Res::Val(Value(v)));
    }

    /// `strict_majority` is permutation-invariant.
    #[test]
    fn strict_majority_permutation_invariant(
        mut vals in proptest::collection::vec(0u16..3, 1..16),
        rot in 0usize..16,
    ) {
        let before = strict_majority(&vals);
        let r = rot % vals.len();
        vals.rotate_left(r);
        prop_assert_eq!(strict_majority(&vals), before);
    }
}
