//! ASCII rendering of information-gathering trees — reproduces the
//! paper's Figure 1 ("r said q said … the source said").

use sg_sim::ProcessId;

use crate::tree::IgTree;

/// Renders `tree` in the style of the paper's Figure 1.
///
/// Each node is shown as "`p_k said … p_1 said the source said v`" at an
/// indentation matching its depth. Levels beyond `max_level` are elided
/// (exponential trees get big fast).
///
/// # Examples
///
/// ```
/// use sg_eigtree::{render_tree, IgTree};
/// use sg_sim::{ProcessId, Value};
///
/// let mut tree = IgTree::new(4, ProcessId(0));
/// tree.set_root(Value(1));
/// tree.append_level(|_, _| Value(1));
/// let text = render_tree(&tree, 1);
/// assert!(text.starts_with("the source said 1"));
/// assert!(text.contains("P1 said the source said 1"));
/// ```
pub fn render_tree(tree: &IgTree, max_level: usize) -> String {
    let mut out = String::new();
    let deepest = tree.deepest_level().min(max_level);
    render_rec(tree, &mut Vec::new(), deepest, &mut out);
    out
}

fn render_rec(tree: &IgTree, path: &mut Vec<ProcessId>, deepest: usize, out: &mut String) {
    let value = tree.value_at(path).expect("path within stored levels");
    for _ in 0..path.len() {
        out.push_str("    ");
    }
    for &p in path.iter().rev() {
        out.push_str(&format!("{p} said "));
    }
    out.push_str(&format!("the source said {value}\n"));
    if path.len() == deepest {
        return;
    }
    for label in tree.shape().child_labels(path) {
        path.push(label);
        render_rec(tree, path, deepest, out);
        path.pop();
    }
}

/// Renders `tree` as a Graphviz DOT digraph, down to `max_level`.
///
/// Node labels show the corresponding processor (or `s` for the root) and
/// the stored value; edges run parent -> child. Feed the output to
/// `dot -Tsvg` to visualize an information-gathering tree — the picture
/// form of the paper's Figure 1.
///
/// # Examples
///
/// ```
/// use sg_eigtree::{tree_to_dot, IgTree};
/// use sg_sim::{ProcessId, Value};
///
/// let mut tree = IgTree::new(4, ProcessId(0));
/// tree.set_root(Value(1));
/// tree.append_level(|_, _| Value(1));
/// let dot = tree_to_dot(&tree, 1);
/// assert!(dot.starts_with("digraph ig_tree {"));
/// assert!(dot.contains("\"s\" [label=\"s = 1\"];"));
/// ```
pub fn tree_to_dot(tree: &IgTree, max_level: usize) -> String {
    let mut out = String::from("digraph ig_tree {\n  rankdir=TB;\n  node [shape=box];\n");
    let deepest = tree.deepest_level().min(max_level);
    dot_rec(tree, &mut Vec::new(), deepest, &mut out);
    out.push_str("}\n");
    out
}

/// The DOT node id for a path: `s`, `s.P1`, `s.P1.P2`, ...
fn dot_id(path: &[ProcessId]) -> String {
    let mut id = String::from("s");
    for p in path {
        id.push('.');
        id.push_str(&p.to_string());
    }
    id
}

fn dot_rec(tree: &IgTree, path: &mut Vec<ProcessId>, deepest: usize, out: &mut String) {
    let value = tree.value_at(path).expect("path within stored levels");
    let id = dot_id(path);
    let label = match path.last() {
        None => format!("s = {value}"),
        Some(p) => format!("{p} = {value}"),
    };
    out.push_str(&format!("  \"{id}\" [label=\"{label}\"];\n"));
    if let Some((_, parent)) = path.split_last() {
        out.push_str(&format!("  \"{}\" -> \"{id}\";\n", dot_id(parent)));
    }
    if path.len() == deepest {
        return;
    }
    for label in tree.shape().child_labels(path) {
        path.push(label);
        dot_rec(tree, path, deepest, out);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sim::Value;

    #[test]
    fn renders_two_levels_with_indentation() {
        let mut tree = IgTree::new(4, ProcessId(0));
        tree.set_root(Value(1));
        tree.append_level(|_, q| Value(q.index() as u16));
        tree.append_level(|_, _| Value(0));
        let text = render_tree(&tree, 2);
        assert!(text.contains("the source said 1\n"));
        assert!(text.contains("    P2 said the source said 2\n"));
        assert!(text.contains("        P3 said P1 said the source said 0\n"));
    }

    #[test]
    fn dot_output_has_nodes_and_edges() {
        let mut tree = IgTree::new(4, ProcessId(0));
        tree.set_root(Value(1));
        tree.append_level(|_, q| Value(q.index() as u16 % 2));
        let dot = tree_to_dot(&tree, 1);
        assert!(dot.starts_with("digraph ig_tree {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("\"s\" [label=\"s = 1\"];"));
        assert!(dot.contains("\"s.P2\" [label=\"P2 = 0\"];"));
        assert!(dot.contains("\"s\" -> \"s.P3\";"));
        // One node line per rendered node: root + 3 children.
        assert_eq!(dot.matches("label=").count(), 4);
    }

    #[test]
    fn dot_respects_max_level() {
        let mut tree = IgTree::new(5, ProcessId(0));
        tree.set_root(Value(1));
        tree.append_level(|_, _| Value(1));
        tree.append_level(|_, _| Value(1));
        let shallow = tree_to_dot(&tree, 0);
        assert_eq!(shallow.matches("label=").count(), 1);
        assert!(!shallow.contains("->"));
    }

    #[test]
    fn max_level_elides_deep_levels() {
        let mut tree = IgTree::new(5, ProcessId(0));
        tree.set_root(Value(1));
        tree.append_level(|_, _| Value(1));
        tree.append_level(|_, _| Value(1));
        let shallow = render_tree(&tree, 1);
        assert_eq!(shallow.lines().count(), 1 + 4);
    }
}
