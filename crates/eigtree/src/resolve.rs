//! Data conversion functions: `resolve` (paper §3) and `resolve'` (§4.2).
//!
//! `resolve` is a recursive majority vote: a leaf resolves to its stored
//! value; an internal node resolves to the strict majority of its
//! children's resolved values, or the default value if no majority exists.
//!
//! `resolve'` resolves an internal node to the *unique* value of `V`
//! occurring at least `t+1` times among its children's resolved values,
//! and to the special value `⊥ ∉ V` otherwise. `⊥` exists only during
//! conversion; a processor whose final `resolve'(s)` is `⊥` adopts the
//! default value.

use sg_sim::Value;

use crate::tree::IgTree;

/// The result of applying a conversion function to one node: a value of
/// `V`, or `⊥` (only produced by `resolve'`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Res {
    /// A value of the agreement domain.
    Val(Value),
    /// The out-of-domain marker `⊥` of `resolve'`.
    Bottom,
}

impl Res {
    /// The carried value, with `⊥` collapsed to the default — the rule a
    /// processor applies when adopting a converted value as its new
    /// preferred value.
    pub fn value_or_default(self) -> Value {
        match self {
            Res::Val(v) => v,
            Res::Bottom => Value::DEFAULT,
        }
    }

    /// The carried value, if not `⊥`.
    pub fn as_value(self) -> Option<Value> {
        match self {
            Res::Val(v) => Some(v),
            Res::Bottom => None,
        }
    }
}

impl std::fmt::Display for Res {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Res::Val(v) => write!(f, "{v}"),
            Res::Bottom => write!(f, "⊥"),
        }
    }
}

/// Which conversion function to apply.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Conversion {
    /// Recursive majority voting (`resolve`, §3) — Algorithm B and the
    /// Exponential Algorithm.
    Resolve,
    /// The `≥ t+1` unique-value rule (`resolve'`, §4.2) — Algorithm A.
    ResolvePrime {
        /// The fault bound `t` of the running protocol instance.
        t: usize,
    },
}

impl Conversion {
    /// The paper's name for the function.
    pub fn name(&self) -> &'static str {
        match self {
            Conversion::Resolve => "resolve",
            Conversion::ResolvePrime { .. } => "resolve'",
        }
    }
}

/// The fully converted tree: `resolve`/`resolve'` applied to every node.
///
/// Keeping every node's converted value (not just the root's) serves
/// Algorithm A's Fault Discovery Rule During Conversion, which inspects
/// the converted values of each internal node's children.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Converted {
    levels: Vec<Vec<Res>>,
    ops: u64,
}

impl Converted {
    /// The converted value of the root — the node `s`.
    pub fn root(&self) -> Res {
        self.levels[0][0]
    }

    /// Converted values of level `k` in canonical order.
    pub fn level(&self, k: usize) -> &[Res] {
        &self.levels[k]
    }

    /// Number of levels (same as the source tree).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Local-computation charge of the conversion (one unit per
    /// child inspected).
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// The strict majority element of `items`, if one exists
/// (count > len/2). Boyer–Moore with verification: O(len), no allocation.
///
/// # Examples
///
/// ```
/// use sg_eigtree::strict_majority;
///
/// assert_eq!(strict_majority(&[1, 2, 1, 1]), Some(1));
/// assert_eq!(strict_majority(&[1, 2, 1, 2]), None);
/// assert_eq!(strict_majority::<u8>(&[]), None);
/// ```
pub fn strict_majority<T: Eq + Copy>(items: &[T]) -> Option<T> {
    let mut candidate: Option<T> = None;
    let mut count = 0usize;
    for &x in items {
        match candidate {
            Some(c) if c == x => count += 1,
            _ if count == 0 => {
                candidate = Some(x);
                count = 1;
            }
            _ => count -= 1,
        }
    }
    let c = candidate?;
    let occurrences = items.iter().filter(|&&x| x == c).count();
    (2 * occurrences > items.len()).then_some(c)
}

/// Applies a conversion function to every node of `tree`, bottom-up.
///
/// The deepest stored level acts as the leaves (they resolve to their
/// stored values); every shallower node is converted from its children's
/// converted values per the chosen rule.
///
/// # Panics
///
/// Panics if the tree has no stored levels.
pub fn convert(tree: &IgTree, conversion: Conversion) -> Converted {
    let deepest = tree.deepest_level();
    let shape = *tree.shape();
    // Built deepest-first, then reversed into level order.
    let mut built: Vec<Vec<Res>> = Vec::with_capacity(deepest + 1);
    built.push(tree.level(deepest).iter().map(|&v| Res::Val(v)).collect());
    let mut ops = 0u64;
    for k in (0..deepest).rev() {
        let width = shape.children_per_node(k);
        let child_level = built.last().expect("previous level built");
        let size = shape.level_size(k);
        let mut level = Vec::with_capacity(size);
        for i in 0..size {
            let children = &child_level[i * width..(i + 1) * width];
            ops += width as u64;
            level.push(convert_node(children, conversion));
        }
        built.push(level);
    }
    built.reverse();
    Converted { levels: built, ops }
}

/// Converts a single internal node from its children's converted values.
pub fn convert_node(children: &[Res], conversion: Conversion) -> Res {
    match conversion {
        Conversion::Resolve => match strict_majority(children) {
            Some(r) => Res::Val(r.value_or_default()),
            None => Res::Val(Value::DEFAULT),
        },
        Conversion::ResolvePrime { t } => unique_supported(children, t),
    }
}

/// `resolve'`'s node rule: the unique `v ∈ V` with at least `t+1`
/// occurrences among `children`, else `⊥`.
fn unique_supported(children: &[Res], t: usize) -> Res {
    // Count distinct values; |V| is a small constant, so a linear pair
    // list beats a hash map here.
    let mut counts: Vec<(Value, usize)> = Vec::new();
    for r in children {
        if let Res::Val(v) = r {
            match counts.iter_mut().find(|(u, _)| u == v) {
                Some((_, c)) => *c += 1,
                None => counts.push((*v, 1)),
            }
        }
    }
    let mut winner: Option<Value> = None;
    for (v, c) in counts {
        if c > t {
            if winner.is_some() {
                return Res::Bottom; // not unique
            }
            winner = Some(v);
        }
    }
    winner.map_or(Res::Bottom, Res::Val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sim::ProcessId;

    fn tree_with_level1(n: usize, vals: &[u16]) -> IgTree {
        let mut t = IgTree::new(n, ProcessId(0));
        t.set_root(Value(1));
        let mut it = vals.iter();
        t.append_level(|_, _| Value(*it.next().unwrap()));
        t
    }

    #[test]
    fn resolve_takes_strict_majority() {
        let t = tree_with_level1(5, &[1, 1, 1, 0]);
        let c = convert(&t, Conversion::Resolve);
        assert_eq!(c.root(), Res::Val(Value(1)));
    }

    #[test]
    fn resolve_defaults_on_tie() {
        let t = tree_with_level1(5, &[1, 1, 0, 0]);
        let c = convert(&t, Conversion::Resolve);
        assert_eq!(c.root(), Res::Val(Value::DEFAULT));
    }

    #[test]
    fn resolve_prime_requires_unique_t_plus_1_support() {
        // n = 5, t = 1: need a unique value with >= 2 occurrences.
        let t = tree_with_level1(5, &[1, 1, 0, 0]);
        let c = convert(&t, Conversion::ResolvePrime { t: 1 });
        assert_eq!(c.root(), Res::Bottom); // both 0 and 1 reach 2

        let t = tree_with_level1(5, &[1, 1, 0, 2]);
        let c = convert(&t, Conversion::ResolvePrime { t: 1 });
        assert_eq!(c.root(), Res::Val(Value(1)));

        let t = tree_with_level1(5, &[1, 0, 2, 3]);
        let c = convert(&t, Conversion::ResolvePrime { t: 1 });
        assert_eq!(c.root(), Res::Bottom); // nobody reaches 2
    }

    #[test]
    fn two_level_resolution_recurses() {
        // n = 4: level 1 has 3 nodes, level 2 has 6 (2 children each).
        let mut t = IgTree::new(4, ProcessId(0));
        t.set_root(Value(1));
        t.append_level(|_, _| Value(1));
        // Children pairs: make node s1's children disagree (tie -> default 0),
        // s2's and s3's children agree on 1.
        let leaf_vals = [1, 0, 1, 1, 1, 1];
        let mut i = 0;
        t.append_level(|_, _| {
            let v = Value(leaf_vals[i]);
            i += 1;
            v
        });
        let c = convert(&t, Conversion::Resolve);
        assert_eq!(
            c.level(1),
            &[Res::Val(Value(0)), Res::Val(Value(1)), Res::Val(Value(1))]
        );
        // Root majority over [0, 1, 1] = 1.
        assert_eq!(c.root(), Res::Val(Value(1)));
    }

    #[test]
    fn leaves_resolve_to_stored_values() {
        let t = tree_with_level1(4, &[1, 0, 1]);
        let c = convert(&t, Conversion::Resolve);
        assert_eq!(
            c.level(1),
            &[Res::Val(Value(1)), Res::Val(Value(0)), Res::Val(Value(1))]
        );
    }

    #[test]
    fn conversion_charges_ops() {
        let t = tree_with_level1(5, &[1, 1, 1, 1]);
        let c = convert(&t, Conversion::Resolve);
        assert_eq!(c.ops(), 4); // one internal node with 4 children
    }

    #[test]
    fn strict_majority_edge_cases() {
        assert_eq!(strict_majority(&[3]), Some(3));
        assert_eq!(strict_majority(&[1, 1]), Some(1));
        assert_eq!(strict_majority(&[1, 2]), None);
        assert_eq!(strict_majority(&[2, 1, 2, 1, 2]), Some(2));
    }

    #[test]
    fn root_only_tree_resolves_to_root() {
        let mut t = IgTree::new(4, ProcessId(0));
        t.set_root(Value(1));
        let c = convert(&t, Conversion::Resolve);
        assert_eq!(c.root(), Res::Val(Value(1)));
        assert_eq!(c.ops(), 0);
    }
}
