//! The Information Gathering Tree without repetitions (paper §3, Fig. 1).
//!
//! `tree_p(s·q⋯r)` holds "the value that r says q says … the source said".
//! Levels are stored as flat value vectors in the canonical order defined
//! by [`crate::Shape`], so appending a level from a round's messages is a
//! single linear pass and a round-`h` broadcast is just a copy of the
//! deepest level.

use sg_sim::{ProcessId, ProcessSet, Value};

use crate::shape::Shape;

/// One processor's information-gathering tree.
///
/// # Examples
///
/// Build the 2-round tree of a 4-processor system by hand:
///
/// ```
/// use sg_eigtree::IgTree;
/// use sg_sim::{ProcessId, Value};
///
/// let mut tree = IgTree::new(4, ProcessId(0));
/// tree.set_root(Value(1));
/// // In round 2, every non-source processor echoes the root it stored.
/// tree.append_level(|_parent, _sender| Value(1));
/// assert_eq!(tree.root(), Value(1));
/// assert_eq!(tree.deepest_level(), 1);
/// assert_eq!(tree.level(1), &[Value(1), Value(1), Value(1)]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IgTree {
    shape: Shape,
    levels: Vec<Vec<Value>>,
}

impl IgTree {
    /// An empty tree (no levels stored yet) for `n` processors and the
    /// given source.
    pub fn new(n: usize, source: ProcessId) -> Self {
        IgTree {
            shape: Shape::new(n, source),
            levels: Vec::new(),
        }
    }

    /// The tree's shape arithmetic.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Restores the tree to its just-constructed (empty) state for `n`
    /// processors and `source`, retaining the level storage so pooled
    /// protocol instances do not re-allocate it.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`IgTree::new`].
    pub fn reset(&mut self, n: usize, source: ProcessId) {
        self.shape = Shape::new(n, source);
        self.levels.clear();
    }

    /// Stores the root value (`tree(s)`, the preferred value); resets the
    /// tree to a single level.
    pub fn set_root(&mut self, v: Value) {
        self.levels.clear();
        self.levels.push(vec![v]);
    }

    /// The root value (`tree(s)`).
    ///
    /// # Panics
    ///
    /// Panics if no root has been stored yet.
    pub fn root(&self) -> Value {
        self.levels[0][0]
    }

    /// The deepest stored level number (0 = only the root).
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty.
    pub fn deepest_level(&self) -> usize {
        assert!(!self.levels.is_empty(), "tree has no levels");
        self.levels.len() - 1
    }

    /// Whether any level has been stored.
    pub fn is_initialized(&self) -> bool {
        !self.levels.is_empty()
    }

    /// The values of level `k` in canonical order.
    pub fn level(&self, k: usize) -> &[Value] {
        &self.levels[k]
    }

    /// Total stored nodes across all levels.
    pub fn node_count(&self) -> u64 {
        self.levels.iter().map(|l| l.len() as u64).sum()
    }

    /// Appends the next level from a round's messages.
    ///
    /// `value_for(parent_index, sender)` must return the (already
    /// sanitized and fault-masked) value that `sender` claims for the
    /// node at `(deepest_level, parent_index)`; for `sender == me` the
    /// caller should return its own stored value for that node, matching
    /// the convention that a processor relays to itself truthfully.
    ///
    /// Returns the number of values stored (the local-work charge).
    ///
    /// # Panics
    ///
    /// Panics if no root has been stored yet.
    pub fn append_level<F>(&mut self, mut value_for: F) -> u64
    where
        F: FnMut(usize, ProcessId) -> Value,
    {
        let k = self.deepest_level();
        let new_size = self.shape.level_size(k + 1);
        let mut level = Vec::with_capacity(new_size);
        self.shape.visit_level(k, &mut |parent_idx, _path, labels| {
            for &sender in labels {
                level.push(value_for(parent_idx, sender));
            }
        });
        debug_assert_eq!(level.len(), new_size);
        self.levels.push(level);
        new_size as u64
    }

    /// Zeroes every entry of level `k` whose node's *last* label is in
    /// `senders` — the Fault Masking Rule applied to the round in which
    /// those processors were discovered (their current-round messages are
    /// replaced by all-default messages; earlier levels are untouched).
    ///
    /// Returns the local-work charge.
    pub fn mask_level(&mut self, k: usize, senders: &ProcessSet) -> u64 {
        if senders.is_empty() || k == 0 {
            return 0;
        }
        let shape = self.shape;
        let level = &mut self.levels[k];
        let mut ops = 0u64;
        shape.visit_level(k - 1, &mut |parent_idx, _path, labels| {
            let base = shape.children_range(k - 1, parent_idx).start;
            for (offset, &label) in labels.iter().enumerate() {
                ops += 1;
                if senders.contains(label) {
                    level[base + offset] = Value::DEFAULT;
                }
            }
        });
        ops
    }

    /// The value stored at the node with the given label path, if within
    /// the stored levels and structurally valid.
    pub fn value_at(&self, path: &[ProcessId]) -> Option<Value> {
        if path.len() >= self.levels.len() {
            return None;
        }
        let idx = self.shape.index_of(path)?;
        Some(self.levels[path.len()][idx])
    }

    /// Collapses the tree to a single root holding `v` — the data-shrink
    /// half of the paper's `shift_{k→1}` operator.
    pub fn shrink_to_root(&mut self, v: Value) {
        self.set_root(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(n: usize) -> IgTree {
        let mut t = IgTree::new(n, ProcessId(0));
        t.set_root(Value(1));
        t
    }

    #[test]
    fn append_level_sizes_follow_shape() {
        let mut t = fresh(5);
        assert_eq!(t.append_level(|_, _| Value(1)), 4);
        assert_eq!(t.append_level(|_, _| Value(0)), 12);
        assert_eq!(t.deepest_level(), 2);
        assert_eq!(t.node_count(), 17);
    }

    #[test]
    fn append_level_passes_parent_and_sender() {
        let mut t = fresh(4);
        // Level 1: parent is the root (index 0), senders 1, 2, 3.
        let mut seen = Vec::new();
        t.append_level(|p, q| {
            seen.push((p, q));
            Value(q.index() as u16)
        });
        assert_eq!(
            seen,
            vec![(0, ProcessId(1)), (0, ProcessId(2)), (0, ProcessId(3))]
        );
        assert_eq!(t.value_at(&[ProcessId(2)]), Some(Value(2)));
    }

    #[test]
    fn mask_level_zeroes_only_matching_senders() {
        let mut t = fresh(4);
        t.append_level(|_, q| Value(q.index() as u16));
        let masked = ProcessSet::from_members(4, [ProcessId(2)]);
        t.mask_level(1, &masked);
        assert_eq!(t.value_at(&[ProcessId(1)]), Some(Value(1)));
        assert_eq!(t.value_at(&[ProcessId(2)]), Some(Value(0)));
        assert_eq!(t.value_at(&[ProcessId(3)]), Some(Value(3)));
    }

    #[test]
    fn mask_deeper_level_targets_last_label() {
        let mut t = fresh(4);
        t.append_level(|_, _| Value(1));
        t.append_level(|_, _| Value(1));
        let masked = ProcessSet::from_members(4, [ProcessId(3)]);
        t.mask_level(2, &masked);
        // Nodes ending in P3 are zeroed; P3's earlier level-1 entry is not.
        assert_eq!(t.value_at(&[ProcessId(3)]), Some(Value(1)));
        assert_eq!(t.value_at(&[ProcessId(1), ProcessId(3)]), Some(Value(0)));
        assert_eq!(t.value_at(&[ProcessId(1), ProcessId(2)]), Some(Value(1)));
    }

    #[test]
    fn shrink_to_root_resets_depth() {
        let mut t = fresh(5);
        t.append_level(|_, _| Value(1));
        t.shrink_to_root(Value(0));
        assert_eq!(t.deepest_level(), 0);
        assert_eq!(t.root(), Value(0));
    }

    #[test]
    fn value_at_checks_depth_and_validity() {
        let mut t = fresh(4);
        t.append_level(|_, _| Value(1));
        assert_eq!(t.value_at(&[]), Some(Value(1)));
        assert_eq!(t.value_at(&[ProcessId(1), ProcessId(2)]), None); // too deep
        assert_eq!(t.value_at(&[ProcessId(0)]), None); // source label invalid
    }
}
