//! The Fault Discovery Rules (paper §3 and §4.2).
//!
//! During Information Gathering, a correct processor `p` adds `r ∉ L_p` to
//! `L_p` if for some internal node `αr` of its tree:
//!
//! * there is no majority value for `αr` (no value stored at a strict
//!   majority of its children), **or**
//! * a majority value exists, but values other than it are stored at more
//!   than `t − |L_p|` children `αrq` with `q ∉ L_p`.
//!
//! Algorithm A additionally applies the same rule **during conversion**,
//! over the children's *converted* values, which is what lets it globally
//! detect the processors on a common-frontier-free path above the leaf
//! parents (Corollary 3).
//!
//! Both rules are evaluated against a *snapshot* of `L_p`: the paper
//! specifies that masking of previously-known faults happens first, then
//! discovery runs on the resulting tree, then the newly discovered
//! processors' current-round messages are masked.

use sg_sim::ProcessId;

use crate::fault_list::FaultList;
use crate::resolve::{strict_majority, Converted};
use crate::tree::IgTree;

/// The outcome of running a discovery rule over a tree.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DiscoveryReport {
    /// Processors newly discovered faulty, ascending id order, excluding
    /// anything already in the snapshot list.
    pub discovered: Vec<ProcessId>,
    /// Local-computation charge (children inspected).
    pub ops: u64,
}

/// Evaluates the two discovery conditions for one internal node.
///
/// `children` are the node's child values (stored or converted),
/// `labels[j]` the processor labelling child `j`. Returns `true` if the
/// node's processor must be discovered.
fn node_violates<T: Eq + Copy>(
    children: &[T],
    labels: &[ProcessId],
    t: usize,
    snapshot: &FaultList,
) -> bool {
    match strict_majority(children) {
        None => true,
        Some(m) => {
            let budget = t.saturating_sub(snapshot.len());
            let dissent = children
                .iter()
                .zip(labels)
                .filter(|(v, q)| **v != m && !snapshot.contains(**q))
                .count();
            dissent > budget
        }
    }
}

/// The Fault Discovery Rule during Information Gathering, applied to the
/// parents of the tree's freshest level.
///
/// Only the parents of the deepest level are examined: every shallower
/// node's children are unchanged since the round in which they were
/// stored, so the rule was already evaluated for them then.
///
/// # Panics
///
/// Panics if the tree has fewer than two levels (there are no parents to
/// examine before round 2).
pub fn discover_ig(tree: &IgTree, t: usize, snapshot: &FaultList) -> DiscoveryReport {
    let deepest = tree.deepest_level();
    assert!(deepest >= 1, "discovery needs a stored child level");
    let shape = *tree.shape();
    let parent_level = deepest - 1;
    let fresh = tree.level(deepest);
    let width = shape.children_per_node(parent_level);

    let mut report = DiscoveryReport::default();
    let mut flagged = sg_sim::ProcessSet::new(shape.n());
    shape.visit_level(parent_level, &mut |i, path, labels| {
        let r = if parent_level == 0 {
            shape.source()
        } else {
            *path.last().expect("non-root path")
        };
        report.ops += width as u64;
        if snapshot.contains(r) || flagged.contains(r) {
            return;
        }
        let children = &fresh[i * width..(i + 1) * width];
        if node_violates(children, labels, t, snapshot) {
            flagged.insert(r);
            report.discovered.push(r);
        }
    });
    report.discovered.sort_unstable();
    report
}

/// Algorithm A's Fault Discovery Rule During Conversion, applied to every
/// internal node of a fully converted tree.
///
/// `converted` must come from [`crate::convert`] on `tree` (same shape).
///
/// # Panics
///
/// Panics if `converted` and `tree` disagree on depth.
pub fn discover_during_conversion(
    tree: &IgTree,
    converted: &Converted,
    t: usize,
    snapshot: &FaultList,
) -> DiscoveryReport {
    assert_eq!(
        converted.depth(),
        tree.deepest_level() + 1,
        "converted tree must match the gathered tree"
    );
    let shape = *tree.shape();
    let deepest = tree.deepest_level();
    let mut report = DiscoveryReport::default();
    let mut flagged = sg_sim::ProcessSet::new(shape.n());
    for k in 0..deepest {
        let width = shape.children_per_node(k);
        let child_level = converted.level(k + 1);
        shape.visit_level(k, &mut |i, path, labels| {
            let r = if k == 0 {
                shape.source()
            } else {
                *path.last().expect("non-root path")
            };
            report.ops += width as u64;
            if snapshot.contains(r) || flagged.contains(r) {
                return;
            }
            let children = &child_level[i * width..(i + 1) * width];
            if node_violates(children, labels, t, snapshot) {
                flagged.insert(r);
                report.discovered.push(r);
            }
        });
    }
    report.discovered.sort_unstable();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::{convert, Conversion};
    use sg_sim::Value;

    /// n = 5, t = 1 system; source P0. Level 1 = children of the root.
    fn tree_with_level1(vals: [u16; 4]) -> IgTree {
        let mut t = IgTree::new(5, ProcessId(0));
        t.set_root(Value(1));
        let mut it = vals.into_iter();
        t.append_level(|_, _| Value(it.next().unwrap()));
        t
    }

    #[test]
    fn no_majority_discovers_source() {
        // Children of the root split 2-2: no strict majority -> discover s.
        let t = tree_with_level1([1, 1, 0, 0]);
        let report = discover_ig(&t, 1, &FaultList::new(5));
        assert_eq!(report.discovered, vec![ProcessId(0)]);
    }

    #[test]
    fn small_dissent_tolerated() {
        // Majority 1 with a single dissenting child: 1 <= t - |L| = 1.
        let t = tree_with_level1([1, 1, 1, 0]);
        let report = discover_ig(&t, 1, &FaultList::new(5));
        assert!(report.discovered.is_empty());
    }

    #[test]
    fn dissent_over_budget_discovers() {
        // Majority 1 (3 of 4), one dissenter, but t - |L| = 0 because one
        // fault is already known.
        let t = tree_with_level1([1, 1, 1, 0]);
        let mut l = FaultList::new(5);
        l.insert(ProcessId(2), 1); // P2 already discovered
                                   // The dissenting child is the 4th (P4): not in L, so dissent 1 > 0.
        let report = discover_ig(&t, 1, &l);
        assert_eq!(report.discovered, vec![ProcessId(0)]);
    }

    #[test]
    fn dissent_from_known_faults_does_not_count() {
        // Same tree, but the dissenting child *is* the known fault.
        // Children order is P1, P2, P3, P4; dissenter is P2.
        let t = tree_with_level1([1, 0, 1, 1]);
        let mut l = FaultList::new(5);
        l.insert(ProcessId(2), 1);
        let report = discover_ig(&t, 1, &l);
        assert!(report.discovered.is_empty());
    }

    #[test]
    fn already_listed_processors_are_not_rediscovered() {
        let t = tree_with_level1([1, 1, 0, 0]);
        let mut l = FaultList::new(5);
        l.insert(ProcessId(0), 1); // source already known faulty
        let report = discover_ig(&t, 1, &l);
        assert!(report.discovered.is_empty());
    }

    #[test]
    fn deeper_level_blames_last_label() {
        // n=5: level 2 children of node s·P1 are P2, P3, P4.
        let mut t = tree_with_level1([1, 1, 1, 1]);
        let mut vals = vec![Value(1); 12];
        // Node s·P1 occupies parents index 0: children block 0..3.
        vals[0] = Value(1);
        vals[1] = Value(0);
        vals[2] = Value(2); // no majority among {1, 0, 2}
        let mut it = vals.into_iter();
        t.append_level(|_, _| it.next().unwrap());
        let report = discover_ig(&t, 1, &FaultList::new(5));
        assert_eq!(report.discovered, vec![ProcessId(1)]);
    }

    #[test]
    fn conversion_rule_sees_converted_values() {
        // Two-level tree where stored values are fine per node but the
        // converted values at level 1 split 2-2, blaming the source.
        let mut t = tree_with_level1([1, 1, 0, 0]);
        // Give each level-1 node unanimous children matching its value, so
        // only the root violates — and only under the conversion rule.
        let level1: Vec<Value> = t.level(1).to_vec();
        let shape = *t.shape();
        let mut vals = Vec::new();
        for (i, v) in level1.iter().enumerate() {
            for _ in 0..shape.children_per_node(1) {
                let _ = i;
                vals.push(*v);
            }
        }
        let mut it = vals.into_iter();
        t.append_level(|parent, _| {
            let _ = parent;
            it.next().unwrap()
        });
        // Fresh-level IG discovery on level 2 parents: all unanimous, fine.
        let ig = discover_ig(&t, 1, &FaultList::new(5));
        assert!(ig.discovered.is_empty());
        // Conversion discovery sees the 2-2 split at the root.
        let conv = convert(&t, Conversion::ResolvePrime { t: 1 });
        let report = discover_during_conversion(&t, &conv, 1, &FaultList::new(5));
        assert_eq!(report.discovered, vec![ProcessId(0)]);
    }

    #[test]
    fn ops_charged_per_child() {
        let t = tree_with_level1([1, 1, 1, 1]);
        let report = discover_ig(&t, 1, &FaultList::new(5));
        assert_eq!(report.ops, 4);
    }
}
