//! Shape arithmetic for information-gathering trees **without repetitions**
//! (paper §3, Fig. 1).
//!
//! Every correct processor's round-`h` tree has the same shape: the root is
//! the source `s`; an internal node `α` has one child per processor name
//! not appearing in `α` (so no label repeats along any root-to-leaf path).
//! Because the shape is common knowledge, nodes can be identified by dense
//! per-level indices and messages can be flat value vectors in canonical
//! order.
//!
//! **Canonical order.** Children of a node are ordered by ascending
//! processor id; levels are enumerated depth-first under that order, which
//! makes the children of the node at level `k`, index `i` exactly the
//! contiguous block `[i·w, (i+1)·w)` of level `k+1`, where
//! `w = n−1−k` is the per-node child count at level `k`.

use sg_sim::ProcessId;

/// Shape of the no-repetition information-gathering tree for a system of
/// `n` processors with a distinguished source.
///
/// Levels are numbered from 0: level 0 is the root (the sequence "s"),
/// level `k` holds all sequences `s·p₁⋯p_k` of distinct non-source names.
///
/// # Examples
///
/// ```
/// use sg_eigtree::Shape;
/// use sg_sim::ProcessId;
///
/// let shape = Shape::new(5, ProcessId(0));
/// assert_eq!(shape.level_size(0), 1);
/// assert_eq!(shape.level_size(1), 4);      // 4 non-source children
/// assert_eq!(shape.level_size(2), 4 * 3);
/// assert_eq!(shape.children_per_node(1), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Shape {
    n: usize,
    source: ProcessId,
}

impl Shape {
    /// Creates the shape for `n` processors with the given source.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the source index is out of range.
    pub fn new(n: usize, source: ProcessId) -> Self {
        assert!(n >= 2, "need at least two processors");
        assert!(source.index() < n, "source out of range");
        Shape { n, source }
    }

    /// System size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The source processor labelling the root.
    #[inline]
    pub fn source(&self) -> ProcessId {
        self.source
    }

    /// Number of children of each node at level `k`: `n−1−k`.
    ///
    /// The paper notes an internal node `α` has `n−|α| ≥ 2t+1` children;
    /// with `|α| = k+1` names (including `s`) that is `n−1−k`.
    #[inline]
    pub fn children_per_node(&self, k: usize) -> usize {
        debug_assert!(k < self.n - 1, "level {k} has no children (n={})", self.n);
        self.n - 1 - k
    }

    /// Number of nodes at level `k`: `(n−1)(n−2)⋯(n−k)`.
    pub fn level_size(&self, k: usize) -> usize {
        let mut size = 1usize;
        for j in 1..=k {
            size *= self.n - j;
        }
        size
    }

    /// Total nodes in a tree with levels `0..=deepest`.
    pub fn tree_size(&self, deepest: usize) -> usize {
        (0..=deepest).map(|k| self.level_size(k)).sum()
    }

    /// Parent index (at level `k−1`) of node `i` at level `k ≥ 1`.
    #[inline]
    pub fn parent(&self, k: usize, i: usize) -> usize {
        debug_assert!(k >= 1);
        i / (self.n - k)
    }

    /// The contiguous index range of the children (at level `k+1`) of node
    /// `i` at level `k`.
    #[inline]
    pub fn children_range(&self, k: usize, i: usize) -> std::ops::Range<usize> {
        let w = self.children_per_node(k);
        i * w..(i + 1) * w
    }

    /// Decodes the label path (names after `s`) of node `i` at level `k`.
    ///
    /// O(k·n); prefer [`Shape::visit_level`] for bulk enumeration.
    pub fn path(&self, k: usize, i: usize) -> Vec<ProcessId> {
        // Collect the slot of each ancestor bottom-up, then decode
        // top-down against the running set of used names.
        let mut slots = vec![0usize; k];
        let mut idx = i;
        for depth in (1..=k).rev() {
            slots[depth - 1] = idx % (self.n - depth);
            idx /= self.n - depth;
        }
        let mut used = vec![false; self.n];
        used[self.source.index()] = true;
        let mut path = Vec::with_capacity(k);
        for &slot in &slots {
            let label = self.nth_unused(&used, slot);
            used[label.index()] = true;
            path.push(label);
        }
        path
    }

    /// The index at level `path.len()` of the node with the given label
    /// path, or `None` if the path repeats a name or uses the source.
    pub fn index_of(&self, path: &[ProcessId]) -> Option<usize> {
        let mut used = vec![false; self.n];
        used[self.source.index()] = true;
        let mut idx = 0usize;
        for (depth, &label) in path.iter().enumerate() {
            if used[label.index()] {
                return None;
            }
            let rank = used[..label.index()].iter().filter(|&&u| !u).count();
            idx = idx * (self.n - 1 - depth) + rank;
            used[label.index()] = true;
        }
        Some(idx)
    }

    /// The labels of the children of a node with the given path, in
    /// canonical (ascending id) order.
    pub fn child_labels(&self, path: &[ProcessId]) -> Vec<ProcessId> {
        let mut used = vec![false; self.n];
        used[self.source.index()] = true;
        for &p in path {
            used[p.index()] = true;
        }
        (0..self.n).filter(|&i| !used[i]).map(ProcessId).collect()
    }

    /// The last label of the path of node `i` at level `k`; for the root
    /// (`k = 0`) this is the source.
    ///
    /// This is "the processor corresponding to the node" in the paper's
    /// terminology — the processor the Fault Discovery Rule blames.
    pub fn node_processor(&self, k: usize, i: usize) -> ProcessId {
        if k == 0 {
            self.source
        } else {
            *self.path(k, i).last().expect("k >= 1")
        }
    }

    /// Visits every node of level `k` in canonical order.
    ///
    /// The callback receives `(index, path, child_labels)` where
    /// `child_labels` are the labels of the node's children in canonical
    /// order. Enumeration is a depth-first walk, so the whole level costs
    /// O(level_size · n) instead of O(level_size · k · n) repeated decoding.
    pub fn visit_level<F>(&self, k: usize, f: &mut F)
    where
        F: FnMut(usize, &[ProcessId], &[ProcessId]),
    {
        let mut used = vec![false; self.n];
        used[self.source.index()] = true;
        let mut path = Vec::with_capacity(k);
        let mut next_index = 0usize;
        self.visit_rec(k, &mut used, &mut path, &mut next_index, f);
    }

    fn visit_rec<F>(
        &self,
        k: usize,
        used: &mut Vec<bool>,
        path: &mut Vec<ProcessId>,
        next_index: &mut usize,
        f: &mut F,
    ) where
        F: FnMut(usize, &[ProcessId], &[ProcessId]),
    {
        if path.len() == k {
            let labels: Vec<ProcessId> = (0..self.n).filter(|&i| !used[i]).map(ProcessId).collect();
            f(*next_index, path, &labels);
            *next_index += 1;
            return;
        }
        for i in 0..self.n {
            if !used[i] {
                used[i] = true;
                path.push(ProcessId(i));
                self.visit_rec(k, used, path, next_index, f);
                path.pop();
                used[i] = false;
            }
        }
    }

    fn nth_unused(&self, used: &[bool], rank: usize) -> ProcessId {
        let mut seen = 0usize;
        for (i, &u) in used.iter().enumerate() {
            if !u {
                if seen == rank {
                    return ProcessId(i);
                }
                seen += 1;
            }
        }
        panic!("rank {rank} out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> Shape {
        Shape::new(5, ProcessId(0))
    }

    #[test]
    fn level_sizes_are_falling_factorials() {
        let s = shape();
        assert_eq!(s.level_size(0), 1);
        assert_eq!(s.level_size(1), 4);
        assert_eq!(s.level_size(2), 12);
        assert_eq!(s.level_size(3), 24);
        assert_eq!(s.tree_size(2), 17);
    }

    #[test]
    fn path_and_index_roundtrip() {
        let s = shape();
        for k in 0..=3 {
            for i in 0..s.level_size(k) {
                let path = s.path(k, i);
                assert_eq!(path.len(), k);
                assert_eq!(s.index_of(&path), Some(i), "level {k} index {i}");
            }
        }
    }

    #[test]
    fn paths_have_no_repetitions_and_exclude_source() {
        let s = shape();
        for i in 0..s.level_size(3) {
            let path = s.path(3, i);
            let mut seen = std::collections::HashSet::new();
            for &p in &path {
                assert_ne!(p, s.source());
                assert!(seen.insert(p), "repeated label in {path:?}");
            }
        }
    }

    #[test]
    fn children_are_contiguous_and_labelled_consistently() {
        let s = shape();
        for i in 0..s.level_size(1) {
            let path = s.path(1, i);
            let labels = s.child_labels(&path);
            let range = s.children_range(1, i);
            assert_eq!(labels.len(), range.len());
            for (offset, &label) in labels.iter().enumerate() {
                let child_idx = range.start + offset;
                let mut child_path = path.clone();
                child_path.push(label);
                assert_eq!(s.path(2, child_idx), child_path);
                assert_eq!(s.parent(2, child_idx), i);
            }
        }
    }

    #[test]
    fn index_of_rejects_bad_paths() {
        let s = shape();
        // Repeats a label.
        assert_eq!(s.index_of(&[ProcessId(1), ProcessId(1)]), None);
        // Uses the source.
        assert_eq!(s.index_of(&[ProcessId(0)]), None);
    }

    #[test]
    fn visit_level_matches_decode() {
        let s = shape();
        for k in 0..=3 {
            let mut count = 0;
            s.visit_level(k, &mut |i, path, labels| {
                assert_eq!(i, count);
                assert_eq!(s.path(k, i), path);
                assert_eq!(s.child_labels(path), labels);
                count += 1;
            });
            assert_eq!(count, s.level_size(k));
        }
    }

    #[test]
    fn node_processor_is_last_label_or_source() {
        let s = shape();
        assert_eq!(s.node_processor(0, 0), ProcessId(0));
        let i = s.index_of(&[ProcessId(2), ProcessId(4)]).unwrap();
        assert_eq!(s.node_processor(2, i), ProcessId(4));
    }

    #[test]
    fn nonzero_source_shapes_work() {
        let s = Shape::new(4, ProcessId(2));
        for i in 0..s.level_size(2) {
            let path = s.path(2, i);
            assert!(!path.contains(&ProcessId(2)));
            assert_eq!(s.index_of(&path), Some(i));
        }
    }
}
