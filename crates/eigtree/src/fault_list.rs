//! The list `L_p` of processors a correct processor has discovered to be
//! faulty (paper §3).
//!
//! `L_p` starts empty, only ever grows, and — provided at most `t`
//! processors fail — contains only genuinely faulty processors (the paper
//! proves this invariant for the Fault Discovery Rule; our integration
//! tests check it on every execution).

use sg_sim::{ProcessId, ProcessSet};

/// A processor's knowledge of who is faulty, with discovery rounds.
///
/// # Examples
///
/// ```
/// use sg_eigtree::FaultList;
/// use sg_sim::ProcessId;
///
/// let mut l = FaultList::new(5);
/// assert!(l.insert(ProcessId(3), 2));
/// assert!(!l.insert(ProcessId(3), 4)); // already known
/// assert!(l.contains(ProcessId(3)));
/// assert_eq!(l.len(), 1);
/// assert_eq!(l.discovered_in(ProcessId(3)), Some(2));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultList {
    set: ProcessSet,
    rounds: Vec<Option<usize>>,
}

impl FaultList {
    /// An empty list over a system of `n` processors.
    pub fn new(n: usize) -> Self {
        FaultList {
            set: ProcessSet::new(n),
            rounds: vec![None; n],
        }
    }

    /// Empties the list in place for a system of `n` processors, reusing
    /// the storage when the size is unchanged (pooled instances).
    pub fn reset(&mut self, n: usize) {
        if self.set.universe() == n {
            self.set.clear();
            self.rounds.fill(None);
        } else {
            self.set = ProcessSet::new(n);
            self.rounds.clear();
            self.rounds.resize(n, None);
        }
    }

    /// Whether `p` has been discovered.
    #[inline]
    pub fn contains(&self, p: ProcessId) -> bool {
        self.set.contains(p)
    }

    /// Number of discovered processors, `|L_p|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether nothing has been discovered yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Records that `p` was discovered in `round`. Returns `true` if `p`
    /// was newly added. A processor already in the list stays with its
    /// original discovery round (re-detections are no-ops).
    pub fn insert(&mut self, p: ProcessId, round: usize) -> bool {
        if self.set.insert(p) {
            self.rounds[p.index()] = Some(round);
            true
        } else {
            false
        }
    }

    /// The round in which `p` was first discovered, if it ever was.
    pub fn discovered_in(&self, p: ProcessId) -> Option<usize> {
        self.rounds[p.index()]
    }

    /// The underlying set.
    pub fn as_set(&self) -> &ProcessSet {
        &self.set
    }

    /// Iterates over discovered processors in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.set.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_records_first_round_only() {
        let mut l = FaultList::new(4);
        assert!(l.insert(ProcessId(1), 3));
        assert!(!l.insert(ProcessId(1), 5));
        assert_eq!(l.discovered_in(ProcessId(1)), Some(3));
        assert_eq!(l.discovered_in(ProcessId(2)), None);
    }

    #[test]
    fn len_tracks_unique_members() {
        let mut l = FaultList::new(4);
        l.insert(ProcessId(0), 1);
        l.insert(ProcessId(2), 2);
        l.insert(ProcessId(0), 3);
        assert_eq!(l.len(), 2);
        let members: Vec<ProcessId> = l.iter().collect();
        assert_eq!(members, vec![ProcessId(0), ProcessId(2)]);
    }
}
