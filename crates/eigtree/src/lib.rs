//! # sg-eigtree — information-gathering trees and conversion machinery
//!
//! The data structures of the Shifting Gears paper (Bar-Noy, Dolev, Dwork
//! & Strong, Inf. & Comp. 97, 1992):
//!
//! * [`Shape`] / [`IgTree`] — the Information Gathering Tree *without
//!   repetitions* of §3 (Fig. 1), stored as flat per-level value vectors
//!   in a canonical order shared by every correct processor;
//! * [`RepTree`] — the three-level tree *with repetitions* of Algorithm C
//!   (§4.3), including leaf reordering;
//! * [`convert`] with [`Conversion::Resolve`] (recursive majority voting,
//!   §3) and [`Conversion::ResolvePrime`] (the `≥ t+1` unique-value rule
//!   with `⊥`, §4.2);
//! * [`discover_ig`] / [`discover_during_conversion`] — the Fault
//!   Discovery Rules of §3 and §4.2;
//! * [`FaultList`] — the lists `L_p`, backing the Fault Masking Rule;
//! * [`render_tree`] / [`tree_to_dot`] — Figure 1 reproduction (ASCII and Graphviz).
//!
//! # Examples
//!
//! Gather one round, convert, and read the preferred value:
//!
//! ```
//! use sg_eigtree::{convert, Conversion, IgTree, Res};
//! use sg_sim::{ProcessId, Value};
//!
//! let mut tree = IgTree::new(4, ProcessId(0));
//! tree.set_root(Value(1));
//! tree.append_level(|_parent, sender| {
//!     // P3 lies; P1 and P2 echo the truth.
//!     if sender == ProcessId(3) { Value(0) } else { Value(1) }
//! });
//! let converted = convert(&tree, Conversion::Resolve);
//! assert_eq!(converted.root(), Res::Val(Value(1)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod discovery;
mod fault_list;
mod render;
mod rep_tree;
mod resolve;
mod shape;
mod tree;

pub use discovery::{discover_during_conversion, discover_ig, DiscoveryReport};
pub use fault_list::FaultList;
pub use render::{render_tree, tree_to_dot};
pub use rep_tree::RepTree;
pub use resolve::{convert, convert_node, strict_majority, Conversion, Converted, Res};
pub use shape::Shape;
pub use tree::IgTree;
