//! The Information Gathering Tree **with repetitions** used by
//! Algorithm C (paper §4.3).
//!
//! Every internal node has exactly `n` children, one per processor name
//! (repetitions allowed), and the tree never grows beyond three levels:
//!
//! * level 0 — the root `s` (the preferred value);
//! * level 1 — the *intermediate vertices* `sq`, one per processor;
//! * level 2 — leaves `sqr`, stored transiently each round and folded back
//!   into the intermediate level by `shift_{3→2}`.
//!
//! After each gather the leaves are **reordered** by swapping
//! `tree(spq) ↔ tree(sqp)` — a transpose — so that the subtree under `sq`
//! holds exactly the vector received from `q`; conversion then sets
//! `tree(sq) = resolve(sq)`, a majority over that vector.

use sg_sim::{ProcessId, ProcessSet, Value};

use crate::discovery::DiscoveryReport;
use crate::fault_list::FaultList;
use crate::resolve::strict_majority;

/// One processor's three-level tree-with-repetitions.
///
/// # Examples
///
/// ```
/// use sg_eigtree::RepTree;
/// use sg_sim::{ProcessId, Value};
///
/// let mut tree = RepTree::new(4, ProcessId(0));
/// tree.set_root(Value(1));
/// // Round 2: everyone echoed the root.
/// tree.store_intermediates(|_q| Value(1));
/// assert_eq!(tree.preferred(), Value(1));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RepTree {
    n: usize,
    source: ProcessId,
    root: Value,
    intermediates: Option<Vec<Value>>,
    /// `leaves[w][r]` = the value `r` claims for intermediate vertex `sw`
    /// (before reordering).
    leaves: Option<Vec<Vec<Value>>>,
}

impl RepTree {
    /// An empty tree for `n` processors with the given source.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the source index is out of range.
    pub fn new(n: usize, source: ProcessId) -> Self {
        assert!(n >= 2, "need at least two processors");
        assert!(source.index() < n, "source out of range");
        RepTree {
            n,
            source,
            root: Value::DEFAULT,
            intermediates: None,
            leaves: None,
        }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Restores the tree to its just-constructed state for `n` processors
    /// and `source` (used by pooled protocol instances).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`RepTree::new`].
    pub fn reset(&mut self, n: usize, source: ProcessId) {
        assert!(n >= 2, "need at least two processors");
        assert!(source.index() < n, "source out of range");
        self.n = n;
        self.source = source;
        self.root = Value::DEFAULT;
        self.intermediates = None;
        self.leaves = None;
    }

    /// Stores the root (`tree(s)`), clearing deeper levels — also the
    /// entry point when the hybrid shifts into Algorithm C's round 1.
    pub fn set_root(&mut self, v: Value) {
        self.root = v;
        self.intermediates = None;
        self.leaves = None;
    }

    /// The root value.
    pub fn root(&self) -> Value {
        self.root
    }

    /// Whether the intermediate level exists yet (after round 2).
    pub fn has_intermediates(&self) -> bool {
        self.intermediates.is_some()
    }

    /// The intermediate vertex values `tree(sq)`, indexed by `q`.
    ///
    /// # Panics
    ///
    /// Panics before round 2 has stored them.
    pub fn intermediates(&self) -> &[Value] {
        self.intermediates.as_deref().expect("intermediates stored")
    }

    /// Round 2: stores `tree(sq)` for every `q` from the round's
    /// (sanitized, masked) messages. Returns the local-work charge.
    pub fn store_intermediates<F>(&mut self, mut value_for: F) -> u64
    where
        F: FnMut(ProcessId) -> Value,
    {
        let vals: Vec<Value> = (0..self.n).map(|q| value_for(ProcessId(q))).collect();
        self.intermediates = Some(vals);
        self.leaves = None;
        self.n as u64
    }

    /// Rounds ≥ 3: stores the leaf matrix. `value_for(w, r)` must return
    /// the (sanitized, masked) value `r` claims for intermediate vertex
    /// `sw`; for `r == me` callers pass their own `tree(sw)`.
    ///
    /// Returns the local-work charge.
    ///
    /// # Panics
    ///
    /// Panics if intermediates have not been stored yet.
    pub fn store_leaves<F>(&mut self, mut value_for: F) -> u64
    where
        F: FnMut(usize, ProcessId) -> Value,
    {
        assert!(self.intermediates.is_some(), "round 2 must precede leaves");
        let n = self.n;
        let mut leaves = Vec::with_capacity(n);
        for w in 0..n {
            leaves.push((0..n).map(|r| value_for(w, ProcessId(r))).collect());
        }
        self.leaves = Some(leaves);
        (n * n) as u64
    }

    /// Whether a leaf level is currently stored.
    pub fn has_leaves(&self) -> bool {
        self.leaves.is_some()
    }

    /// The leaf matrix (`[w][r]`), for tests and diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if no leaves are stored.
    pub fn leaves(&self) -> &[Vec<Value>] {
        self.leaves.as_deref().expect("leaves stored")
    }

    /// The Fault Discovery Rule applied to the root's fresh children — the
    /// intermediate level just stored in round 2. Can discover the source.
    pub fn discover_root(&self, t: usize, snapshot: &FaultList) -> DiscoveryReport {
        let vals = self.intermediates();
        let mut report = DiscoveryReport {
            ops: self.n as u64,
            ..DiscoveryReport::default()
        };
        if !snapshot.contains(self.source) && node_violates_rep(vals, t, snapshot) {
            report.discovered.push(self.source);
        }
        report
    }

    /// The Fault Discovery Rule applied to the fresh leaf level: node `sw`
    /// blames `w` (the paper's `αr` with `r = w`). Pre-reorder only.
    ///
    /// # Panics
    ///
    /// Panics if no leaves are stored.
    pub fn discover_intermediates(&self, t: usize, snapshot: &FaultList) -> DiscoveryReport {
        let leaves = self.leaves.as_ref().expect("leaves stored");
        let mut report = DiscoveryReport::default();
        for (w, row) in leaves.iter().enumerate() {
            report.ops += self.n as u64;
            let wid = ProcessId(w);
            if snapshot.contains(wid) {
                continue;
            }
            if node_violates_rep(row, t, snapshot) {
                report.discovered.push(wid);
            }
        }
        report
    }

    /// Masks the round-2 messages of newly discovered processors: their
    /// intermediate entries become the default value.
    pub fn mask_intermediates(&mut self, newly: &ProcessSet) -> u64 {
        let Some(vals) = self.intermediates.as_mut() else {
            return 0;
        };
        for q in newly.iter() {
            vals[q.index()] = Value::DEFAULT;
        }
        newly.len() as u64
    }

    /// Masks the current round's messages of newly discovered processors:
    /// every leaf received from them becomes the default value.
    pub fn mask_leaves(&mut self, newly: &ProcessSet) -> u64 {
        let Some(leaves) = self.leaves.as_mut() else {
            return 0;
        };
        let mut ops = 0u64;
        for row in leaves.iter_mut() {
            for r in newly.iter() {
                row[r.index()] = Value::DEFAULT;
                ops += 1;
            }
        }
        ops
    }

    /// Reorders the leaves by swapping `tree(spq) ↔ tree(sqp)` — after
    /// this, row `q` holds exactly the vector received from `q`.
    ///
    /// # Panics
    ///
    /// Panics if no leaves are stored.
    pub fn reorder(&mut self) -> u64 {
        let leaves = self.leaves.as_mut().expect("leaves stored");
        let n = self.n;
        for p in 0..n {
            for q in (p + 1)..n {
                let tmp = leaves[p][q];
                leaves[p][q] = leaves[q][p];
                leaves[q][p] = tmp;
            }
        }
        (n * n / 2) as u64
    }

    /// `shift_{3→2}`: sets `tree(sq) = resolve(sq)` for every `q` (a strict
    /// majority over row `q`, default on none) and drops the leaf level.
    ///
    /// # Panics
    ///
    /// Panics if no leaves are stored.
    pub fn convert_to_intermediates(&mut self) -> u64 {
        let leaves = self.leaves.take().expect("leaves stored");
        let mut ops = 0u64;
        let vals: Vec<Value> = leaves
            .iter()
            .map(|row| {
                ops += row.len() as u64;
                strict_majority(row).unwrap_or(Value::DEFAULT)
            })
            .collect();
        self.intermediates = Some(vals);
        ops
    }

    /// The preferred value: `resolve(s)` over the intermediate vertices (a
    /// strict majority, default on none), or the root itself before
    /// round 2.
    pub fn preferred(&self) -> Value {
        match &self.intermediates {
            Some(vals) => strict_majority(vals).unwrap_or(Value::DEFAULT),
            None => self.root,
        }
    }

    /// Live node count for space accounting.
    pub fn node_count(&self) -> u64 {
        let mut count = 1u64;
        if self.intermediates.is_some() {
            count += self.n as u64;
        }
        if self.leaves.is_some() {
            count += (self.n * self.n) as u64;
        }
        count
    }
}

/// Discovery conditions for a with-repetitions node whose children are
/// labelled `0..n` in order.
fn node_violates_rep(children: &[Value], t: usize, snapshot: &FaultList) -> bool {
    match strict_majority(children) {
        None => true,
        Some(m) => {
            let budget = t.saturating_sub(snapshot.len());
            let dissent = children
                .iter()
                .enumerate()
                .filter(|(q, v)| **v != m && !snapshot.contains(ProcessId(*q)))
                .count();
            dissent > budget
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> RepTree {
        let mut t = RepTree::new(4, ProcessId(0));
        t.set_root(Value(1));
        t
    }

    #[test]
    fn preferred_is_root_before_round_2() {
        assert_eq!(tree().preferred(), Value(1));
    }

    #[test]
    fn preferred_is_majority_of_intermediates() {
        let mut t = tree();
        t.store_intermediates(|q| Value(u16::from(q.index() != 3)));
        assert_eq!(t.preferred(), Value(1)); // 3 of 4
        t.store_intermediates(|q| Value(u16::from(q.index() % 2 == 0)));
        assert_eq!(t.preferred(), Value::DEFAULT); // 2-2 tie
    }

    #[test]
    fn reorder_transposes() {
        let mut t = tree();
        t.store_intermediates(|_| Value(1));
        t.store_leaves(|w, r| Value((w * 4 + r.index()) as u16));
        t.reorder();
        for w in 0..4 {
            for r in 0..4 {
                assert_eq!(t.leaves()[w][r], Value((r * 4 + w) as u16));
            }
        }
    }

    #[test]
    fn convert_takes_row_majorities() {
        let mut t = tree();
        t.store_intermediates(|_| Value(1));
        // Row w: w=0 unanimous 1; w=1 split 2-2; w=2 majority 0; w=3 unanimous 0.
        let rows = [[1, 1, 1, 1], [1, 1, 0, 0], [0, 0, 0, 1], [0, 0, 0, 0]];
        t.store_leaves(|w, r| Value(rows[w][r.index()]));
        t.convert_to_intermediates();
        assert_eq!(
            t.intermediates(),
            &[Value(1), Value::DEFAULT, Value(0), Value(0)]
        );
        assert!(!t.has_leaves());
    }

    #[test]
    fn discover_root_blames_source_on_split() {
        let mut t = tree();
        t.store_intermediates(|q| Value(u16::from(q.index() % 2 == 0)));
        let report = t.discover_root(1, &FaultList::new(4));
        assert_eq!(report.discovered, vec![ProcessId(0)]);
    }

    #[test]
    fn discover_intermediates_blames_equivocator() {
        let mut t = tree();
        t.store_intermediates(|_| Value(1));
        // Node s·P2's children split 2-2 -> blame P2; others unanimous.
        t.store_leaves(|w, r| {
            if w == 2 {
                Value(u16::from(r.index() % 2 == 0))
            } else {
                Value(1)
            }
        });
        let report = t.discover_intermediates(1, &FaultList::new(4));
        assert_eq!(report.discovered, vec![ProcessId(2)]);
    }

    #[test]
    fn known_faults_not_rediscovered_and_dissent_excluded() {
        let mut t = tree();
        t.store_intermediates(|_| Value(1));
        let mut l = FaultList::new(4);
        l.insert(ProcessId(3), 2);
        // Node s·P1: single dissent from the known fault P3 -> no discovery
        // (budget is t-|L| = 0, but P3's dissent doesn't count).
        t.store_leaves(|w, r| {
            if w == 1 && r == ProcessId(3) {
                Value(0)
            } else {
                Value(1)
            }
        });
        let report = t.discover_intermediates(1, &l);
        assert!(report.discovered.is_empty());
    }

    #[test]
    fn masking_zeroes_rows_and_columns() {
        let mut t = tree();
        t.store_intermediates(|_| Value(1));
        t.store_leaves(|_, _| Value(1));
        let newly = ProcessSet::from_members(4, [ProcessId(2)]);
        t.mask_leaves(&newly);
        for w in 0..4 {
            assert_eq!(t.leaves()[w][2], Value::DEFAULT);
            assert_eq!(t.leaves()[w][1], Value(1));
        }
        let mut t2 = tree();
        t2.store_intermediates(|_| Value(1));
        t2.mask_intermediates(&newly);
        assert_eq!(t2.intermediates()[2], Value::DEFAULT);
        assert_eq!(t2.intermediates()[1], Value(1));
    }

    #[test]
    fn node_count_tracks_levels() {
        let mut t = tree();
        assert_eq!(t.node_count(), 1);
        t.store_intermediates(|_| Value(1));
        assert_eq!(t.node_count(), 5);
        t.store_leaves(|_, _| Value(1));
        assert_eq!(t.node_count(), 21);
        t.convert_to_intermediates();
        assert_eq!(t.node_count(), 5);
    }
}
