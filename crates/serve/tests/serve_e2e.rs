//! End-to-end determinism: grids submitted through a live daemon must
//! reproduce the batch path bit for bit.

use std::time::Duration;

use sg_adversary::FaultSelection;
use sg_analysis::{AdversaryFamily, SweepConfig, SweepPlan};
use sg_core::AlgorithmSpec;
use sg_serve::{serve, Bind, Client, ServeOptions};

fn quick_plan() -> SweepPlan {
    SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
            SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::no_faults(),
        ],
        10,
    )
}

fn start(workers: usize) -> (sg_serve::ServerHandle, String) {
    let handle = serve(
        &Bind::Tcp("127.0.0.1:0".to_string()),
        ServeOptions {
            workers,
            quantum: 4,
            ..ServeOptions::default()
        },
    )
    .expect("bind daemon");
    let addr = handle.tcp_addr().expect("tcp addr").to_string();
    (handle, addr)
}

fn connect(addr: &str) -> Client {
    Client::connect(addr, Duration::from_secs(10)).expect("connect")
}

#[test]
fn streamed_report_is_bit_identical_to_batch() {
    let plan = quick_plan();
    let batch = plan.run_with_jobs(2);

    let (handle, addr) = start(2);
    let mut client = connect(&addr);
    let mut seen = Vec::new();
    let job = client.submit(&plan).expect("submit");
    assert_eq!(job.cells, plan.cell_count());
    assert_eq!(job.total_runs, plan.total_runs());
    let streamed = client
        .collect(job, |index, _| seen.push(index))
        .expect("collect");

    // Cells streamed in grid order, every one of them.
    assert_eq!(seen, (0..plan.cell_count()).collect::<Vec<_>>());
    // The whole report — samples, summaries, statistics — is the batch
    // report, byte for byte; the fingerprint follows.
    assert_eq!(streamed.report, batch);
    assert_eq!(streamed.fingerprint, batch.fingerprint());
    handle.shutdown();
}

#[test]
fn two_interleaved_jobs_each_match_their_solo_runs() {
    // One worker forces the scheduler to genuinely interleave the two
    // jobs' cells rather than running them on disjoint threads.
    let (handle, addr) = start(1);

    let plan_a = quick_plan();
    let plan_b = SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::PhaseQueen, 9, 2)],
        vec![
            AdversaryFamily::chain_revealer(FaultSelection::without_source(), 2, 2),
            AdversaryFamily::random_liar(FaultSelection::with_source()),
        ],
        12,
    )
    .with_base_seed(99);
    let solo_a = plan_a.run_with_jobs(1);
    let solo_b = plan_b.run_with_jobs(1);

    // Submit both before collecting either, so the daemon holds both
    // active at once and round-robins their cells on the single worker.
    let mut client_a = connect(&addr);
    let mut client_b = connect(&addr);
    let job_a = client_a.submit(&plan_a).expect("submit a");
    let job_b = client_b.submit(&plan_b).expect("submit b");

    let streamed_b = client_b.collect(job_b, |_, _| {}).expect("collect b");
    let streamed_a = client_a.collect(job_a, |_, _| {}).expect("collect a");

    assert_eq!(streamed_a.report, solo_a);
    assert_eq!(streamed_b.report, solo_b);
    assert_eq!(streamed_a.fingerprint, solo_a.fingerprint());
    assert_eq!(streamed_b.fingerprint, solo_b.fingerprint());
    handle.shutdown();
}

#[test]
fn one_connection_can_run_jobs_back_to_back() {
    let (handle, addr) = start(2);
    let mut client = connect(&addr);
    let plan = quick_plan();
    let first = client.submit_and_collect(&plan).expect("first");
    let second = client.submit_and_collect(&plan).expect("second");
    assert_eq!(first.report, second.report);
    assert!(second.job > first.job);
    client.ping().expect("still alive");
    handle.shutdown();
}

#[test]
fn load_harness_under_gentle_chaos_keeps_fingerprints_exact() {
    // The hammer end to end at smoke scale: several connections, half of
    // them through a fault-injecting proxy, against one daemon. Whatever
    // the chaos does to individual connections, every job that *does*
    // complete must carry the batch-path fingerprint — the same
    // determinism contract the rest of this file pins, now under load.
    let report = sg_serve::run_load(&sg_serve::LoadOptions {
        connections: 4,
        jobs_per_connection: 2,
        seeds_per_cell: 12,
        workers: 2,
        chaos: Some(sg_serve::ChaosSpec::gentle(7)),
        ..sg_serve::LoadOptions::default()
    });
    assert_eq!(report.fingerprint_mismatches, 0, "{report:?}");
    assert!(report.jobs_completed > 0, "{report:?}");
    assert_eq!(
        report.jobs_submitted,
        report.jobs_completed + report.jobs_rejected + report.jobs_deadline + report.jobs_faulted,
        "{report:?}"
    );
    // The artifact parses as the committed schema.
    let json = report.to_json_string();
    assert!(json.contains("\"schema\": \"sg-serve-load/1\""), "{json}");
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_works() {
    let dir = std::env::temp_dir().join(format!("sg-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let sock = dir.join("daemon.sock");
    let handle = serve(&Bind::Unix(sock.clone()), ServeOptions::default()).expect("bind unix");
    let mut client = connect(&format!("unix:{}", sock.display()));
    client.ping().expect("ping over unix socket");
    let plan = quick_plan();
    let streamed = client.submit_and_collect(&plan).expect("submit over unix");
    assert_eq!(streamed.report, plan.run_with_jobs(1));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn widened_families_and_trace_plans_travel_the_wire_bit_exactly() {
    // The widened fault vocabulary (link cuts, omission patterns,
    // equivocation schedules, adaptive corruption) plus a recorded-trace
    // replay family, submitted through a live daemon: the streamed
    // report must be the batch report bit for bit, which means every one
    // of these families round-trips `sg-serve/1` and replays
    // deterministically inside the server's pooled workers.
    let sel = FaultSelection::without_source();
    let (scenario, _) = sg_analysis::scenario::record(
        &SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
        Box::new(sg_adversary::Equivocate::new(
            FaultSelection::with_source(),
            3,
            1,
        )),
    )
    .expect("recordable strategy");
    let plan = SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
        vec![
            AdversaryFamily::partition(sel.clone().limit(1), 1, 2, 3),
            AdversaryFamily::omission(sel.clone(), 2, 0),
            AdversaryFamily::equivocate(sel.clone(), 3, 1),
            AdversaryFamily::adaptive(sel, vec![2, 4]),
            AdversaryFamily::replay(scenario.trace).expect("recorded trace validates"),
        ],
        8,
    );
    let batch = plan.run_with_jobs(2);

    let (handle, addr) = start(2);
    let mut client = connect(&addr);
    let streamed = client.submit_and_collect(&plan).expect("submit");
    assert_eq!(streamed.report, batch);
    assert_eq!(streamed.fingerprint, batch.fingerprint());
    handle.shutdown();
}
