//! Protocol robustness: malformed input gets structured errors and the
//! daemon keeps serving; cancellation stops the cell stream.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::json::Value as Json;
use serde::FromJson;
use sg_adversary::FaultSelection;
use sg_analysis::{AdversaryFamily, SweepConfig, SweepPlan};
use sg_core::AlgorithmSpec;
use sg_serve::{
    serve, Bind, ChaosProxy, ChaosSpec, Client, ErrorCode, Frame, RejectCode, Request, RetryPolicy,
    ServeError, ServeOptions,
};

fn start() -> (sg_serve::ServerHandle, String) {
    start_with(ServeOptions {
        workers: 1,
        quantum: 2,
        ..ServeOptions::default()
    })
}

fn start_with(options: ServeOptions) -> (sg_serve::ServerHandle, String) {
    let handle = serve(&Bind::Tcp("127.0.0.1:0".to_string()), options).expect("bind daemon");
    let addr = handle.tcp_addr().expect("tcp addr").to_string();
    (handle, addr)
}

/// A raw NDJSON connection, for speaking deliberately broken frames.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: &str) -> Raw {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Raw { reader, writer }
    }

    fn send_line(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn read_frame(&mut self) -> Frame {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        assert!(!line.is_empty(), "server closed unexpectedly");
        Frame::from_json(&Json::parse(line.trim()).expect("frame json")).expect("frame decode")
    }
}

#[test]
fn malformed_lines_get_structured_errors_and_the_daemon_survives() {
    let (handle, addr) = start();
    let mut raw = Raw::connect(&addr);

    // Truncated frame (cut off mid-document), binary garbage, valid
    // JSON that is not a request, unknown op, wrong proto: each answers
    // with a structured error naming the failure class...
    for (line, want) in [
        (
            "{\"op\":\"submit\",\"plan\":{\"configs\"",
            ErrorCode::BadJson,
        ),
        ("\u{1}\u{2}garbage", ErrorCode::BadJson),
        ("[1,2,3]", ErrorCode::BadRequest),
        ("{\"op\":\"warp\"}", ErrorCode::BadRequest),
        ("{\"op\":\"submit\"}", ErrorCode::BadRequest),
        ("{\"op\":\"cancel\",\"job\":-3}", ErrorCode::BadRequest),
        (
            "{\"op\":\"ping\",\"proto\":\"sg-serve/99\"}",
            ErrorCode::UnsupportedProto,
        ),
    ] {
        raw.send_line(line);
        match raw.read_frame() {
            Frame::Error { code, detail, .. } => {
                assert_eq!(code, want, "for line {line:?} ({detail})")
            }
            other => panic!("expected error for {line:?}, got {other:?}"),
        }
    }

    // ...and the connection (and daemon) keep working afterwards. A
    // journal-less daemon pongs zero lifetime journal counters.
    raw.send_line("{\"op\":\"ping\"}");
    assert_eq!(
        raw.read_frame(),
        Frame::Pong {
            journal_hits: 0,
            journal_misses: 0,
        }
    );

    let mut fresh = Client::connect(&addr, Duration::from_secs(5)).expect("fresh connection");
    fresh.ping().expect("daemon still serving");
    handle.shutdown();
}

#[test]
fn rejected_plans_and_unknown_jobs_are_structured_errors() {
    let (handle, addr) = start();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");

    // An (n, t) the algorithm cannot run is rejected at submit time.
    let invalid = SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 3)],
        vec![AdversaryFamily::no_faults()],
        5,
    );
    match client.submit(&invalid) {
        Err(ServeError::Server { code, .. }) => assert_eq!(code, ErrorCode::Rejected),
        other => panic!("expected rejection, got {other:?}"),
    }

    // Cancelling a job that does not exist on this connection.
    client.cancel(12345).expect("send cancel");
    match client.next_frame().expect("frame") {
        Frame::Error { code, job, .. } => {
            assert_eq!(code, ErrorCode::UnknownJob);
            assert_eq!(job, Some(12345));
        }
        other => panic!("expected unknown-job, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn cancellation_mid_grid_stops_the_cell_stream() {
    let (handle, addr) = start();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");

    // Many cells, enough seeds each that the single worker is still
    // mid-grid when the cancel lands right after the first cell frame.
    let plan = SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
            SweepConfig::traced(AlgorithmSpec::PhaseKing, 9, 2),
            SweepConfig::traced(AlgorithmSpec::PhaseQueen, 9, 2),
            SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::chain_revealer(FaultSelection::without_source(), 2, 2),
            AdversaryFamily::no_faults(),
        ],
        400,
    );
    let job = client.submit(&plan).expect("submit");
    assert_eq!(job.cells, 12);

    // Wait for the first streamed cell, then cancel.
    let first = client.next_frame().expect("first cell");
    assert!(
        matches!(first, Frame::Cell { index: 0, .. }),
        "expected cell 0, got {first:?}"
    );
    client.cancel(job.job).expect("cancel");

    // The stream must end with a cancelled frame after at most a few
    // more in-flight cells — nowhere near all 12.
    let mut extra_cells = 0usize;
    loop {
        match client.next_frame().expect("frame") {
            Frame::Cell { .. } => extra_cells += 1,
            Frame::Cancelled {
                job: id,
                cells_streamed,
            } => {
                assert_eq!(id, job.job);
                assert_eq!(cells_streamed, 1 + extra_cells);
                break;
            }
            Frame::Summary { .. } => panic!("job ran to completion despite cancel"),
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(
        extra_cells < job.cells - 1,
        "cancel stopped nothing: {extra_cells} cells streamed after it"
    );

    // The connection is still good for new work.
    client.ping().expect("ping after cancel");
    let small = SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
        vec![AdversaryFamily::no_faults()],
        3,
    );
    let streamed = client.submit_and_collect(&small).expect("post-cancel job");
    assert_eq!(streamed.report, small.run_with_jobs(1));
    handle.shutdown();
}

#[test]
fn shutdown_closes_streaming_clients_instead_of_stranding_them() {
    let (handle, addr) = start();
    let mut streaming = Client::connect(&addr, Duration::from_secs(5)).expect("connect");

    // A big grid keeps the single worker busy well past the shutdown.
    let big = SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
            SweepConfig::traced(AlgorithmSpec::PhaseKing, 9, 2),
            SweepConfig::traced(AlgorithmSpec::PhaseQueen, 9, 2),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::no_faults(),
        ],
        500,
    );
    let job = streaming.submit(&big).expect("submit");

    // Another client shuts the daemon down while the first is
    // mid-stream: the first must see its connection close (an error
    // from collect), not block forever waiting for cells.
    let mut other = Client::connect(&addr, Duration::from_secs(5)).expect("second connection");
    other.shutdown_server().expect("bye");

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let drain = std::thread::spawn(move || {
        let outcome = streaming.collect(job, |_, _| {});
        let _ = done_tx.send(());
        outcome
    });
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("streaming client still blocked 30s after daemon shutdown");
    assert!(
        drain.join().expect("drain thread").is_err(),
        "a shut-down daemon cannot have completed the big grid"
    );
    handle.shutdown();
}

#[test]
fn shutdown_op_stops_the_daemon() {
    let (handle, addr) = start();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    client.shutdown_server().expect("bye");
    // New connections are refused (or die unanswered) once stopped;
    // allow a moment for the accept loop to wind down.
    std::thread::sleep(Duration::from_millis(100));
    let mut alive = false;
    if let Ok(mut probe) = Client::connect(&addr, Duration::from_millis(200)) {
        alive = probe.ping().is_ok();
    }
    assert!(!alive, "daemon still answering after shutdown");
    handle.shutdown();
}

/// A grid slow enough that a single worker is still mid-stream when the
/// test reacts to its first frames.
fn slow_plan() -> SweepPlan {
    SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
            SweepConfig::traced(AlgorithmSpec::PhaseKing, 9, 2),
            SweepConfig::traced(AlgorithmSpec::PhaseQueen, 9, 2),
            SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::chain_revealer(FaultSelection::without_source(), 2, 2),
            AdversaryFamily::no_faults(),
        ],
        400,
    )
}

fn tiny_plan() -> SweepPlan {
    SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
        vec![AdversaryFamily::no_faults()],
        3,
    )
}

fn quick_plan() -> SweepPlan {
    SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
            SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::no_faults(),
        ],
        10,
    )
}

#[test]
fn saturated_daemon_rejects_promptly_with_a_retry_hint() {
    // One job slot: the second submit must bounce immediately — while
    // the first job is still streaming — with code `saturated` and a
    // deterministic retry hint, and succeed on bounded retry once the
    // slot frees up.
    let (handle, addr) = start_with(ServeOptions {
        workers: 1,
        quantum: 2,
        max_jobs: 1,
        ..ServeOptions::default()
    });
    let mut busy = Client::connect(&addr, Duration::from_secs(5)).expect("connect busy");
    let mut turned_away = Client::connect(&addr, Duration::from_secs(5)).expect("connect second");

    let job = busy.submit(&slow_plan()).expect("first job fits");
    match turned_away.submit(&tiny_plan()) {
        Err(ServeError::Rejected {
            code,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(code, RejectCode::Saturated);
            assert!(
                retry_after_ms.is_some_and(|ms| (10..=2_000).contains(&ms)),
                "retry hint missing or wild: {retry_after_ms:?}"
            );
        }
        other => panic!("expected saturated rejection, got {other:?}"),
    }

    // Free the slot and let the bounded retry loop land the job.
    busy.cancel(job.job).expect("cancel");
    match busy.collect(job, |_, _| {}) {
        Err(ServeError::Cancelled { .. }) => {}
        other => panic!("expected cancellation, got {other:?}"),
    }
    let policy = RetryPolicy {
        attempts: 10,
        ..RetryPolicy::deterministic(7)
    };
    let retried = turned_away
        .submit_with_retry(&tiny_plan(), None, &policy)
        .expect("retry after slot freed");
    let streamed = turned_away.collect(retried, |_, _| {}).expect("collect");
    assert_eq!(streamed.report, tiny_plan().run_with_jobs(1));
    handle.shutdown();
}

#[test]
fn queued_runs_cap_bounds_the_backlog() {
    let (handle, addr) = start_with(ServeOptions {
        workers: 1,
        quantum: 2,
        max_queued_runs: 100,
        ..ServeOptions::default()
    });
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");

    // slow_plan() is 12 cells × 400 seeds = 4800 runs ≫ 100: too much
    // backlog even for an idle daemon.
    match client.submit(&slow_plan()) {
        Err(ServeError::Rejected { code, .. }) => assert_eq!(code, RejectCode::Saturated),
        other => panic!("expected saturated rejection, got {other:?}"),
    }
    // 3 runs fit, and the rejection cost nothing: the budget is intact.
    let streamed = client.submit_and_collect(&tiny_plan()).expect("small job");
    assert_eq!(streamed.report, tiny_plan().run_with_jobs(1));
    handle.shutdown();
}

#[test]
fn per_connection_inflight_cap_is_enforced() {
    let (handle, addr) = start_with(ServeOptions {
        workers: 1,
        quantum: 2,
        max_jobs_per_conn: 1,
        ..ServeOptions::default()
    });
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    let job = client.submit(&slow_plan()).expect("first job");
    match client.submit(&tiny_plan()) {
        Err(ServeError::Rejected { code, detail, .. }) => {
            assert_eq!(code, RejectCode::Saturated);
            assert!(detail.contains("connection"), "detail was: {detail}");
        }
        other => panic!("expected per-connection rejection, got {other:?}"),
    }
    client.cancel(job.job).expect("cancel");
    assert!(matches!(
        client.collect(job, |_, _| {}),
        Err(ServeError::Cancelled { .. })
    ));
    // With the stream finished the slot is back.
    client
        .submit_and_collect(&tiny_plan())
        .expect("after slot freed");
    handle.shutdown();
}

#[test]
fn deadline_exceeded_mid_grid_leaves_streamed_cells_valid() {
    let (handle, addr) = start_with(ServeOptions {
        workers: 1,
        quantum: 2,
        ..ServeOptions::default()
    });
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    // 24 000 runs: far more than any machine clears in 60 ms, so the
    // deadline always lands mid-grid.
    let plan = SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
            SweepConfig::traced(AlgorithmSpec::PhaseKing, 9, 2),
            SweepConfig::traced(AlgorithmSpec::PhaseQueen, 9, 2),
            SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::chain_revealer(FaultSelection::without_source(), 2, 2),
            AdversaryFamily::no_faults(),
        ],
        2_000,
    );
    let batch = plan.run_with_jobs(1);

    let job = client
        .submit_with_deadline(&plan, Some(60))
        .expect("submit with deadline");
    let mut streamed_cells = Vec::new();
    match client.collect(job, |index, cell| {
        streamed_cells.push((index, cell.clone()))
    }) {
        Err(ServeError::Server { code, detail }) => {
            assert_eq!(code, ErrorCode::DeadlineExceeded, "detail: {detail}");
        }
        Ok(_) => panic!("a 60 ms deadline cannot cover a 24 000-run grid"),
        other => panic!("expected deadline-exceeded, got {other:?}"),
    }
    assert!(
        streamed_cells.len() < plan.cell_count(),
        "every cell streamed despite the deadline"
    );
    // The partial prefix is the batch prefix, bit for bit.
    for (index, cell) in &streamed_cells {
        assert_eq!(cell, &batch.cells[*index], "cell {index} diverged");
    }

    // The connection survives the error and takes new work.
    client.ping().expect("ping after deadline");
    let streamed = client.submit_and_collect(&tiny_plan()).expect("next job");
    assert_eq!(streamed.report, tiny_plan().run_with_jobs(1));
    handle.shutdown();
}

#[test]
fn drain_finishes_running_jobs_and_rejects_new_submits() {
    let (handle, addr) = start_with(ServeOptions {
        workers: 1,
        quantum: 8,
        ..ServeOptions::default()
    });
    let mut running = Client::connect(&addr, Duration::from_secs(5)).expect("connect running");
    let mut admin = Client::connect(&addr, Duration::from_secs(5)).expect("connect admin");

    // Slow enough that the drain demonstrably lands mid-job.
    let plan = slow_plan();
    let job = running.submit(&plan).expect("submit before drain");

    admin.send(&Request::Drain).expect("send drain");
    match admin.next_frame().expect("drain ack") {
        Frame::Draining { active_jobs } => assert_eq!(active_jobs, 1),
        other => panic!("expected draining ack, got {other:?}"),
    }
    // Submit-after-drain: structured rejection, not a hang or a kill.
    match admin.submit(&tiny_plan()) {
        Err(ServeError::Rejected {
            code,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(code, RejectCode::Draining);
            assert_eq!(retry_after_ms, None, "draining is not a retry-later");
        }
        other => panic!("expected draining rejection, got {other:?}"),
    }

    // The running job still completes, bit-exact.
    let streamed = running
        .collect(job, |_, _| {})
        .expect("drain lets it finish");
    assert_eq!(streamed.report, plan.run_with_jobs(1));

    // With the last job done the daemon stops: bye on the stream, then
    // no new connections.
    match running.next_frame() {
        Ok(Frame::Bye) | Err(ServeError::Io(_)) => {}
        other => panic!("expected bye/EOF after drain completes, got {other:?}"),
    }
    std::thread::sleep(Duration::from_millis(100));
    let mut alive = false;
    if let Ok(mut probe) = Client::connect(&addr, Duration::from_millis(200)) {
        alive = probe.ping().is_ok();
    }
    assert!(!alive, "daemon still answering after drain completed");
    handle.shutdown();
}

#[test]
fn drain_on_an_idle_daemon_stops_it_immediately() {
    let (handle, addr) = start();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    client.send(&Request::Drain).expect("send drain");
    match client.next_frame().expect("ack") {
        Frame::Draining { active_jobs } => assert_eq!(active_jobs, 0),
        other => panic!("expected draining ack, got {other:?}"),
    }
    match client.next_frame() {
        Ok(Frame::Bye) | Err(ServeError::Io(_)) => {}
        other => panic!("expected bye after idle drain, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn truncated_frames_mid_job_kill_one_connection_not_the_daemon() {
    let (handle, addr) = start();
    // A proxy that truncates *every* line mid-bytes and tears the
    // connection down: whatever reaches the daemon is malformed JSON,
    // and whatever comes back dies on the wire.
    let spec = ChaosSpec {
        truncate_per_mille: 1_000,
        ..ChaosSpec::hostile(3)
    };
    let proxy =
        ChaosProxy::spawn(addr.parse().expect("daemon addr"), spec).expect("spawn chaos proxy");

    let mut doomed = Client::connect(&proxy.addr().to_string(), Duration::from_secs(5))
        .expect("connect via proxy");
    match doomed.submit(&tiny_plan()) {
        Err(ServeError::Io(_) | ServeError::Protocol(_)) => {}
        other => panic!("a fully-truncating wire cannot deliver an accept: {other:?}"),
    }

    // The daemon shrugged it off: a direct client still gets bit-exact
    // results.
    let mut direct = Client::connect(&addr, Duration::from_secs(5)).expect("direct connect");
    let streamed = direct.submit_and_collect(&tiny_plan()).expect("direct job");
    assert_eq!(
        streamed.fingerprint,
        tiny_plan().run_with_jobs(1).fingerprint()
    );
    handle.shutdown();
}

/// Shrinks a socket's receive buffer to the kernel minimum, so a
/// non-reading peer jams the sender after a few KB instead of the
/// multi-megabyte loopback default — the slow-loris test's way of
/// making the stall happen fast.
#[cfg(unix)]
fn clamp_recv_buffer(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const core::ffi::c_void,
            len: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    let bytes: i32 = 4096;
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&raw const bytes).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
}

#[cfg(unix)]
#[test]
fn slow_loris_reader_is_shed_without_stalling_the_daemon() {
    // A tiny write queue and a client that submits a many-celled grid
    // and never reads a byte: once the socket and the queue fill, the
    // daemon must shed that connection — not block its writer forever,
    // not kill other jobs.
    let (handle, addr) = start_with(ServeOptions {
        workers: 1,
        quantum: 64,
        write_queue: 1,
        // The product knob under test: a bounded kernel send buffer, so
        // a stalled reader jams the writer after tens of KB instead of
        // the multi-megabyte auto-tuned loopback default.
        send_buffer: 16 * 1024,
        ..ServeOptions::default()
    });
    // Cell frames carry per-run samples, so 500 seeds make each frame
    // ~12 KB — a handful of cells overwhelm the capped send buffer plus
    // the clamped receive buffer below, so the daemon's writer genuinely
    // blocks and the queue genuinely jams.
    let mut specs = Vec::new();
    for _ in 0..8 {
        specs.push(SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2));
    }
    let many_cells = SweepPlan::new(
        specs,
        vec![
            AdversaryFamily::no_faults(),
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::crash(FaultSelection::without_source().limit(1), 2),
            AdversaryFamily::silent(FaultSelection::without_source().limit(1)),
        ],
        500,
    );
    let mut loris = Raw::connect(&addr);
    clamp_recv_buffer(&loris.writer);
    loris.send_line(
        &serde::ToJson::to_json(&Request::Submit {
            plan: many_cells,
            deadline_ms: None,
        })
        .to_string(),
    );
    // Never read. Meanwhile, an ordinary client must still get full
    // service on the same single worker.
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    let streamed = client.submit_and_collect(&quick_plan()).expect("other job");
    assert_eq!(streamed.report, quick_plan().run_with_jobs(1));

    // Probe for the shed by *writing*: pings keep succeeding while the
    // connection lives, and start failing once the daemon shuts the
    // socket down. Crucially we never read — reading would drain the
    // buffers and keep the connection healthy.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let alive = writeln!(loris.writer, "{{\"op\":\"ping\"}}")
            .and_then(|()| loris.writer.flush())
            .is_ok();
        if !alive {
            break; // shed: the socket is dead
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slow-loris connection was never shed"
        );
    }

    // Draining what the kernel already buffered ends in EOF (or a
    // reset), never in a complete stream.
    loris
        .writer
        .set_read_timeout(Some(Duration::from_secs(2)))
        .expect("set timeout");
    let mut line = String::new();
    let mut saw_summary = false;
    loop {
        line.clear();
        match loris.reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => saw_summary |= line.contains("\"frame\":\"summary\""),
        }
    }
    assert!(
        !saw_summary,
        "the stalled connection received the whole stream — nothing was shed"
    );
    handle.shutdown();
}

#[test]
fn disconnect_during_stream_keeps_the_daemon_serving() {
    let (handle, addr) = start();
    let mut vanishing = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    vanishing.submit(&slow_plan()).expect("submit");
    drop(vanishing); // walk away mid-stream

    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("reconnect");
    client.ping().expect("daemon alive after abandonment");
    let streamed = client.submit_and_collect(&tiny_plan()).expect("next job");
    assert_eq!(
        streamed.fingerprint,
        tiny_plan().run_with_jobs(1).fingerprint()
    );
    handle.shutdown();
}

#[test]
fn dynamic_king_grids_round_trip_through_the_daemon() {
    // The dynamic-spec wire encoding end to end: a dynamic-king grid
    // submitted over sg-serve/1 must stream back cells whose fingerprint
    // is bit-identical to the batch path — the same determinism contract
    // every static spec honours, now covering runtime gear shifts.
    let plan = SweepPlan::new(
        vec![SweepConfig::traced(
            AlgorithmSpec::DynamicKing { b: 3 },
            10,
            3,
        )],
        vec![
            AdversaryFamily::crash(FaultSelection::without_source().limit(1), 2),
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::no_faults(),
        ],
        8,
    );
    let batch = plan.run_with_jobs(2);

    let (handle, addr) = start();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    let streamed = client.submit_and_collect(&plan).expect("dynamic-king job");
    assert_eq!(
        streamed.fingerprint,
        batch.fingerprint(),
        "daemon-path dynamic-king sweep diverged from the batch path"
    );
    assert_eq!(streamed.report, batch);
    assert!(streamed
        .report
        .cells
        .iter()
        .all(|c| c.spec_name == "dynamic-king(b=3)"));
    // The expedite shows up on the wire: the quiet families' cells
    // stream rounds well below the worst-case schedule.
    let schedule = AlgorithmSpec::DynamicKing { b: 3 }.rounds(10, 3) as f64;
    assert!(streamed.report.cells[0].summaries[4].mean < schedule);
    handle.shutdown();
}
