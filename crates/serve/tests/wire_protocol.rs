//! Protocol robustness: malformed input gets structured errors and the
//! daemon keeps serving; cancellation stops the cell stream.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::json::Value as Json;
use serde::FromJson;
use sg_adversary::FaultSelection;
use sg_analysis::{AdversaryFamily, SweepConfig, SweepPlan};
use sg_core::AlgorithmSpec;
use sg_serve::{serve, Bind, Client, ErrorCode, Frame, ServeError, ServeOptions};

fn start() -> (sg_serve::ServerHandle, String) {
    let handle = serve(
        &Bind::Tcp("127.0.0.1:0".to_string()),
        ServeOptions {
            workers: 1,
            quantum: 2,
        },
    )
    .expect("bind daemon");
    let addr = handle.tcp_addr().expect("tcp addr").to_string();
    (handle, addr)
}

/// A raw NDJSON connection, for speaking deliberately broken frames.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: &str) -> Raw {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Raw { reader, writer }
    }

    fn send_line(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn read_frame(&mut self) -> Frame {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        assert!(!line.is_empty(), "server closed unexpectedly");
        Frame::from_json(&Json::parse(line.trim()).expect("frame json")).expect("frame decode")
    }
}

#[test]
fn malformed_lines_get_structured_errors_and_the_daemon_survives() {
    let (handle, addr) = start();
    let mut raw = Raw::connect(&addr);

    // Truncated frame (cut off mid-document), binary garbage, valid
    // JSON that is not a request, unknown op, wrong proto: each answers
    // with a structured error naming the failure class...
    for (line, want) in [
        (
            "{\"op\":\"submit\",\"plan\":{\"configs\"",
            ErrorCode::BadJson,
        ),
        ("\u{1}\u{2}garbage", ErrorCode::BadJson),
        ("[1,2,3]", ErrorCode::BadRequest),
        ("{\"op\":\"warp\"}", ErrorCode::BadRequest),
        ("{\"op\":\"submit\"}", ErrorCode::BadRequest),
        ("{\"op\":\"cancel\",\"job\":-3}", ErrorCode::BadRequest),
        (
            "{\"op\":\"ping\",\"proto\":\"sg-serve/99\"}",
            ErrorCode::UnsupportedProto,
        ),
    ] {
        raw.send_line(line);
        match raw.read_frame() {
            Frame::Error { code, detail, .. } => {
                assert_eq!(code, want, "for line {line:?} ({detail})")
            }
            other => panic!("expected error for {line:?}, got {other:?}"),
        }
    }

    // ...and the connection (and daemon) keep working afterwards.
    raw.send_line("{\"op\":\"ping\"}");
    assert_eq!(raw.read_frame(), Frame::Pong);

    let mut fresh = Client::connect(&addr, Duration::from_secs(5)).expect("fresh connection");
    fresh.ping().expect("daemon still serving");
    handle.shutdown();
}

#[test]
fn rejected_plans_and_unknown_jobs_are_structured_errors() {
    let (handle, addr) = start();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");

    // An (n, t) the algorithm cannot run is rejected at submit time.
    let invalid = SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 3)],
        vec![AdversaryFamily::no_faults()],
        5,
    );
    match client.submit(&invalid) {
        Err(ServeError::Server { code, .. }) => assert_eq!(code, ErrorCode::Rejected),
        other => panic!("expected rejection, got {other:?}"),
    }

    // Cancelling a job that does not exist on this connection.
    client.cancel(12345).expect("send cancel");
    match client.next_frame().expect("frame") {
        Frame::Error { code, job, .. } => {
            assert_eq!(code, ErrorCode::UnknownJob);
            assert_eq!(job, Some(12345));
        }
        other => panic!("expected unknown-job, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn cancellation_mid_grid_stops_the_cell_stream() {
    let (handle, addr) = start();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");

    // Many cells, enough seeds each that the single worker is still
    // mid-grid when the cancel lands right after the first cell frame.
    let plan = SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
            SweepConfig::traced(AlgorithmSpec::PhaseKing, 9, 2),
            SweepConfig::traced(AlgorithmSpec::PhaseQueen, 9, 2),
            SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::chain_revealer(FaultSelection::without_source(), 2, 2),
            AdversaryFamily::no_faults(),
        ],
        400,
    );
    let job = client.submit(&plan).expect("submit");
    assert_eq!(job.cells, 12);

    // Wait for the first streamed cell, then cancel.
    let first = client.next_frame().expect("first cell");
    assert!(
        matches!(first, Frame::Cell { index: 0, .. }),
        "expected cell 0, got {first:?}"
    );
    client.cancel(job.job).expect("cancel");

    // The stream must end with a cancelled frame after at most a few
    // more in-flight cells — nowhere near all 12.
    let mut extra_cells = 0usize;
    loop {
        match client.next_frame().expect("frame") {
            Frame::Cell { .. } => extra_cells += 1,
            Frame::Cancelled {
                job: id,
                cells_streamed,
            } => {
                assert_eq!(id, job.job);
                assert_eq!(cells_streamed, 1 + extra_cells);
                break;
            }
            Frame::Summary { .. } => panic!("job ran to completion despite cancel"),
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(
        extra_cells < job.cells - 1,
        "cancel stopped nothing: {extra_cells} cells streamed after it"
    );

    // The connection is still good for new work.
    client.ping().expect("ping after cancel");
    let small = SweepPlan::new(
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
        vec![AdversaryFamily::no_faults()],
        3,
    );
    let streamed = client.submit_and_collect(&small).expect("post-cancel job");
    assert_eq!(streamed.report, small.run_with_jobs(1));
    handle.shutdown();
}

#[test]
fn shutdown_closes_streaming_clients_instead_of_stranding_them() {
    let (handle, addr) = start();
    let mut streaming = Client::connect(&addr, Duration::from_secs(5)).expect("connect");

    // A big grid keeps the single worker busy well past the shutdown.
    let big = SweepPlan::new(
        vec![
            SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2),
            SweepConfig::traced(AlgorithmSpec::PhaseKing, 9, 2),
            SweepConfig::traced(AlgorithmSpec::PhaseQueen, 9, 2),
        ],
        vec![
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::no_faults(),
        ],
        500,
    );
    let job = streaming.submit(&big).expect("submit");

    // Another client shuts the daemon down while the first is
    // mid-stream: the first must see its connection close (an error
    // from collect), not block forever waiting for cells.
    let mut other = Client::connect(&addr, Duration::from_secs(5)).expect("second connection");
    other.shutdown_server().expect("bye");

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let drain = std::thread::spawn(move || {
        let outcome = streaming.collect(job, |_, _| {});
        let _ = done_tx.send(());
        outcome
    });
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("streaming client still blocked 30s after daemon shutdown");
    assert!(
        drain.join().expect("drain thread").is_err(),
        "a shut-down daemon cannot have completed the big grid"
    );
    handle.shutdown();
}

#[test]
fn shutdown_op_stops_the_daemon() {
    let (handle, addr) = start();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    client.shutdown_server().expect("bye");
    // New connections are refused (or die unanswered) once stopped;
    // allow a moment for the accept loop to wind down.
    std::thread::sleep(Duration::from_millis(100));
    let mut alive = false;
    if let Ok(mut probe) = Client::connect(&addr, Duration::from_millis(200)) {
        alive = probe.ping().is_ok();
    }
    assert!(!alive, "daemon still answering after shutdown");
    handle.shutdown();
}

#[test]
fn dynamic_king_grids_round_trip_through_the_daemon() {
    // The dynamic-spec wire encoding end to end: a dynamic-king grid
    // submitted over sg-serve/1 must stream back cells whose fingerprint
    // is bit-identical to the batch path — the same determinism contract
    // every static spec honours, now covering runtime gear shifts.
    let plan = SweepPlan::new(
        vec![SweepConfig::traced(
            AlgorithmSpec::DynamicKing { b: 3 },
            10,
            3,
        )],
        vec![
            AdversaryFamily::crash(FaultSelection::without_source().limit(1), 2),
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::no_faults(),
        ],
        8,
    );
    let batch = plan.run_with_jobs(2);

    let (handle, addr) = start();
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    let streamed = client.submit_and_collect(&plan).expect("dynamic-king job");
    assert_eq!(
        streamed.fingerprint,
        batch.fingerprint(),
        "daemon-path dynamic-king sweep diverged from the batch path"
    );
    assert_eq!(streamed.report, batch);
    assert!(streamed
        .report
        .cells
        .iter()
        .all(|c| c.spec_name == "dynamic-king(b=3)"));
    // The expedite shows up on the wire: the quiet families' cells
    // stream rounds well below the worst-case schedule.
    let schedule = AlgorithmSpec::DynamicKing { b: 3 }.rounds(10, 3) as f64;
    assert!(streamed.report.cells[0].summaries[4].mean < schedule);
    handle.shutdown();
}
