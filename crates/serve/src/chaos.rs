//! A deterministic fault-injecting TCP proxy for torturing `sg-serve`.
//!
//! [`ChaosProxy::spawn`] sits between clients and a daemon and relays
//! NDJSON lines while injecting faults — dropped lines, delays, split
//! writes, mid-line truncation, read stalls, and abrupt closes — from a
//! **seeded schedule**: the fault applied to line `k` of connection `i`
//! in direction `d` is a pure function of `(spec.seed, i, d, k)`, so a
//! chaos run replays exactly (the `AdversaryTrace` discipline, applied
//! to the transport). No wall clock is consulted anywhere.
//!
//! The proxy is deliberately line-oriented: faults land on frame
//! boundaries (drop/delay/split a whole frame) or deliberately break
//! them (truncate mid-frame), which is precisely the vocabulary the
//! wire-protocol robustness tests speak.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault mix and magnitudes, in per-mille so a schedule line rolls one
/// `0..1000` value against cumulative thresholds.
#[derive(Clone, Copy, Debug)]
pub struct ChaosSpec {
    /// Schedule seed; everything the proxy does derives from it.
    pub seed: u64,
    /// ‰ of lines silently dropped (the peer never sees the frame).
    pub drop_per_mille: u32,
    /// ‰ of lines delayed by [`ChaosSpec::delay_ms`] before relay.
    pub delay_per_mille: u32,
    /// ‰ of lines written half, then the rest after a pause — two
    /// flushes, exercising partial-frame reads.
    pub split_per_mille: u32,
    /// ‰ of lines where the proxy stalls [`ChaosSpec::stall_ms`]
    /// *before reading on*, backing the sender up (slow-loris).
    pub stall_per_mille: u32,
    /// ‰ of lines cut mid-bytes with the connection then torn down.
    pub truncate_per_mille: u32,
    /// ‰ of lines replaced by an abrupt close of both directions.
    pub close_per_mille: u32,
    /// Delay magnitude, milliseconds.
    pub delay_ms: u64,
    /// Stall magnitude, milliseconds.
    pub stall_ms: u64,
}

impl ChaosSpec {
    /// Mostly-working network: occasional delays and splits, rare
    /// drops; no truncation or closes. Jobs generally complete.
    pub fn gentle(seed: u64) -> ChaosSpec {
        ChaosSpec {
            seed,
            drop_per_mille: 0,
            delay_per_mille: 30,
            split_per_mille: 60,
            stall_per_mille: 10,
            truncate_per_mille: 0,
            close_per_mille: 0,
            delay_ms: 5,
            stall_ms: 25,
        }
    }

    /// Hostile network: everything above plus truncation and abrupt
    /// closes. Many jobs die mid-stream; the ones that complete must
    /// still be bit-exact.
    pub fn hostile(seed: u64) -> ChaosSpec {
        ChaosSpec {
            seed,
            drop_per_mille: 5,
            delay_per_mille: 40,
            split_per_mille: 80,
            stall_per_mille: 15,
            truncate_per_mille: 8,
            close_per_mille: 8,
            delay_ms: 10,
            stall_ms: 50,
        }
    }
}

/// What the schedule decided for one relayed line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    Forward,
    Drop,
    Delay,
    Split,
    Stall,
    Truncate,
    Close,
}

/// The per-direction deterministic fault stream.
struct Schedule {
    spec: ChaosSpec,
    rng: StdRng,
}

impl Schedule {
    /// The stream for direction `dir` (0 = client→server, 1 = reverse)
    /// of accepted connection `conn`.
    fn new(spec: ChaosSpec, conn: u64, dir: u64) -> Schedule {
        let seed = spec
            .seed
            .wrapping_add(conn.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(dir.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        Schedule {
            spec,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn next(&mut self) -> Fault {
        let roll = self.rng.gen_range(0u32..1000);
        let s = &self.spec;
        let mut edge = s.drop_per_mille;
        if roll < edge {
            return Fault::Drop;
        }
        edge += s.delay_per_mille;
        if roll < edge {
            return Fault::Delay;
        }
        edge += s.split_per_mille;
        if roll < edge {
            return Fault::Split;
        }
        edge += s.stall_per_mille;
        if roll < edge {
            return Fault::Stall;
        }
        edge += s.truncate_per_mille;
        if roll < edge {
            return Fault::Truncate;
        }
        edge += s.close_per_mille;
        if roll < edge {
            return Fault::Close;
        }
        Fault::Forward
    }
}

/// Kills one proxied connection pair outright (both directions of both
/// legs), whatever the other pump thread is doing.
fn kill_pair(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

/// Relays `src` → `dst` line by line, consulting `schedule` per line.
/// `src_raw` is a clone of the reader's stream, kept so faults can tear
/// the whole pair down.
fn pump(src: TcpStream, dst: TcpStream, mut schedule: Schedule) {
    let src_raw = match src.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut dst = dst;
    let mut reader = BufReader::new(src);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let bytes = line.as_bytes();
        match schedule.next() {
            Fault::Forward => {
                if dst.write_all(bytes).is_err() {
                    break;
                }
            }
            Fault::Drop => continue,
            Fault::Delay => {
                std::thread::sleep(Duration::from_millis(schedule.spec.delay_ms));
                if dst.write_all(bytes).is_err() {
                    break;
                }
            }
            Fault::Split => {
                let half = bytes.len() / 2;
                if dst.write_all(&bytes[..half]).is_err() || dst.flush().is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(schedule.spec.delay_ms));
                if dst.write_all(&bytes[half..]).is_err() {
                    break;
                }
            }
            Fault::Stall => {
                // Sleeping here stops our reads too, so the sender backs
                // up into its own send buffer — the slow-loris shape.
                std::thread::sleep(Duration::from_millis(schedule.spec.stall_ms));
                if dst.write_all(bytes).is_err() {
                    break;
                }
            }
            Fault::Truncate => {
                let half = (bytes.len() / 2).max(1);
                let _ = dst.write_all(&bytes[..half]);
                let _ = dst.flush();
                kill_pair(&src_raw, &dst);
                return;
            }
            Fault::Close => {
                kill_pair(&src_raw, &dst);
                return;
            }
        }
    }
    // Propagate EOF downstream so the peer winds down instead of
    // waiting on a half-dead proxy.
    let _ = dst.shutdown(Shutdown::Write);
}

/// A running chaos proxy; dropping it stops the listener (established
/// relays die with their endpoints).
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Listens on an ephemeral localhost port and relays every accepted
    /// connection to `upstream` through `spec`'s fault schedule.
    ///
    /// # Errors
    ///
    /// Returns the bind error verbatim.
    pub fn spawn(upstream: SocketAddr, spec: ChaosSpec) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("sg-chaos-accept".to_string())
            .spawn(move || {
                let mut conn_index: u64 = 0;
                loop {
                    let Ok((client, _)) = listener.accept() else {
                        break;
                    };
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    client.set_nodelay(true).ok();
                    let index = conn_index;
                    conn_index += 1;
                    let Ok(server) = TcpStream::connect(upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    server.set_nodelay(true).ok();
                    let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                        kill_pair(&client, &server);
                        continue;
                    };
                    let up = Schedule::new(spec, index, 0);
                    let down = Schedule::new(spec, index, 1);
                    let _ = std::thread::Builder::new()
                        .name("sg-chaos-up".to_string())
                        .spawn(move || pump(client, server, up));
                    let _ = std::thread::Builder::new()
                        .name("sg-chaos-down".to_string())
                        .spawn(move || pump(s2, c2, down));
                }
            })
            .expect("spawn chaos accept loop");
        Ok(ChaosProxy {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The proxy's listening address, for clients.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop the same way the daemon does: one
        // throwaway self-connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_distinct() {
        let spec = ChaosSpec::hostile(7);
        let faults = |conn, dir| {
            let mut s = Schedule::new(spec, conn, dir);
            (0..200).map(|_| s.next()).collect::<Vec<_>>()
        };
        assert_eq!(faults(0, 0), faults(0, 0), "same coordinates replay");
        assert_ne!(faults(0, 0), faults(1, 0), "connections differ");
        assert_ne!(faults(0, 0), faults(0, 1), "directions differ");
        // The hostile mix actually exercises every fault class within a
        // couple hundred lines.
        let all = faults(0, 0);
        assert!(all.contains(&Fault::Forward));
        assert!(all.iter().any(|f| *f != Fault::Forward));
    }

    #[test]
    fn gentle_schedule_never_kills_connections() {
        let spec = ChaosSpec::gentle(11);
        for conn in 0..8 {
            for dir in 0..2 {
                let mut s = Schedule::new(spec, conn, dir);
                for _ in 0..10_000 {
                    let fault = s.next();
                    assert!(
                        !matches!(fault, Fault::Truncate | Fault::Close | Fault::Drop),
                        "gentle spec produced {fault:?}"
                    );
                }
            }
        }
    }
}
