//! The `sg-serve/1` wire protocol: newline-delimited JSON frames.
//!
//! One connection carries a sequence of client→server [`Request`] lines
//! and server→client [`Frame`] lines, each a single compact JSON object
//! terminated by `\n`. The vocabulary (plans, cells, samples) is encoded
//! by [`sg_analysis::wire`]; this module adds the framing around it.
//!
//! # Requests
//!
//! ```text
//! {"op":"submit","proto":"sg-serve/1","plan":{…}}   submit a sweep grid
//! {"op":"cancel","job":7}                           cancel a running job
//! {"op":"ping"}                                     liveness probe
//! {"op":"shutdown"}                                 stop the daemon
//! ```
//!
//! `proto` is optional everywhere; when present it must be `sg-serve/1`.
//!
//! # Frames
//!
//! ```text
//! {"frame":"accepted","job":7,"cells":4,"total_runs":400}
//! {"frame":"cell","job":7,"index":0,"cell":{…}}          one per cell, in grid order
//! {"frame":"summary","job":7,"cells":4,"total_runs":400,
//!  "report_fingerprint":"40c18433ac711905","wall_ms":95.2}
//! {"frame":"cancelled","job":7,"cells_streamed":1}
//! {"frame":"error","code":"bad-json","detail":"…"}       job field present when job-scoped
//! {"frame":"pong","proto":"sg-serve/1"}
//! {"frame":"bye"}
//! ```
//!
//! A malformed or unparseable request line produces an `error` frame and
//! leaves the connection (and daemon) fully operational; `summary`,
//! `cancelled`, and job-scoped `error` frames are each terminal for
//! their job id. The summary's `report_fingerprint` is
//! [`sg_analysis::Fingerprint`] over every sample in grid order —
//! bit-identical to what `SweepPlan::run` would report for the same
//! grid.

use serde::json::{JsonError, Value as Json};
use serde::{FromJson, ToJson};
use sg_analysis::{CellReport, SweepPlan};

/// The protocol identifier carried in `proto` fields.
pub const PROTOCOL: &str = "sg-serve/1";

/// Machine-readable reason attached to `error` frames.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// The request line was not valid JSON (includes truncated frames).
    BadJson,
    /// Valid JSON, but not a well-formed request.
    BadRequest,
    /// The request named a protocol other than [`PROTOCOL`].
    UnsupportedProto,
    /// A job-scoped request named a job this connection does not own.
    UnknownJob,
    /// The submitted plan cannot run (empty grid, invalid `(n, t)`, …).
    Rejected,
    /// A job died mid-flight (worker panic); terminal for the job.
    JobFailed,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnsupportedProto => "unsupported-proto",
            ErrorCode::UnknownJob => "unknown-job",
            ErrorCode::Rejected => "rejected",
            ErrorCode::JobFailed => "job-failed",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad-json" => ErrorCode::BadJson,
            "bad-request" => ErrorCode::BadRequest,
            "unsupported-proto" => ErrorCode::UnsupportedProto,
            "unknown-job" => ErrorCode::UnknownJob,
            "rejected" => ErrorCode::Rejected,
            "job-failed" => ErrorCode::JobFailed,
            _ => return None,
        })
    }
}

/// A client→server line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Submit a sweep grid; answered by `accepted` then a cell stream.
    Submit {
        /// The grid to execute.
        plan: SweepPlan,
    },
    /// Cancel a job submitted on this connection.
    Cancel {
        /// The job id from the `accepted` frame.
        job: u64,
    },
    /// Liveness probe; answered by `pong`.
    Ping,
    /// Stop the daemon; answered by `bye`.
    Shutdown,
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        match self {
            Request::Submit { plan } => {
                fields.push(("op".to_string(), Json::from("submit")));
                fields.push(("proto".to_string(), Json::from(PROTOCOL)));
                fields.push(("plan".to_string(), plan.to_json()));
            }
            Request::Cancel { job } => {
                fields.push(("op".to_string(), Json::from("cancel")));
                fields.push(("job".to_string(), Json::from(*job)));
            }
            Request::Ping => fields.push(("op".to_string(), Json::from("ping"))),
            Request::Shutdown => fields.push(("op".to_string(), Json::from("shutdown"))),
        }
        Json::Obj(fields)
    }
}

impl FromJson for Request {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(proto) = v.get("proto") {
            if proto.as_str() != Some(PROTOCOL) {
                return Err(JsonError::msg(format!(
                    "unsupported protocol (this daemon speaks {PROTOCOL})"
                )));
            }
        }
        let op = v
            .need("op")?
            .as_str()
            .ok_or_else(|| JsonError::msg("'op' must be a string"))?;
        Ok(match op {
            "submit" => Request::Submit {
                plan: SweepPlan::from_json(v.need("plan")?)?,
            },
            "cancel" => Request::Cancel {
                job: v
                    .need("job")?
                    .as_u64()
                    .ok_or_else(|| JsonError::msg("'job' must be a non-negative integer"))?,
            },
            "ping" => Request::Ping,
            "shutdown" => Request::Shutdown,
            other => return Err(JsonError::msg(format!("unknown op '{other}'"))),
        })
    }
}

/// A server→client line.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// A submit was accepted; the job's cell stream follows.
    Accepted {
        /// Server-assigned job id; all of the job's frames carry it.
        job: u64,
        /// Cells the grid will produce.
        cells: usize,
        /// Executions the grid will perform.
        total_runs: u64,
    },
    /// One completed cell, streamed in grid order.
    Cell {
        /// The owning job.
        job: u64,
        /// Flat grid index (`SweepPlan::cell_coords` order).
        index: usize,
        /// The cell's full report (boxed: cells dwarf every other
        /// frame, and frames travel through queues by value).
        cell: Box<CellReport>,
    },
    /// Terminal frame of a successful job.
    Summary {
        /// The finished job.
        job: u64,
        /// Cells streamed.
        cells: usize,
        /// Executions performed.
        total_runs: u64,
        /// [`sg_analysis::Fingerprint`] hex over all samples in grid
        /// order — the determinism contract with the batch path.
        report_fingerprint: String,
        /// Wall time from accept to last cell, in milliseconds.
        wall_ms: f64,
    },
    /// Terminal frame of a cancelled job.
    Cancelled {
        /// The cancelled job.
        job: u64,
        /// Cell frames emitted before the cancellation took effect.
        cells_streamed: usize,
    },
    /// A request failed, or (with `job` set) a job died; connection
    /// remains usable either way.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
        /// The affected job, for job-scoped errors.
        job: Option<u64>,
    },
    /// Answer to `ping`.
    Pong,
    /// Answer to `shutdown`; the daemon is stopping.
    Bye,
}

impl ToJson for Frame {
    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        match self {
            Frame::Accepted {
                job,
                cells,
                total_runs,
            } => {
                fields.push(("frame".to_string(), Json::from("accepted")));
                fields.push(("job".to_string(), Json::from(*job)));
                fields.push(("cells".to_string(), Json::from(*cells)));
                fields.push(("total_runs".to_string(), Json::from(*total_runs)));
            }
            Frame::Cell { job, index, cell } => {
                fields.push(("frame".to_string(), Json::from("cell")));
                fields.push(("job".to_string(), Json::from(*job)));
                fields.push(("index".to_string(), Json::from(*index)));
                fields.push(("cell".to_string(), cell.to_json()));
            }
            Frame::Summary {
                job,
                cells,
                total_runs,
                report_fingerprint,
                wall_ms,
            } => {
                fields.push(("frame".to_string(), Json::from("summary")));
                fields.push(("job".to_string(), Json::from(*job)));
                fields.push(("cells".to_string(), Json::from(*cells)));
                fields.push(("total_runs".to_string(), Json::from(*total_runs)));
                fields.push((
                    "report_fingerprint".to_string(),
                    Json::from(report_fingerprint.as_str()),
                ));
                fields.push(("wall_ms".to_string(), Json::Num(*wall_ms)));
            }
            Frame::Cancelled {
                job,
                cells_streamed,
            } => {
                fields.push(("frame".to_string(), Json::from("cancelled")));
                fields.push(("job".to_string(), Json::from(*job)));
                fields.push(("cells_streamed".to_string(), Json::from(*cells_streamed)));
            }
            Frame::Error { code, detail, job } => {
                fields.push(("frame".to_string(), Json::from("error")));
                fields.push(("code".to_string(), Json::from(code.as_str())));
                fields.push(("detail".to_string(), Json::from(detail.as_str())));
                if let Some(job) = job {
                    fields.push(("job".to_string(), Json::from(*job)));
                }
            }
            Frame::Pong => {
                fields.push(("frame".to_string(), Json::from("pong")));
                fields.push(("proto".to_string(), Json::from(PROTOCOL)));
            }
            Frame::Bye => fields.push(("frame".to_string(), Json::from("bye"))),
        }
        Json::Obj(fields)
    }
}

impl FromJson for Frame {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let kind = v
            .need("frame")?
            .as_str()
            .ok_or_else(|| JsonError::msg("'frame' must be a string"))?;
        let job = |key: &str| {
            v.need(key)?
                .as_u64()
                .ok_or_else(|| JsonError::msg(format!("'{key}' must be a non-negative integer")))
        };
        Ok(match kind {
            "accepted" => Frame::Accepted {
                job: job("job")?,
                cells: job("cells")? as usize,
                total_runs: job("total_runs")?,
            },
            "cell" => Frame::Cell {
                job: job("job")?,
                index: job("index")? as usize,
                cell: Box::new(CellReport::from_json(v.need("cell")?)?),
            },
            "summary" => Frame::Summary {
                job: job("job")?,
                cells: job("cells")? as usize,
                total_runs: job("total_runs")?,
                report_fingerprint: v
                    .need("report_fingerprint")?
                    .as_str()
                    .ok_or_else(|| JsonError::msg("'report_fingerprint' must be a string"))?
                    .to_string(),
                wall_ms: v
                    .need("wall_ms")?
                    .as_f64()
                    .ok_or_else(|| JsonError::msg("'wall_ms' must be a number"))?,
            },
            "cancelled" => Frame::Cancelled {
                job: job("job")?,
                cells_streamed: job("cells_streamed")? as usize,
            },
            "error" => {
                Frame::Error {
                    code: v
                        .need("code")?
                        .as_str()
                        .and_then(ErrorCode::parse)
                        .ok_or_else(|| JsonError::msg("unknown error code"))?,
                    detail: v
                        .need("detail")?
                        .as_str()
                        .ok_or_else(|| JsonError::msg("'detail' must be a string"))?
                        .to_string(),
                    job: match v.get("job") {
                        None => None,
                        Some(j) => Some(j.as_u64().ok_or_else(|| {
                            JsonError::msg("'job' must be a non-negative integer")
                        })?),
                    },
                }
            }
            "pong" => Frame::Pong,
            "bye" => Frame::Bye,
            other => return Err(JsonError::msg(format!("unknown frame '{other}'"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_adversary::FaultSelection;
    use sg_analysis::{AdversaryFamily, SweepConfig};
    use sg_core::AlgorithmSpec;

    #[test]
    fn requests_round_trip() {
        let plan = SweepPlan::new(
            vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
            vec![AdversaryFamily::random_liar(
                FaultSelection::without_source(),
            )],
            5,
        );
        for req in [
            Request::Submit { plan },
            Request::Cancel { job: 42 },
            Request::Ping,
            Request::Shutdown,
        ] {
            let line = req.to_json().to_string();
            let back = Request::from_json(&Json::parse(&line).unwrap()).unwrap();
            // Requests carry closures (via AdversaryFamily), so compare
            // by re-encoding.
            assert_eq!(back.to_json().to_string(), line);
        }
    }

    #[test]
    fn frames_round_trip() {
        let cell = SweepPlan::new(
            vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
            vec![AdversaryFamily::no_faults()],
            2,
        )
        .run_with_jobs(1)
        .cells
        .remove(0);
        for frame in [
            Frame::Accepted {
                job: 1,
                cells: 4,
                total_runs: 400,
            },
            Frame::Cell {
                job: 1,
                index: 2,
                cell: Box::new(cell),
            },
            Frame::Summary {
                job: 1,
                cells: 4,
                total_runs: 400,
                report_fingerprint: "40c18433ac711905".to_string(),
                wall_ms: 95.25,
            },
            Frame::Cancelled {
                job: 1,
                cells_streamed: 1,
            },
            Frame::Error {
                code: ErrorCode::BadJson,
                detail: "expected ':' after object key (at byte 9)".to_string(),
                job: None,
            },
            Frame::Error {
                code: ErrorCode::JobFailed,
                detail: "worker panic".to_string(),
                job: Some(3),
            },
            Frame::Pong,
            Frame::Bye,
        ] {
            let line = frame.to_json().to_string();
            let back = Frame::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(back, frame, "through {line}");
        }
    }

    #[test]
    fn proto_mismatch_is_rejected() {
        let line = "{\"op\":\"ping\",\"proto\":\"sg-serve/99\"}";
        assert!(Request::from_json(&Json::parse(line).unwrap()).is_err());
        let ok = "{\"op\":\"ping\",\"proto\":\"sg-serve/1\"}";
        assert!(Request::from_json(&Json::parse(ok).unwrap()).is_ok());
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::BadJson,
            ErrorCode::BadRequest,
            ErrorCode::UnsupportedProto,
            ErrorCode::UnknownJob,
            ErrorCode::Rejected,
            ErrorCode::JobFailed,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }
}
