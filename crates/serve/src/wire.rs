//! The `sg-serve/1` wire protocol: newline-delimited JSON frames.
//!
//! See `docs/WIRE.md` at the repository root for the consolidated
//! catalogue of every schema the repo speaks (`sg-serve/1`,
//! `sg-trace/1`, `sg-scenario/1`, `sg-bench-sweep/6`,
//! `sg-serve-load/1`, `sg-journal/1`) and their compatibility notes.
//!
//! One connection carries a sequence of client→server [`Request`] lines
//! and server→client [`Frame`] lines, each a single compact JSON object
//! terminated by `\n`. The vocabulary (plans, cells, samples) is encoded
//! by [`sg_analysis::wire`]; this module adds the framing around it.
//!
//! # Requests
//!
//! ```text
//! {"op":"submit","proto":"sg-serve/1","plan":{…}}   submit a sweep grid
//! {"op":"submit","plan":{…},"deadline_ms":5000}     …with a completion deadline
//! {"op":"cancel","job":7}                           cancel a running job
//! {"op":"ping"}                                     liveness probe
//! {"op":"drain"}                                    finish running jobs, then stop
//! {"op":"shutdown"}                                 stop the daemon
//! ```
//!
//! `proto` is optional everywhere; when present it must be `sg-serve/1`.
//!
//! # Frames
//!
//! ```text
//! {"frame":"accepted","job":7,"cells":4,"total_runs":400}
//! {"frame":"cell","job":7,"index":0,"cell":{…}}          one per cell, in grid order
//! {"frame":"summary","job":7,"cells":4,"total_runs":400,
//!  "report_fingerprint":"40c18433ac711905","wall_ms":95.2,"cached_cells":0}
//! {"frame":"cancelled","job":7,"cells_streamed":1}
//! {"frame":"rejected","code":"saturated","detail":"…","retry_after_ms":40}
//! {"frame":"rejected","code":"draining","detail":"…"}
//! {"frame":"draining","active_jobs":2}                   ack of the drain op
//! {"frame":"error","code":"bad-json","detail":"…"}       job field present when job-scoped
//! {"frame":"pong","proto":"sg-serve/1"}
//! {"frame":"bye"}
//! ```
//!
//! A malformed or unparseable request line produces an `error` frame and
//! leaves the connection (and daemon) fully operational; `summary`,
//! `cancelled`, and job-scoped `error` frames are each terminal for
//! their job id. The summary's `report_fingerprint` is
//! [`sg_analysis::Fingerprint`] over every sample in grid order —
//! bit-identical to what `SweepPlan::run` would report for the same
//! grid. `cached_cells` counts the cells a `--journal` daemon answered
//! from its result journal instead of recomputing; cell frames do not
//! distinguish cached from computed cells (they are bit-identical by
//! contract), and decoders treat an absent field as 0 for pre-journal
//! daemons.
//!
//! # Backpressure and degradation
//!
//! A daemon under admission control answers `submit` with a `rejected`
//! frame instead of `accepted` when it cannot take the job: code
//! `saturated` (queue or per-connection caps hit; `retry_after_ms` is
//! the server's deterministic back-off hint) or `draining` (the daemon
//! is winding down and will not take new work; no retry hint — find
//! another daemon). `rejected` is *not* an error frame: the connection
//! stays fully usable and the client is expected to back off and retry
//! (see `Client::submit_with_retry`).
//!
//! A `submit` may carry `deadline_ms`, a wall-clock budget measured from
//! acceptance. The deadline is enforced at the same per-quantum check as
//! cancellation, so an expired job stops within one scheduling quantum
//! and its stream ends with `{"frame":"error","code":"deadline-exceeded"}`.
//! Cells already streamed before the deadline remain valid — they are
//! bit-identical to the batch path's cells for the same grid positions.
//!
//! The `drain` op is the graceful half of `shutdown`: the daemon
//! immediately answers `{"frame":"draining","active_jobs":N}`, keeps
//! running (and streaming) the jobs it already accepted, rejects every
//! new `submit` with code `draining`, and once the last active job
//! reaches its terminal frame sends every connection `bye` and stops.

use serde::json::{JsonError, Value as Json};
use serde::{FromJson, ToJson};
use sg_analysis::{CellReport, SweepPlan};

/// The protocol identifier carried in `proto` fields.
pub const PROTOCOL: &str = "sg-serve/1";

/// Machine-readable reason attached to `error` frames.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// The request line was not valid JSON (includes truncated frames).
    BadJson,
    /// Valid JSON, but not a well-formed request.
    BadRequest,
    /// The request named a protocol other than [`PROTOCOL`].
    UnsupportedProto,
    /// A job-scoped request named a job this connection does not own.
    UnknownJob,
    /// The submitted plan cannot run (empty grid, invalid `(n, t)`, …).
    Rejected,
    /// A job died mid-flight (worker panic); terminal for the job.
    JobFailed,
    /// The job's `deadline_ms` budget expired; terminal for the job.
    /// Cells streamed before the deadline remain valid.
    DeadlineExceeded,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnsupportedProto => "unsupported-proto",
            ErrorCode::UnknownJob => "unknown-job",
            ErrorCode::Rejected => "rejected",
            ErrorCode::JobFailed => "job-failed",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad-json" => ErrorCode::BadJson,
            "bad-request" => ErrorCode::BadRequest,
            "unsupported-proto" => ErrorCode::UnsupportedProto,
            "unknown-job" => ErrorCode::UnknownJob,
            "rejected" => ErrorCode::Rejected,
            "job-failed" => ErrorCode::JobFailed,
            "deadline-exceeded" => ErrorCode::DeadlineExceeded,
            _ => return None,
        })
    }
}

/// Machine-readable reason attached to `rejected` frames — the daemon
/// declined the submit without running it; the connection stays usable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectCode {
    /// Admission control: the job queue or a per-connection cap is
    /// full. Back off (`retry_after_ms` is the server's hint) and retry.
    Saturated,
    /// The daemon is draining and takes no new work; do not retry here.
    Draining,
}

impl RejectCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectCode::Saturated => "saturated",
            RejectCode::Draining => "draining",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<RejectCode> {
        Some(match s {
            "saturated" => RejectCode::Saturated,
            "draining" => RejectCode::Draining,
            _ => return None,
        })
    }
}

/// A client→server line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Submit a sweep grid; answered by `accepted` then a cell stream,
    /// or by a `rejected` frame under admission control.
    Submit {
        /// The grid to execute.
        plan: SweepPlan,
        /// Wall-clock completion budget in milliseconds, measured from
        /// acceptance; enforced at the per-quantum cancellation check.
        deadline_ms: Option<u64>,
    },
    /// Cancel a job submitted on this connection.
    Cancel {
        /// The job id from the `accepted` frame.
        job: u64,
    },
    /// Liveness probe; answered by `pong`.
    Ping,
    /// Finish running jobs, reject new submits with `draining`, then
    /// stop; answered immediately by a `draining` frame.
    Drain,
    /// Stop the daemon; answered by `bye`.
    Shutdown,
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        match self {
            Request::Submit { plan, deadline_ms } => {
                fields.push(("op".to_string(), Json::from("submit")));
                fields.push(("proto".to_string(), Json::from(PROTOCOL)));
                fields.push(("plan".to_string(), plan.to_json()));
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".to_string(), Json::from(*ms)));
                }
            }
            Request::Cancel { job } => {
                fields.push(("op".to_string(), Json::from("cancel")));
                fields.push(("job".to_string(), Json::from(*job)));
            }
            Request::Ping => fields.push(("op".to_string(), Json::from("ping"))),
            Request::Drain => fields.push(("op".to_string(), Json::from("drain"))),
            Request::Shutdown => fields.push(("op".to_string(), Json::from("shutdown"))),
        }
        Json::Obj(fields)
    }
}

impl FromJson for Request {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(proto) = v.get("proto") {
            if proto.as_str() != Some(PROTOCOL) {
                return Err(JsonError::msg(format!(
                    "unsupported protocol (this daemon speaks {PROTOCOL})"
                )));
            }
        }
        let op = v
            .need("op")?
            .as_str()
            .ok_or_else(|| JsonError::msg("'op' must be a string"))?;
        Ok(match op {
            "submit" => Request::Submit {
                plan: SweepPlan::from_json(v.need("plan")?)?,
                deadline_ms: match v.get("deadline_ms") {
                    None => None,
                    Some(ms) => Some(ms.as_u64().ok_or_else(|| {
                        JsonError::msg("'deadline_ms' must be a non-negative integer")
                    })?),
                },
            },
            "cancel" => Request::Cancel {
                job: v
                    .need("job")?
                    .as_u64()
                    .ok_or_else(|| JsonError::msg("'job' must be a non-negative integer"))?,
            },
            "ping" => Request::Ping,
            "drain" => Request::Drain,
            "shutdown" => Request::Shutdown,
            other => return Err(JsonError::msg(format!("unknown op '{other}'"))),
        })
    }
}

/// A server→client line.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// A submit was accepted; the job's cell stream follows.
    Accepted {
        /// Server-assigned job id; all of the job's frames carry it.
        job: u64,
        /// Cells the grid will produce.
        cells: usize,
        /// Executions the grid will perform.
        total_runs: u64,
    },
    /// One completed cell, streamed in grid order.
    Cell {
        /// The owning job.
        job: u64,
        /// Flat grid index (`SweepPlan::cell_coords` order).
        index: usize,
        /// The cell's full report (boxed: cells dwarf every other
        /// frame, and frames travel through queues by value).
        cell: Box<CellReport>,
    },
    /// Terminal frame of a successful job.
    Summary {
        /// The finished job.
        job: u64,
        /// Cells streamed.
        cells: usize,
        /// Executions performed.
        total_runs: u64,
        /// [`sg_analysis::Fingerprint`] hex over all samples in grid
        /// order — the determinism contract with the batch path.
        report_fingerprint: String,
        /// Wall time from accept to last cell, in milliseconds.
        wall_ms: f64,
        /// Cells answered from the daemon's result journal instead of
        /// being recomputed (0 when the daemon runs without `--journal`;
        /// absent on the wire from pre-journal daemons, decoded as 0).
        cached_cells: usize,
    },
    /// Terminal frame of a cancelled job.
    Cancelled {
        /// The cancelled job.
        job: u64,
        /// Cell frames emitted before the cancellation took effect.
        cells_streamed: usize,
    },
    /// A submit was declined by admission control; nothing ran and the
    /// connection stays usable.
    Rejected {
        /// Machine-readable reason.
        code: RejectCode,
        /// Human-readable detail (which cap was hit, queue depth, …).
        detail: String,
        /// Server's deterministic back-off hint (`saturated` only).
        retry_after_ms: Option<u64>,
    },
    /// Ack of the `drain` op: the daemon takes no new work and will
    /// stop once the named number of active jobs reach terminal frames.
    Draining {
        /// Jobs still running (or queued) at the time of the drain.
        active_jobs: u64,
    },
    /// A request failed, or (with `job` set) a job died; connection
    /// remains usable either way.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
        /// The affected job, for job-scoped errors.
        job: Option<u64>,
    },
    /// Answer to `ping`. Besides liveness, the frame carries the
    /// daemon's cumulative result-journal telemetry — cells served from
    /// the journal vs computed, summed over every submit since startup
    /// (both 0 when the daemon runs without `--journal`; absent on the
    /// wire from pre-telemetry daemons, decoded as 0).
    Pong {
        /// Cells answered from the result journal across all jobs.
        journal_hits: u64,
        /// Cells that missed the journal and were computed.
        journal_misses: u64,
    },
    /// Answer to `shutdown`; the daemon is stopping.
    Bye,
}

impl ToJson for Frame {
    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        match self {
            Frame::Accepted {
                job,
                cells,
                total_runs,
            } => {
                fields.push(("frame".to_string(), Json::from("accepted")));
                fields.push(("job".to_string(), Json::from(*job)));
                fields.push(("cells".to_string(), Json::from(*cells)));
                fields.push(("total_runs".to_string(), Json::from(*total_runs)));
            }
            Frame::Cell { job, index, cell } => {
                fields.push(("frame".to_string(), Json::from("cell")));
                fields.push(("job".to_string(), Json::from(*job)));
                fields.push(("index".to_string(), Json::from(*index)));
                fields.push(("cell".to_string(), cell.to_json()));
            }
            Frame::Summary {
                job,
                cells,
                total_runs,
                report_fingerprint,
                wall_ms,
                cached_cells,
            } => {
                fields.push(("frame".to_string(), Json::from("summary")));
                fields.push(("job".to_string(), Json::from(*job)));
                fields.push(("cells".to_string(), Json::from(*cells)));
                fields.push(("total_runs".to_string(), Json::from(*total_runs)));
                fields.push((
                    "report_fingerprint".to_string(),
                    Json::from(report_fingerprint.as_str()),
                ));
                fields.push(("wall_ms".to_string(), Json::Num(*wall_ms)));
                fields.push(("cached_cells".to_string(), Json::from(*cached_cells)));
            }
            Frame::Cancelled {
                job,
                cells_streamed,
            } => {
                fields.push(("frame".to_string(), Json::from("cancelled")));
                fields.push(("job".to_string(), Json::from(*job)));
                fields.push(("cells_streamed".to_string(), Json::from(*cells_streamed)));
            }
            Frame::Rejected {
                code,
                detail,
                retry_after_ms,
            } => {
                fields.push(("frame".to_string(), Json::from("rejected")));
                fields.push(("code".to_string(), Json::from(code.as_str())));
                fields.push(("detail".to_string(), Json::from(detail.as_str())));
                if let Some(ms) = retry_after_ms {
                    fields.push(("retry_after_ms".to_string(), Json::from(*ms)));
                }
            }
            Frame::Draining { active_jobs } => {
                fields.push(("frame".to_string(), Json::from("draining")));
                fields.push(("active_jobs".to_string(), Json::from(*active_jobs)));
            }
            Frame::Error { code, detail, job } => {
                fields.push(("frame".to_string(), Json::from("error")));
                fields.push(("code".to_string(), Json::from(code.as_str())));
                fields.push(("detail".to_string(), Json::from(detail.as_str())));
                if let Some(job) = job {
                    fields.push(("job".to_string(), Json::from(*job)));
                }
            }
            Frame::Pong {
                journal_hits,
                journal_misses,
            } => {
                fields.push(("frame".to_string(), Json::from("pong")));
                fields.push(("proto".to_string(), Json::from(PROTOCOL)));
                fields.push(("journal_hits".to_string(), Json::from(*journal_hits)));
                fields.push(("journal_misses".to_string(), Json::from(*journal_misses)));
            }
            Frame::Bye => fields.push(("frame".to_string(), Json::from("bye"))),
        }
        Json::Obj(fields)
    }
}

impl FromJson for Frame {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let kind = v
            .need("frame")?
            .as_str()
            .ok_or_else(|| JsonError::msg("'frame' must be a string"))?;
        let job = |key: &str| {
            v.need(key)?
                .as_u64()
                .ok_or_else(|| JsonError::msg(format!("'{key}' must be a non-negative integer")))
        };
        Ok(match kind {
            "accepted" => Frame::Accepted {
                job: job("job")?,
                cells: job("cells")? as usize,
                total_runs: job("total_runs")?,
            },
            "cell" => Frame::Cell {
                job: job("job")?,
                index: job("index")? as usize,
                cell: Box::new(CellReport::from_json(v.need("cell")?)?),
            },
            "summary" => Frame::Summary {
                job: job("job")?,
                cells: job("cells")? as usize,
                total_runs: job("total_runs")?,
                report_fingerprint: v
                    .need("report_fingerprint")?
                    .as_str()
                    .ok_or_else(|| JsonError::msg("'report_fingerprint' must be a string"))?
                    .to_string(),
                wall_ms: v
                    .need("wall_ms")?
                    .as_f64()
                    .ok_or_else(|| JsonError::msg("'wall_ms' must be a number"))?,
                cached_cells: match v.get("cached_cells") {
                    None => 0,
                    Some(c) => c.as_usize().ok_or_else(|| {
                        JsonError::msg("'cached_cells' must be a non-negative integer")
                    })?,
                },
            },
            "cancelled" => Frame::Cancelled {
                job: job("job")?,
                cells_streamed: job("cells_streamed")? as usize,
            },
            "rejected" => Frame::Rejected {
                code: v
                    .need("code")?
                    .as_str()
                    .and_then(RejectCode::parse)
                    .ok_or_else(|| JsonError::msg("unknown reject code"))?,
                detail: v
                    .need("detail")?
                    .as_str()
                    .ok_or_else(|| JsonError::msg("'detail' must be a string"))?
                    .to_string(),
                retry_after_ms: match v.get("retry_after_ms") {
                    None => None,
                    Some(ms) => Some(ms.as_u64().ok_or_else(|| {
                        JsonError::msg("'retry_after_ms' must be a non-negative integer")
                    })?),
                },
            },
            "draining" => Frame::Draining {
                active_jobs: job("active_jobs")?,
            },
            "error" => {
                Frame::Error {
                    code: v
                        .need("code")?
                        .as_str()
                        .and_then(ErrorCode::parse)
                        .ok_or_else(|| JsonError::msg("unknown error code"))?,
                    detail: v
                        .need("detail")?
                        .as_str()
                        .ok_or_else(|| JsonError::msg("'detail' must be a string"))?
                        .to_string(),
                    job: match v.get("job") {
                        None => None,
                        Some(j) => Some(j.as_u64().ok_or_else(|| {
                            JsonError::msg("'job' must be a non-negative integer")
                        })?),
                    },
                }
            }
            "pong" => {
                let counter = |key: &str| match v.get(key) {
                    None => Ok(0),
                    Some(c) => c.as_u64().ok_or_else(|| {
                        JsonError::msg(format!("'{key}' must be a non-negative integer"))
                    }),
                };
                Frame::Pong {
                    journal_hits: counter("journal_hits")?,
                    journal_misses: counter("journal_misses")?,
                }
            }
            "bye" => Frame::Bye,
            other => return Err(JsonError::msg(format!("unknown frame '{other}'"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_adversary::FaultSelection;
    use sg_analysis::{AdversaryFamily, SweepConfig};
    use sg_core::AlgorithmSpec;

    #[test]
    fn requests_round_trip() {
        let plan = SweepPlan::new(
            vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
            vec![AdversaryFamily::random_liar(
                FaultSelection::without_source(),
            )],
            5,
        );
        for req in [
            Request::Submit {
                plan: plan.clone(),
                deadline_ms: None,
            },
            Request::Submit {
                plan,
                deadline_ms: Some(2500),
            },
            Request::Cancel { job: 42 },
            Request::Ping,
            Request::Drain,
            Request::Shutdown,
        ] {
            let line = req.to_json().to_string();
            let back = Request::from_json(&Json::parse(&line).unwrap()).unwrap();
            // Requests carry closures (via AdversaryFamily), so compare
            // by re-encoding.
            assert_eq!(back.to_json().to_string(), line);
        }
    }

    #[test]
    fn frames_round_trip() {
        let cell = SweepPlan::new(
            vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
            vec![AdversaryFamily::no_faults()],
            2,
        )
        .run_with_jobs(1)
        .cells
        .remove(0);
        for frame in [
            Frame::Accepted {
                job: 1,
                cells: 4,
                total_runs: 400,
            },
            Frame::Cell {
                job: 1,
                index: 2,
                cell: Box::new(cell),
            },
            Frame::Summary {
                job: 1,
                cells: 4,
                total_runs: 400,
                report_fingerprint: "40c18433ac711905".to_string(),
                wall_ms: 95.25,
                cached_cells: 3,
            },
            Frame::Cancelled {
                job: 1,
                cells_streamed: 1,
            },
            Frame::Error {
                code: ErrorCode::BadJson,
                detail: "expected ':' after object key (at byte 9)".to_string(),
                job: None,
            },
            Frame::Error {
                code: ErrorCode::JobFailed,
                detail: "worker panic".to_string(),
                job: Some(3),
            },
            Frame::Error {
                code: ErrorCode::DeadlineExceeded,
                detail: "deadline of 50ms exceeded".to_string(),
                job: Some(4),
            },
            Frame::Rejected {
                code: RejectCode::Saturated,
                detail: "job queue full (8 active)".to_string(),
                retry_after_ms: Some(40),
            },
            Frame::Rejected {
                code: RejectCode::Draining,
                detail: "daemon is draining".to_string(),
                retry_after_ms: None,
            },
            Frame::Draining { active_jobs: 2 },
            Frame::Pong {
                journal_hits: 12,
                journal_misses: 5,
            },
            Frame::Bye,
        ] {
            let line = frame.to_json().to_string();
            let back = Frame::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(back, frame, "through {line}");
        }
    }

    #[test]
    fn pre_telemetry_pongs_decode_with_zero_counters() {
        let line = "{\"frame\":\"pong\",\"proto\":\"sg-serve/1\"}";
        let Frame::Pong {
            journal_hits,
            journal_misses,
        } = Frame::from_json(&Json::parse(line).unwrap()).unwrap()
        else {
            panic!("not a pong");
        };
        assert_eq!((journal_hits, journal_misses), (0, 0));
    }

    #[test]
    fn pre_journal_summaries_decode_with_zero_cached_cells() {
        let line = "{\"frame\":\"summary\",\"job\":7,\"cells\":4,\"total_runs\":400,\
                    \"report_fingerprint\":\"40c18433ac711905\",\"wall_ms\":95.2}";
        let Frame::Summary { cached_cells, .. } =
            Frame::from_json(&Json::parse(line).unwrap()).unwrap()
        else {
            panic!("not a summary");
        };
        assert_eq!(cached_cells, 0);
    }

    #[test]
    fn proto_mismatch_is_rejected() {
        let line = "{\"op\":\"ping\",\"proto\":\"sg-serve/99\"}";
        assert!(Request::from_json(&Json::parse(line).unwrap()).is_err());
        let ok = "{\"op\":\"ping\",\"proto\":\"sg-serve/1\"}";
        assert!(Request::from_json(&Json::parse(ok).unwrap()).is_ok());
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::BadJson,
            ErrorCode::BadRequest,
            ErrorCode::UnsupportedProto,
            ErrorCode::UnknownJob,
            ErrorCode::Rejected,
            ErrorCode::JobFailed,
            ErrorCode::DeadlineExceeded,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }

    #[test]
    fn reject_codes_round_trip() {
        for code in [RejectCode::Saturated, RejectCode::Draining] {
            assert_eq!(RejectCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(RejectCode::parse("nope"), None);
        // `rejected` the frame and `rejected` the error code are
        // different animals: the former declines work it never ran, the
        // latter reports a plan that could never run at all.
        assert_eq!(ErrorCode::Rejected.as_str(), "rejected");
    }
}
