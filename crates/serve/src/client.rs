//! Client side of `sg-serve/1`: connect, submit, stream, reassemble.
//!
//! [`Client::submit_and_collect`] is the whole round trip: it submits a
//! [`SweepPlan`], folds the streamed cell frames back into a
//! [`SweepReport`] (bit-identical to what `SweepPlan::run` would have
//! produced locally — the wire encoding round-trips exactly), and
//! cross-checks the server's summary fingerprint against one recomputed
//! from the received cells, so wire corruption or a misbehaving server
//! cannot go unnoticed.
//!
//! # Robustness
//!
//! Against a saturated or flaky daemon the client is *bounded*, never
//! hopeful: [`Client::connect_with_retry`] and
//! [`Client::submit_with_retry`] make at most [`RetryPolicy::attempts`]
//! tries with exponential backoff and deterministic jitter (seeded —
//! the workspace is `Date`-free, so the same seed replays the same
//! schedule), honour the server's `retry_after_ms` hint on `saturated`
//! rejections, give up immediately on `draining` (that daemon will not
//! change its mind), and never retry past a job's own `deadline_ms`
//! budget.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use serde::json::Value as Json;
use serde::{FromJson, ToJson};
use sg_analysis::{CellReport, Fingerprint, SweepPlan, SweepReport};

use crate::wire::{ErrorCode, Frame, RejectCode, Request};

/// Anything that can go wrong talking to a daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent something the protocol does not allow here.
    Protocol(String),
    /// The server answered with an `error` frame.
    Server {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The server declined the submit with a `rejected` frame
    /// (admission control); nothing ran and the connection is usable.
    Rejected {
        /// Machine-readable reason (`saturated` or `draining`).
        code: RejectCode,
        /// Human-readable detail.
        detail: String,
        /// The server's back-off hint, when it wants a retry.
        retry_after_ms: Option<u64>,
    },
    /// The job was cancelled before completing.
    Cancelled {
        /// The cancelled job.
        job: u64,
        /// Cell frames received before the cancellation.
        cells_streamed: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            ServeError::Server { code, detail } => {
                write!(f, "server error [{}]: {detail}", code.as_str())
            }
            ServeError::Rejected { code, detail, .. } => {
                write!(f, "submit rejected [{}]: {detail}", code.as_str())
            }
            ServeError::Cancelled {
                job,
                cells_streamed,
            } => write!(f, "job {job} cancelled after {cells_streamed} cell(s)"),
        }
    }
}

/// Bounded exponential backoff with deterministic jitter.
///
/// Delay before retry `k` (0-based) is `base_ms · 2^k`, capped at
/// `max_ms`, then jittered to 50–150% by a [`rand::rngs::StdRng`]
/// seeded from `seed` — no wall clock anywhere, so a given policy
/// replays the same schedule every time (the property the load
/// harness's committed benchmark relies on).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total tries (first attempt included). 0 behaves as 1.
    pub attempts: u32,
    /// Delay before the first retry, milliseconds.
    pub base_ms: u64,
    /// Ceiling on any single delay, milliseconds.
    pub max_ms: u64,
    /// Jitter seed; submits derive it from the plan's `base_seed`.
    pub seed: u64,
}

impl RetryPolicy {
    /// A sane default: 5 tries, 20 ms → 1 s exponential, jitter from
    /// `seed`.
    pub fn deterministic(seed: u64) -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base_ms: 20,
            max_ms: 1_000,
            seed,
        }
    }

    /// The jittered delay before retry `k`, in milliseconds.
    fn delay_ms(&self, k: u32, rng: &mut rand::rngs::StdRng) -> u64 {
        use rand::Rng;
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(k).unwrap_or(u64::MAX))
            .min(self.max_ms)
            .max(1);
        // 50–150% of the exponential step.
        exp / 2 + rng.gen_range(0..exp.max(1))
    }

    fn rng(&self) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(self.seed)
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ClientStream {
    fn reader(&self) -> io::Result<Box<dyn io::Read + Send>> {
        Ok(match self {
            ClientStream::Tcp(s) => Box::new(s.try_clone()?),
            #[cfg(unix)]
            ClientStream::Unix(s) => Box::new(s.try_clone()?),
        })
    }

    fn writer(&mut self) -> &mut dyn Write {
        match self {
            ClientStream::Tcp(s) => s,
            #[cfg(unix)]
            ClientStream::Unix(s) => s,
        }
    }
}

/// An accepted submission, returned by [`Client::submit`].
#[derive(Clone, Copy, Debug)]
pub struct JobHandle {
    /// Server-assigned job id.
    pub job: u64,
    /// Cells the job will stream.
    pub cells: usize,
    /// Executions the job will perform.
    pub total_runs: u64,
}

/// A completed submission, reassembled client-side.
#[derive(Debug)]
pub struct StreamedReport {
    /// The job that produced it.
    pub job: u64,
    /// The reassembled report — bit-comparable to `SweepPlan::run`.
    pub report: SweepReport,
    /// The fingerprint both sides agreed on.
    pub fingerprint: u64,
    /// Server-measured wall time (accept → last cell), milliseconds.
    pub wall_ms: f64,
    /// Cells the daemon answered from its result journal (0 unless it
    /// runs with `--journal`).
    pub cached_cells: usize,
}

/// One connection to a daemon.
pub struct Client {
    lines: BufReader<Box<dyn io::Read + Send>>,
    stream: ClientStream,
    /// Job-scoped frames that arrived while a request was waiting for
    /// its own answer (a still-streaming job's cells can interleave
    /// with a later submit's `accepted`/`rejected`); [`Client::collect`]
    /// drains these before reading the socket again.
    pending: VecDeque<Frame>,
}

impl Client {
    /// Connects to `addr` (`host:port` or `unix:/path`), retrying until
    /// `timeout` elapses — which doubles as the wait-for-daemon-startup
    /// loop in scripts and CI.
    ///
    /// # Errors
    ///
    /// Returns the last connect error once the deadline passes.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            let attempt = Self::connect_once(addr);
            match attempt {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Connects with bounded, jittered backoff: at most
    /// `policy.attempts` tries, sleeping `policy`'s deterministic
    /// schedule between them. The bounded sibling of
    /// [`Client::connect`] for scripts that must fail fast with a
    /// clear exit instead of spinning (`sg ping --attempts`).
    ///
    /// # Errors
    ///
    /// Returns the last connect error once attempts are exhausted.
    pub fn connect_with_retry(addr: &str, policy: &RetryPolicy) -> io::Result<Client> {
        let mut rng = policy.rng();
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for k in 0..attempts {
            match Self::connect_once(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
            if k + 1 < attempts {
                std::thread::sleep(Duration::from_millis(policy.delay_ms(k, &mut rng)));
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connect attempts made")))
    }

    fn connect_once(addr: &str) -> io::Result<Client> {
        #[cfg(unix)]
        if let Some(path) = addr.strip_prefix("unix:") {
            let stream = UnixStream::connect(path)?;
            let stream = ClientStream::Unix(stream);
            return Ok(Client {
                lines: BufReader::new(stream.reader()?),
                stream,
                pending: VecDeque::new(),
            });
        }
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let stream = ClientStream::Tcp(stream);
        Ok(Client {
            lines: BufReader::new(stream.reader()?),
            stream,
            pending: VecDeque::new(),
        })
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the connection is gone.
    pub fn send(&mut self, request: &Request) -> Result<(), ServeError> {
        let writer = self.stream.writer();
        writeln!(writer, "{}", request.to_json())?;
        writer.flush()?;
        Ok(())
    }

    /// Reads the next frame.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on EOF and [`ServeError::Protocol`] on
    /// an unparseable line.
    pub fn next_frame(&mut self) -> Result<Frame, ServeError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.lines.read_line(&mut line)?;
            if n == 0 {
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            let doc = Json::parse(text)
                .map_err(|e| ServeError::Protocol(format!("unparseable frame: {e}")))?;
            return Frame::from_json(&doc)
                .map_err(|e| ServeError::Protocol(format!("unexpected frame: {e}")));
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Errors if the daemon is unreachable or answers anything but pong.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.ping_stats().map(|_| ())
    }

    /// Liveness probe that also returns the daemon's cumulative
    /// result-journal telemetry as `(hits, misses)` — cells served from
    /// the journal vs computed, summed over every submit since startup.
    /// Both are 0 when the daemon runs without `--journal` (or predates
    /// the telemetry fields).
    ///
    /// # Errors
    ///
    /// Errors if the daemon is unreachable or answers anything but pong.
    pub fn ping_stats(&mut self) -> Result<(u64, u64), ServeError> {
        self.send(&Request::Ping)?;
        match self.next_frame()? {
            Frame::Pong {
                journal_hits,
                journal_misses,
            } => Ok((journal_hits, journal_misses)),
            other => Err(ServeError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to exit.
    ///
    /// # Errors
    ///
    /// Errors if the daemon is unreachable or does not acknowledge.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        self.send(&Request::Shutdown)?;
        match self.next_frame()? {
            Frame::Bye => Ok(()),
            other => Err(ServeError::Protocol(format!("expected bye, got {other:?}"))),
        }
    }

    /// Submits `plan` and waits for the accept frame.
    ///
    /// # Errors
    ///
    /// Surfaces an invalid plan's `error` frame as
    /// [`ServeError::Server`] and an admission-control `rejected` frame
    /// as [`ServeError::Rejected`].
    pub fn submit(&mut self, plan: &SweepPlan) -> Result<JobHandle, ServeError> {
        self.submit_with_deadline(plan, None)
    }

    /// [`Client::submit`] with an optional `deadline_ms` completion
    /// budget, enforced server-side at the cancellation quantum.
    ///
    /// # Errors
    ///
    /// See [`Client::submit`].
    pub fn submit_with_deadline(
        &mut self,
        plan: &SweepPlan,
        deadline_ms: Option<u64>,
    ) -> Result<JobHandle, ServeError> {
        self.send(&Request::Submit {
            plan: plan.clone(),
            deadline_ms,
        })?;
        // A still-streaming job on this connection may interleave its
        // frames with this submit's answer; park those for the job's
        // own `collect` call rather than treating them as violations.
        loop {
            match self.next_frame()? {
                Frame::Accepted {
                    job,
                    cells,
                    total_runs,
                } => {
                    return Ok(JobHandle {
                        job,
                        cells,
                        total_runs,
                    })
                }
                Frame::Rejected {
                    code,
                    detail,
                    retry_after_ms,
                } => {
                    return Err(ServeError::Rejected {
                        code,
                        detail,
                        retry_after_ms,
                    })
                }
                Frame::Error {
                    code,
                    detail,
                    job: None,
                } => return Err(ServeError::Server { code, detail }),
                frame @ (Frame::Cell { .. }
                | Frame::Summary { .. }
                | Frame::Cancelled { .. }
                | Frame::Error { job: Some(_), .. }) => self.pending.push_back(frame),
                other => {
                    return Err(ServeError::Protocol(format!(
                        "expected accepted, got {other:?}"
                    )))
                }
            }
        }
    }

    /// [`Client::submit_with_deadline`] wrapped in bounded retry: a
    /// `saturated` rejection sleeps the larger of the server's
    /// `retry_after_ms` hint and the policy's own jittered backoff,
    /// then resubmits — at most `policy.attempts` times, and never past
    /// the job's `deadline_ms` budget (which spans the whole retry
    /// loop, not each attempt). A `draining` rejection fails
    /// immediately: that daemon will not take the job, ever.
    ///
    /// The policy seed should derive from the plan's `base_seed`
    /// (that is what [`RetryPolicy::deterministic`] callers here do),
    /// keeping the whole schedule replayable.
    ///
    /// # Errors
    ///
    /// The last rejection once attempts (or the deadline budget) are
    /// exhausted; any other error immediately.
    pub fn submit_with_retry(
        &mut self,
        plan: &SweepPlan,
        deadline_ms: Option<u64>,
        policy: &RetryPolicy,
    ) -> Result<JobHandle, ServeError> {
        let started = Instant::now();
        let mut rng = policy.rng();
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for k in 0..attempts {
            match self.submit_with_deadline(plan, deadline_ms) {
                Err(ServeError::Rejected {
                    code: RejectCode::Saturated,
                    detail,
                    retry_after_ms,
                }) => {
                    let wait = retry_after_ms
                        .unwrap_or(0)
                        .max(policy.delay_ms(k, &mut rng));
                    last = Some(ServeError::Rejected {
                        code: RejectCode::Saturated,
                        detail,
                        retry_after_ms,
                    });
                    if k + 1 == attempts {
                        break;
                    }
                    if let Some(budget) = deadline_ms {
                        let spent = started.elapsed().as_millis() as u64;
                        if spent.saturating_add(wait) >= budget {
                            break;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(wait));
                }
                outcome => return outcome,
            }
        }
        Err(last.expect("at least one submit attempt"))
    }

    /// Requests cancellation of `job` (the stream will end with a
    /// `cancelled` frame, surfaced by [`Client::collect`] as
    /// [`ServeError::Cancelled`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the connection is gone.
    pub fn cancel(&mut self, job: u64) -> Result<(), ServeError> {
        self.send(&Request::Cancel { job })
    }

    /// Drains `handle`'s stream to its terminal frame, invoking
    /// `on_cell` per cell (in grid order) and returning the reassembled
    /// report.
    ///
    /// # Errors
    ///
    /// [`ServeError::Cancelled`] if the job was cancelled,
    /// [`ServeError::Server`] if it failed, and
    /// [`ServeError::Protocol`] on out-of-order cells, count mismatches,
    /// or a summary fingerprint that does not match the received cells.
    pub fn collect(
        &mut self,
        handle: JobHandle,
        mut on_cell: impl FnMut(usize, &CellReport),
    ) -> Result<StreamedReport, ServeError> {
        let mut cells: Vec<CellReport> = Vec::with_capacity(handle.cells);
        let mut fingerprint = Fingerprint::new();
        loop {
            let frame = match self.pending.pop_front() {
                Some(parked) => parked,
                None => self.next_frame()?,
            };
            match frame {
                Frame::Cell { job, index, cell } if job == handle.job => {
                    if index != cells.len() {
                        return Err(ServeError::Protocol(format!(
                            "cell {index} arrived out of order (expected {})",
                            cells.len()
                        )));
                    }
                    fingerprint.mix_cell(&cell);
                    on_cell(index, &cell);
                    cells.push(*cell);
                }
                Frame::Summary {
                    job,
                    cells: cell_count,
                    total_runs,
                    report_fingerprint,
                    wall_ms,
                    cached_cells,
                } if job == handle.job => {
                    if cell_count != cells.len() || cell_count != handle.cells {
                        return Err(ServeError::Protocol(format!(
                            "summary says {cell_count} cells, streamed {}",
                            cells.len()
                        )));
                    }
                    if report_fingerprint != fingerprint.hex() {
                        return Err(ServeError::Protocol(format!(
                            "fingerprint mismatch: server {report_fingerprint}, \
                             recomputed {} from the streamed cells",
                            fingerprint.hex()
                        )));
                    }
                    return Ok(StreamedReport {
                        job,
                        report: SweepReport { total_runs, cells },
                        fingerprint: fingerprint.value(),
                        wall_ms,
                        cached_cells,
                    });
                }
                Frame::Cancelled {
                    job,
                    cells_streamed,
                } if job == handle.job => {
                    return Err(ServeError::Cancelled {
                        job,
                        cells_streamed,
                    })
                }
                Frame::Error { code, detail, job } if job == Some(handle.job) => {
                    return Err(ServeError::Server { code, detail })
                }
                other => {
                    return Err(ServeError::Protocol(format!(
                        "unexpected frame while streaming job {}: {other:?}",
                        handle.job
                    )))
                }
            }
        }
    }

    /// [`Client::submit`] + [`Client::collect`] in one call.
    ///
    /// # Errors
    ///
    /// See [`Client::submit`] and [`Client::collect`].
    pub fn submit_and_collect(&mut self, plan: &SweepPlan) -> Result<StreamedReport, ServeError> {
        let handle = self.submit(plan)?;
        self.collect(handle, |_, _| {})
    }
}
