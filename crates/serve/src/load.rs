//! The serving-path load harness: N concurrent clients, mixed grids,
//! optional chaos, and a latency/throughput report.
//!
//! [`run_load`] is what `repro --exp serve-load` and `sg hammer` both
//! drive: it starts one in-process daemon under admission control,
//! hammers it from [`LoadOptions::connections`] client threads running
//! a deterministic mix of grid sizes (optionally routing every other
//! connection through a [`ChaosProxy`]), and checks that **every job
//! that completes reproduces its batch `report_fingerprint`
//! bit-exactly** — overload and a hostile network may slow or kill
//! jobs, never corrupt them.
//!
//! The resulting [`LoadReport`] serializes to the committed
//! `BENCH_serve.json` (schema `sg-serve-load/1`), giving the serving
//! path the same ratcheting perf trajectory the sweep path has:
//!
//! ```text
//! {"schema":"sg-serve-load/1","connections":4,…,
//!  "jobs":{"submitted":16,"completed":14,"rejected":1,"deadline":0,"faulted":1},
//!  "fingerprint_mismatches":0,
//!  "runs_completed":33600,"wall_ms":412.7,"runs_per_sec":81414.1,
//!  "frames":42,"frame_latency_ms":{"p50":8.1,"p99":40.2,"max":55.0}}
//! ```
//!
//! Frame latency is measured on the *clean* (non-chaos) connections
//! only — submit→`accepted`, `accepted`→first cell, then successive
//! cell gaps — so the number tracks daemon scheduling under cross-load
//! rather than the proxy's injected sleeps. Chaos connections
//! contribute to the fault and fingerprint columns instead.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use sg_adversary::FaultSelection;
use sg_analysis::{AdversaryFamily, SweepConfig, SweepPlan};
use sg_core::AlgorithmSpec;

use crate::chaos::{ChaosProxy, ChaosSpec};
use crate::client::{Client, RetryPolicy, ServeError};
use crate::server::{serve, Bind, ServeOptions};
use crate::wire::ErrorCode;

/// What [`run_load`] should do.
#[derive(Clone, Copy, Debug)]
pub struct LoadOptions {
    /// Concurrent client connections.
    pub connections: usize,
    /// Jobs each connection submits, one after another.
    pub jobs_per_connection: usize,
    /// Seeds per cell in every plan of the mix (the scale knob).
    pub seeds_per_cell: u64,
    /// Daemon worker threads.
    pub workers: usize,
    /// Daemon scheduling quantum (runs between cancel/deadline checks).
    pub quantum: u64,
    /// Daemon-wide active-job cap (0 = unlimited).
    pub max_jobs: usize,
    /// Daemon-wide queued-runs cap (0 = unlimited).
    pub max_queued_runs: u64,
    /// Per-job `deadline_ms` submitted with every job, if any.
    pub deadline_ms: Option<u64>,
    /// Submit/connect retry attempts per job.
    pub retry_attempts: u32,
    /// Route every other connection through a chaos proxy.
    pub chaos: Option<ChaosSpec>,
    /// Seeds the plans and every retry-jitter stream.
    pub base_seed: u64,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            connections: 4,
            jobs_per_connection: 4,
            seeds_per_cell: 48,
            workers: 2,
            quantum: 64,
            max_jobs: 6,
            max_queued_runs: 0,
            deadline_ms: None,
            retry_attempts: 8,
            chaos: None,
            base_seed: 42,
        }
    }
}

/// Aggregated outcome of one [`run_load`] — the `sg-serve-load/1`
/// artifact.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Connections driven.
    pub connections: usize,
    /// Jobs per connection.
    pub jobs_per_connection: usize,
    /// Seeds per cell in the plan mix.
    pub seeds_per_cell: u64,
    /// Daemon workers.
    pub workers: usize,
    /// Whether a chaos proxy was in the path.
    pub chaos: bool,
    /// Jobs submitted (retries of the same job count once).
    pub jobs_submitted: u64,
    /// Jobs that streamed to a bit-exact summary.
    pub jobs_completed: u64,
    /// Jobs that gave up after bounded `saturated`/`draining` retries.
    pub jobs_rejected: u64,
    /// Jobs ended by `deadline-exceeded`.
    pub jobs_deadline: u64,
    /// Jobs killed by transport faults (chaos) or server failure.
    pub jobs_faulted: u64,
    /// Completed jobs whose fingerprint diverged from the batch path —
    /// **must be zero**; the CI gate fails otherwise.
    pub fingerprint_mismatches: u64,
    /// Runs inside completed jobs.
    pub runs_completed: u64,
    /// Wall time of the whole client phase, milliseconds.
    pub wall_ms: f64,
    /// `runs_completed / wall`, the serving-path throughput.
    pub runs_per_sec: f64,
    /// Frame-latency samples collected on clean connections.
    pub frames: u64,
    /// Median frame latency, milliseconds.
    pub frame_latency_p50_ms: f64,
    /// 99th-percentile frame latency, milliseconds.
    pub frame_latency_p99_ms: f64,
    /// Worst observed frame latency, milliseconds.
    pub frame_latency_max_ms: f64,
}

impl LoadReport {
    /// Renders the committed `BENCH_serve.json` document.
    pub fn to_json_string(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"sg-serve-load/1\",\n",
                "  \"connections\": {},\n",
                "  \"jobs_per_connection\": {},\n",
                "  \"seeds_per_cell\": {},\n",
                "  \"workers\": {},\n",
                "  \"chaos\": {},\n",
                "  \"jobs\": {{\"submitted\": {}, \"completed\": {}, \"rejected\": {}, ",
                "\"deadline\": {}, \"faulted\": {}}},\n",
                "  \"fingerprint_mismatches\": {},\n",
                "  \"runs_completed\": {},\n",
                "  \"wall_ms\": {:.3},\n",
                "  \"runs_per_sec\": {:.1},\n",
                "  \"frames\": {},\n",
                "  \"frame_latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}}\n",
                "}}\n"
            ),
            self.connections,
            self.jobs_per_connection,
            self.seeds_per_cell,
            self.workers,
            self.chaos,
            self.jobs_submitted,
            self.jobs_completed,
            self.jobs_rejected,
            self.jobs_deadline,
            self.jobs_faulted,
            self.fingerprint_mismatches,
            self.runs_completed,
            self.wall_ms,
            self.runs_per_sec,
            self.frames,
            self.frame_latency_p50_ms,
            self.frame_latency_p99_ms,
            self.frame_latency_max_ms,
        )
    }
}

/// The deterministic grid mix: four plans of genuinely different shapes
/// and sizes, so concurrent jobs stress interleaving rather than
/// marching in lockstep.
fn plan_mix(seeds_per_cell: u64, base_seed: u64) -> Vec<SweepPlan> {
    let families = || {
        vec![
            AdversaryFamily::no_faults(),
            AdversaryFamily::random_liar(FaultSelection::without_source()),
            AdversaryFamily::crash(FaultSelection::without_source().limit(1), 2),
        ]
    };
    [
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 7, 2)],
        vec![SweepConfig::traced(AlgorithmSpec::PhaseKing, 9, 2)],
        vec![
            SweepConfig::traced(AlgorithmSpec::Hybrid { b: 3 }, 10, 3),
            SweepConfig::traced(AlgorithmSpec::PhaseQueen, 9, 2),
        ],
        vec![SweepConfig::traced(AlgorithmSpec::OptimalKing, 16, 5)],
    ]
    .into_iter()
    .enumerate()
    .map(|(i, configs)| {
        SweepPlan::new(configs, families(), seeds_per_cell)
            .with_base_seed(base_seed.wrapping_add(i as u64))
    })
    .collect()
}

/// Per-connection tallies, merged after the join.
#[derive(Default)]
struct ConnStats {
    submitted: u64,
    completed: u64,
    rejected: u64,
    deadline: u64,
    faulted: u64,
    mismatches: u64,
    runs: u64,
    latencies_ms: Vec<f64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One connection thread's whole life: submit the plan rotation,
/// stream every job, reconnect (bounded) after transport faults.
fn drive_connection(
    addr: SocketAddr,
    conn_index: usize,
    plans: &[SweepPlan],
    batch_fingerprints: &[u64],
    options: &LoadOptions,
    measure_latency: bool,
) -> ConnStats {
    let mut stats = ConnStats::default();
    let policy = RetryPolicy {
        attempts: options.retry_attempts.max(1),
        ..RetryPolicy::deterministic(options.base_seed ^ (conn_index as u64).wrapping_mul(0x9E37))
    };
    let addr_str = addr.to_string();
    let mut client: Option<Client> = None;
    for j in 0..options.jobs_per_connection {
        let which = (conn_index + j) % plans.len();
        let plan = &plans[which];
        stats.submitted += 1;
        // (Re)connect lazily: a chaos fault may have killed the socket
        // mid-previous-job.
        if client.is_none() {
            match Client::connect_with_retry(&addr_str, &policy) {
                Ok(c) => client = Some(c),
                Err(_) => {
                    stats.faulted += 1;
                    continue;
                }
            }
        }
        let c = client.as_mut().expect("connected client");
        let submitted_at = Instant::now();
        let handle = match c.submit_with_retry(plan, options.deadline_ms, &policy) {
            Ok(handle) => handle,
            Err(ServeError::Rejected { .. }) => {
                stats.rejected += 1;
                continue;
            }
            Err(ServeError::Server { .. }) => {
                stats.faulted += 1;
                continue;
            }
            Err(_) => {
                stats.faulted += 1;
                client = None;
                continue;
            }
        };
        let mut previous = submitted_at;
        let mut laps: Vec<f64> = Vec::new();
        // submit→accepted is the first latency sample; then cell gaps.
        laps.push(previous.elapsed().as_secs_f64() * 1e3);
        let outcome = c.collect(handle, |_, _| {
            let now = Instant::now();
            laps.push(now.duration_since(previous).as_secs_f64() * 1e3);
            previous = now;
        });
        match outcome {
            Ok(streamed) => {
                stats.completed += 1;
                stats.runs += handle.total_runs;
                if streamed.fingerprint != batch_fingerprints[which] {
                    stats.mismatches += 1;
                }
                if measure_latency {
                    stats.latencies_ms.extend(laps);
                }
            }
            Err(ServeError::Server {
                code: ErrorCode::DeadlineExceeded,
                ..
            }) => {
                stats.deadline += 1;
            }
            Err(ServeError::Server { .. } | ServeError::Cancelled { .. }) => {
                stats.faulted += 1;
            }
            Err(_) => {
                stats.faulted += 1;
                client = None;
            }
        }
    }
    stats
}

/// Runs the whole load experiment: daemon up, optional chaos proxy,
/// client fleet, aggregation. See the module docs for what the numbers
/// mean.
///
/// # Panics
///
/// Panics if the in-process daemon or proxy cannot bind localhost.
pub fn run_load(options: &LoadOptions) -> LoadReport {
    let plans = plan_mix(options.seeds_per_cell, options.base_seed);
    let batch_fingerprints: Vec<u64> = plans
        .iter()
        .map(|plan| plan.run_with_jobs(1).fingerprint())
        .collect();

    let handle = serve(
        &Bind::Tcp("127.0.0.1:0".to_string()),
        ServeOptions {
            workers: options.workers,
            quantum: options.quantum,
            max_jobs: options.max_jobs,
            max_queued_runs: options.max_queued_runs,
            ..ServeOptions::default()
        },
    )
    .expect("bind load daemon");
    let direct = handle.tcp_addr().expect("daemon tcp addr");
    let proxy = options
        .chaos
        .map(|spec| ChaosProxy::spawn(direct, spec).expect("bind chaos proxy"));

    let started = Instant::now();
    let plans = Arc::new(plans);
    let batch_fingerprints = Arc::new(batch_fingerprints);
    let options_copy = *options;
    let threads: Vec<_> = (0..options.connections.max(1))
        .map(|i| {
            // Odd connections go through the proxy (when chaos is on);
            // even ones stay clean and carry the latency measurement.
            let through_chaos = proxy.is_some() && i % 2 == 1;
            let addr = match (&proxy, through_chaos) {
                (Some(p), true) => p.addr(),
                _ => direct,
            };
            let plans = Arc::clone(&plans);
            let fps = Arc::clone(&batch_fingerprints);
            std::thread::Builder::new()
                .name(format!("sg-hammer-{i}"))
                .spawn(move || {
                    drive_connection(addr, i, &plans, &fps, &options_copy, !through_chaos)
                })
                .expect("spawn load connection")
        })
        .collect();

    let mut total = ConnStats::default();
    for thread in threads {
        let stats = thread.join().expect("load connection thread");
        total.submitted += stats.submitted;
        total.completed += stats.completed;
        total.rejected += stats.rejected;
        total.deadline += stats.deadline;
        total.faulted += stats.faulted;
        total.mismatches += stats.mismatches;
        total.runs += stats.runs;
        total.latencies_ms.extend(stats.latencies_ms);
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    drop(proxy);
    handle.shutdown();

    total
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    LoadReport {
        connections: options.connections.max(1),
        jobs_per_connection: options.jobs_per_connection,
        seeds_per_cell: options.seeds_per_cell,
        workers: options.workers,
        chaos: options.chaos.is_some(),
        jobs_submitted: total.submitted,
        jobs_completed: total.completed,
        jobs_rejected: total.rejected,
        jobs_deadline: total.deadline,
        jobs_faulted: total.faulted,
        fingerprint_mismatches: total.mismatches,
        runs_completed: total.runs,
        wall_ms,
        runs_per_sec: if wall_ms > 0.0 {
            total.runs as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        frames: total.latencies_ms.len() as u64,
        frame_latency_p50_ms: percentile(&total.latencies_ms, 50.0),
        frame_latency_p99_ms: percentile(&total.latencies_ms, 99.0),
        frame_latency_max_ms: total.latencies_ms.last().copied().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&sorted, 50.0), 5.0);
        assert_eq!(percentile(&sorted, 99.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[3.5], 99.0), 3.5);
    }

    #[test]
    fn the_plan_mix_is_deterministic_and_varied() {
        let a = plan_mix(8, 42);
        let b = plan_mix(8, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.run_with_jobs(1).fingerprint(),
                y.run_with_jobs(1).fingerprint(),
                "same mix, same fingerprints"
            );
        }
        let sizes: Vec<usize> = a.iter().map(|p| p.configs[0].n).collect();
        assert!(sizes.contains(&7) && sizes.contains(&16), "mixed sizes");
    }
}
