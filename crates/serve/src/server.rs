//! The daemon: listener, connection handlers, and the persistent worker
//! pool.
//!
//! # Architecture
//!
//! ```text
//! accept loop ──► connection thread (one per client)
//!                   │  reader thread: NDJSON lines → requests
//!                   │  writer: frames, cells reordered into grid order
//!                   ▼
//!                scheduler: round-robin queue of active jobs
//!                   ▲
//! worker pool ──────┘  N threads, each owning ONE RunArena for life
//! ```
//!
//! Work is scheduled at **cell granularity**: a worker pops the front
//! job, claims its next unclaimed cell, requeues the job at the back (so
//! concurrent jobs interleave fairly), and executes the cell through the
//! sweep engine's [`sg_analysis::CellCursor`] in its own long-lived
//! [`RunArena`] —
//! the same arena across cells, jobs, *and requests*, which is what
//! keeps protocol-instance pools warm daemon-wide. Cancellation is
//! checked between cursor batches ([`ServeOptions::quantum`] runs), so a
//! cancel lands within a few milliseconds even mid-cell.
//!
//! # Determinism
//!
//! Cell execution order is scheduling-dependent; cell *content* is not:
//! the sweep engine's coordinate-pure seeding means every run's seed
//! depends only on its grid position, and the pooled executor is pinned
//! bit-identical to the fresh one. Connection handlers re-order
//! completed cells into grid order before streaming, and fold the
//! summary fingerprint in that order — so the summary frame's
//! `report_fingerprint` is bit-identical to `SweepPlan::run` on the same
//! grid, whatever the daemon had running concurrently.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use serde::json::Value as Json;
use serde::{FromJson, ToJson};
use sg_analysis::{CellReport, Fingerprint, SweepPlan};
use sg_sim::RunArena;

use crate::wire::{ErrorCode, Frame, Request};

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Bind {
    /// A TCP socket address, e.g. `127.0.0.1:7411` (`:0` picks a free
    /// port — read it back from [`ServerHandle::tcp_addr`]).
    Tcp(String),
    /// A unix-domain socket path (removed and re-created on bind).
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Bind {
    /// Parses a CLI/bench address: `unix:/path` or `host:port`.
    pub fn parse(addr: &str) -> Bind {
        #[cfg(unix)]
        if let Some(path) = addr.strip_prefix("unix:") {
            return Bind::Unix(PathBuf::from(path));
        }
        Bind::Tcp(addr.to_string())
    }
}

/// Daemon tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Worker threads (0 = one per hardware thread).
    pub workers: usize,
    /// Runs executed between cancellation checks inside one cell.
    pub quantum: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            quantum: 64,
        }
    }
}

/// What a worker reports back to the owning connection, always sent
/// under the job-core lock so terminal events are unique and ordered.
enum JobEvent {
    /// A completed cell (grid index attached); `last` marks the job's
    /// final cell.
    Cell {
        index: usize,
        cell: Box<CellReport>,
        last: bool,
    },
    /// Terminal: the job was cancelled and no further frames will come.
    Cancelled,
    /// Terminal: a worker panicked executing this job.
    Failed { detail: String },
}

/// Everything a connection thread can be woken by.
enum ConnEvent {
    /// A parsed request line (or the decode error to report).
    Request(Result<Request, (ErrorCode, String)>),
    /// The client closed or broke the connection.
    Gone,
    /// Progress on a job submitted by this connection.
    Job(u64, JobEvent),
}

/// Mutable per-job scheduling state; one lock per job.
struct JobCore {
    /// Next unclaimed flat cell index.
    next_cell: usize,
    /// Cells currently executing on workers.
    outstanding: usize,
    /// Cells fully executed and reported.
    done: usize,
    /// Set by cancel (or worker panic); stops claiming and aborts runs.
    cancelled: bool,
    /// Whether a terminal event (`last` cell, `Cancelled`, `Failed`)
    /// has been emitted — exactly one ever is.
    terminal_sent: bool,
}

/// One submitted grid, shared between the scheduler, workers, and the
/// owning connection.
struct Job {
    id: u64,
    plan: SweepPlan,
    /// Lock-free fast path for the in-cell cancellation check.
    cancel: AtomicBool,
    core: Mutex<JobCore>,
    events: Sender<ConnEvent>,
}

impl Job {
    fn cell_count(&self) -> usize {
        self.plan.cell_count()
    }

    /// Marks the job cancelled; emits the terminal event immediately if
    /// no worker is mid-cell (otherwise the last such worker does).
    fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
        let mut core = self.core.lock().expect("job core");
        core.cancelled = true;
        if core.outstanding == 0 && !core.terminal_sent {
            core.terminal_sent = true;
            let _ = self
                .events
                .send(ConnEvent::Job(self.id, JobEvent::Cancelled));
        }
    }
}

/// Scheduler + lifecycle state shared by every thread of one daemon.
struct Shared {
    /// Round-robin queue of jobs with unclaimed cells.
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Signals workers that the queue changed (or the daemon stops).
    available: Condvar,
    /// Daemon-wide stop flag.
    stop: AtomicBool,
    /// Monotonic job-id source.
    next_job: AtomicU64,
    /// Monotonic connection-id source (keys the registry below).
    next_conn: AtomicU64,
    /// Event senders of live connections, so [`Shared::begin_stop`] can
    /// wake every connection loop — a client mid-stream would otherwise
    /// block in `recv()` forever when some other client shuts the
    /// daemon down.
    conns: Mutex<HashMap<u64, Sender<ConnEvent>>>,
    /// Unblocks the accept loop once `stop` is up (self-connect).
    poke: Arc<dyn Fn() + Send + Sync>,
    options: ServeOptions,
}

impl Shared {
    /// Enqueues a job for the worker pool.
    fn enqueue(&self, job: Arc<Job>) {
        self.queue.lock().expect("job queue").push_back(job);
        self.available.notify_all();
    }

    /// Blocks until a job is available (or the daemon stops).
    fn next(&self) -> Option<Arc<Job>> {
        let mut queue = self.queue.lock().expect("job queue");
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            queue = self.available.wait(queue).expect("job queue");
        }
    }

    /// Stops the daemon: raises the flag, wakes idle workers, unblocks
    /// the accept loop, and tells every live connection to wind down
    /// (cancelling its jobs and closing its socket, so streaming
    /// clients see EOF rather than a hang).
    fn begin_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.available.notify_all();
        (self.poke)();
        for tx in self.conns.lock().expect("conn registry").values() {
            let _ = tx.send(ConnEvent::Gone);
        }
    }
}

/// A byte stream the daemon can serve — TCP or unix-domain.
trait Conn: io::Read + io::Write + Send {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>>;

    /// Shuts the underlying connection down for real (both directions,
    /// all clones) — closing one dup'd handle alone would not send the
    /// peer an EOF while the reader thread still holds another.
    fn shutdown_conn(&self);
}

impl Conn for TcpStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_conn(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_conn(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Box<dyn Conn>> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true).ok();
                Ok(Box::new(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Box::new(stream))
            }
        }
    }

    /// A closure that connects to this listener's address, used to
    /// unblock a blocking `accept` once the stop flag is up. Captures
    /// the *address*, never the listener itself: the accept thread must
    /// stay the socket's only owner, so the socket actually closes (and
    /// late clients get refused instead of parking in the backlog
    /// forever) the moment that thread exits.
    fn poke_fn(&self) -> Arc<dyn Fn() + Send + Sync> {
        match self {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(addr) => Arc::new(move || {
                    let _ = TcpStream::connect(addr);
                }),
                Err(_) => Arc::new(|| {}),
            },
            #[cfg(unix)]
            Listener::Unix(l) => {
                let path = l
                    .local_addr()
                    .ok()
                    .and_then(|addr| addr.as_pathname().map(PathBuf::from));
                Arc::new(move || {
                    if let Some(path) = &path {
                        let _ = UnixStream::connect(path);
                    }
                })
            }
        }
    }
}

/// A running daemon, returned by [`serve`].
pub struct ServerHandle {
    tcp_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP address (for `Bind::Tcp`; `None` on unix sockets).
    /// Binding `:0` and reading the address back is how tests get an
    /// ephemeral port.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Stops the daemon: accept loop, workers, everything. Jobs still
    /// streaming are abandoned (their clients see the connection close).
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    /// Blocks until the daemon stops — i.e. until some client sends the
    /// `shutdown` op (or the process is signalled). This is `sg serve`'s
    /// foreground mode.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.stop_all();
    }

    fn stop_all(&mut self) {
        self.shared.begin_stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_all();
    }
}

/// Binds and starts a daemon; returns once it is accepting connections.
///
/// # Errors
///
/// Returns the bind/listen error verbatim (address in use, bad unix
/// path, …).
pub fn serve(bind: &Bind, options: ServeOptions) -> io::Result<ServerHandle> {
    let listener = match bind {
        Bind::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr.as_str())?),
        #[cfg(unix)]
        Bind::Unix(path) => {
            // A stale socket file from a previous daemon blocks bind.
            let _ = std::fs::remove_file(path);
            Listener::Unix(UnixListener::bind(path)?)
        }
    };
    let tcp_addr = match &listener {
        Listener::Tcp(l) => Some(l.local_addr()?),
        #[cfg(unix)]
        Listener::Unix(_) => None,
    };
    let workers = match options.workers {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        w => w,
    };
    let poke = listener.poke_fn();
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        stop: AtomicBool::new(false),
        next_job: AtomicU64::new(1),
        next_conn: AtomicU64::new(1),
        conns: Mutex::new(HashMap::new()),
        poke,
        options,
    });

    let worker_handles = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("sg-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("sg-serve-accept".to_string())
        .spawn(move || {
            while !accept_shared.stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok(conn) => {
                        if accept_shared.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let shared = Arc::clone(&accept_shared);
                        let _ = std::thread::Builder::new()
                            .name("sg-serve-conn".to_string())
                            .spawn(move || handle_connection(conn, &shared));
                    }
                    Err(_) if accept_shared.stop.load(Ordering::SeqCst) => break,
                    Err(_) => continue,
                }
            }
        })
        .expect("spawn accept loop");

    Ok(ServerHandle {
        tcp_addr,
        shared,
        accept: Some(accept),
        workers: worker_handles,
    })
}

/// One worker: a long-lived arena and an endless claim-execute loop.
fn worker_loop(shared: &Shared) {
    let mut arena = RunArena::new();
    while let Some(job) = shared.next() {
        // Claim the job's next cell; requeue the job first so siblings
        // can claim its other cells (and other jobs stay interleaved).
        let claimed = {
            let mut core = job.core.lock().expect("job core");
            if core.cancelled || core.next_cell >= job.cell_count() {
                None
            } else {
                let index = core.next_cell;
                core.next_cell += 1;
                core.outstanding += 1;
                Some((index, core.next_cell < job.cell_count()))
            }
        };
        let Some((index, more)) = claimed else {
            continue;
        };
        if more {
            shared.enqueue(Arc::clone(&job));
        }

        let quantum = shared.options.quantum.max(1);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut cursor = job.plan.cell_cursor(index);
            while !cursor.is_done() {
                if job.cancel.load(Ordering::Relaxed) {
                    return None;
                }
                cursor.run_batch_in(&mut arena, quantum);
            }
            Some(cursor.finish())
        }));

        match outcome {
            Ok(Some(cell)) => {
                let mut core = job.core.lock().expect("job core");
                core.outstanding -= 1;
                core.done += 1;
                if core.cancelled {
                    // Completed after cancel: drop the cell, and close
                    // the job if we were the last worker on it.
                    if core.outstanding == 0 && !core.terminal_sent {
                        core.terminal_sent = true;
                        let _ = job.events.send(ConnEvent::Job(job.id, JobEvent::Cancelled));
                    }
                } else {
                    let last = core.done == job.cell_count();
                    if last {
                        core.terminal_sent = true;
                    }
                    let _ = job.events.send(ConnEvent::Job(
                        job.id,
                        JobEvent::Cell {
                            index,
                            cell: Box::new(cell),
                            last,
                        },
                    ));
                }
            }
            Ok(None) => {
                // Aborted by cancellation mid-cell.
                let mut core = job.core.lock().expect("job core");
                core.outstanding -= 1;
                if core.outstanding == 0 && !core.terminal_sent {
                    core.terminal_sent = true;
                    let _ = job.events.send(ConnEvent::Job(job.id, JobEvent::Cancelled));
                }
            }
            Err(panic) => {
                // The arena may hold protocol instances frozen mid-run;
                // a panicked worker starts over with a cold one.
                arena = RunArena::new();
                let detail = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "worker panic".to_string());
                job.cancel.store(true, Ordering::Relaxed);
                let mut core = job.core.lock().expect("job core");
                core.cancelled = true;
                core.outstanding -= 1;
                if !core.terminal_sent {
                    core.terminal_sent = true;
                    let _ = job
                        .events
                        .send(ConnEvent::Job(job.id, JobEvent::Failed { detail }));
                }
            }
        }
    }
}

/// Per-job streaming state on the connection side: reorder buffer,
/// running fingerprint, and frame bookkeeping.
struct StreamState {
    job: Arc<Job>,
    started: Instant,
    /// Completed cells not yet emittable (a lower index is missing).
    pending: BTreeMap<usize, Box<CellReport>>,
    /// Next grid index to emit.
    next_emit: usize,
    /// Cell frames written so far.
    emitted: usize,
    fingerprint: Fingerprint,
}

/// Validates a submitted plan before it reaches the worker pool, so
/// rejections are structured errors instead of worker panics.
fn validate_plan(plan: &SweepPlan) -> Result<(), String> {
    if plan.configs.is_empty() || plan.adversaries.is_empty() || plan.seeds_per_cell == 0 {
        return Err(
            "empty sweep grid (configs, adversaries, and seeds_per_cell must all be non-empty)"
                .to_string(),
        );
    }
    for config in &plan.configs {
        config
            .spec
            .validate(config.n, config.t)
            .map_err(|e| format!("{}: {e}", config.spec.name()))?;
    }
    Ok(())
}

/// Serves one client connection to completion.
fn handle_connection(conn: Box<dyn Conn>, shared: &Shared) {
    let Ok(read_half) = conn.try_clone_conn() else {
        return;
    };
    let closer = conn.try_clone_conn().ok();
    let (tx, rx) = mpsc::channel::<ConnEvent>();
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    shared
        .conns
        .lock()
        .expect("conn registry")
        .insert(conn_id, tx.clone());
    let reader_tx = tx.clone();
    let reader = std::thread::Builder::new()
        .name("sg-serve-read".to_string())
        .spawn(move || read_requests(read_half, &reader_tx))
        .expect("spawn connection reader");

    let mut writer = BufWriter::new(conn);
    connection_loop(&rx, &tx, &mut writer, shared);
    shared.conns.lock().expect("conn registry").remove(&conn_id);
    // Flush whatever the loop last wrote, then shut the socket down for
    // real: that sends the client EOF (a dropped clone alone would not,
    // the reader thread still holds one) and unblocks our reader.
    drop(writer);
    if let Some(closer) = &closer {
        closer.shutdown_conn();
    }
    let _ = reader.join();
}

/// Reader half: turns NDJSON lines into [`ConnEvent::Request`]s.
fn read_requests(conn: Box<dyn Conn>, tx: &Sender<ConnEvent>) {
    let mut lines = BufReader::new(conn);
    let mut line = String::new();
    loop {
        line.clear();
        match lines.read_line(&mut line) {
            Ok(0) | Err(_) => {
                let _ = tx.send(ConnEvent::Gone);
                return;
            }
            Ok(_) => {
                let text = line.trim();
                if text.is_empty() {
                    continue;
                }
                let parsed = match Json::parse(text) {
                    Err(e) => Err((ErrorCode::BadJson, e.to_string())),
                    Ok(doc) => Request::from_json(&doc).map_err(|e| {
                        if e.detail.contains("unsupported protocol") {
                            (ErrorCode::UnsupportedProto, e.to_string())
                        } else {
                            (ErrorCode::BadRequest, e.to_string())
                        }
                    }),
                };
                if tx.send(ConnEvent::Request(parsed)).is_err() {
                    return;
                }
            }
        }
    }
}

fn write_frame(writer: &mut impl Write, frame: &Frame) -> io::Result<()> {
    writeln!(writer, "{}", frame.to_json())?;
    writer.flush()
}

/// The connection's event loop: requests in, frames out. However the
/// loop ends (client EOF, write error, shutdown), every job the
/// connection still owns is cancelled so workers stop burning time for
/// a client that left.
fn connection_loop(
    rx: &Receiver<ConnEvent>,
    tx: &Sender<ConnEvent>,
    writer: &mut impl Write,
    shared: &Shared,
) {
    let mut streams: HashMap<u64, StreamState> = HashMap::new();
    let _ = connection_events(rx, tx, writer, shared, &mut streams);
    for state in streams.values() {
        state.job.cancel();
    }
}

/// The fallible inner loop of [`connection_loop`]; a write error
/// propagates out (the client is gone) and the caller cleans up.
fn connection_events(
    rx: &Receiver<ConnEvent>,
    tx: &Sender<ConnEvent>,
    writer: &mut impl Write,
    shared: &Shared,
    streams: &mut HashMap<u64, StreamState>,
) -> io::Result<()> {
    // A shutdown raced this connection's registration: wind down now
    // rather than waiting for an event that may never come.
    if shared.stop.load(Ordering::SeqCst) {
        return Ok(());
    }
    while let Ok(event) = rx.recv() {
        match event {
            ConnEvent::Request(Ok(Request::Ping)) => write_frame(writer, &Frame::Pong)?,
            ConnEvent::Request(Ok(Request::Shutdown)) => {
                write_frame(writer, &Frame::Bye)?;
                shared.begin_stop();
                break;
            }
            ConnEvent::Request(Ok(Request::Submit { plan })) => {
                if let Err(detail) = validate_plan(&plan) {
                    write_frame(
                        writer,
                        &Frame::Error {
                            code: ErrorCode::Rejected,
                            detail,
                            job: None,
                        },
                    )?;
                    continue;
                }
                let id = shared.next_job.fetch_add(1, Ordering::Relaxed);
                let cells = plan.cell_count();
                let total_runs = plan.total_runs();
                let job = Arc::new(Job {
                    id,
                    plan,
                    cancel: AtomicBool::new(false),
                    core: Mutex::new(JobCore {
                        next_cell: 0,
                        outstanding: 0,
                        done: 0,
                        cancelled: false,
                        terminal_sent: false,
                    }),
                    events: tx.clone(),
                });
                write_frame(
                    writer,
                    &Frame::Accepted {
                        job: id,
                        cells,
                        total_runs,
                    },
                )?;
                streams.insert(
                    id,
                    StreamState {
                        job: Arc::clone(&job),
                        started: Instant::now(),
                        pending: BTreeMap::new(),
                        next_emit: 0,
                        emitted: 0,
                        fingerprint: Fingerprint::new(),
                    },
                );
                shared.enqueue(job);
            }
            ConnEvent::Request(Ok(Request::Cancel { job })) => match streams.get(&job) {
                Some(state) => state.job.cancel(),
                None => write_frame(
                    writer,
                    &Frame::Error {
                        code: ErrorCode::UnknownJob,
                        detail: format!("no active job {job} on this connection"),
                        job: Some(job),
                    },
                )?,
            },
            ConnEvent::Request(Err((code, detail))) => write_frame(
                writer,
                &Frame::Error {
                    code,
                    detail,
                    job: None,
                },
            )?,
            ConnEvent::Gone => break,
            ConnEvent::Job(id, event) => {
                let Some(state) = streams.get_mut(&id) else {
                    continue; // stray event after the job's terminal frame
                };
                match event {
                    JobEvent::Cell { index, cell, last } => {
                        state.pending.insert(index, cell);
                        while let Some(cell) = state.pending.remove(&state.next_emit) {
                            state.fingerprint.mix_cell(&cell);
                            let index = state.next_emit;
                            state.next_emit += 1;
                            state.emitted += 1;
                            write_frame(
                                writer,
                                &Frame::Cell {
                                    job: id,
                                    index,
                                    cell,
                                },
                            )?;
                        }
                        if last {
                            debug_assert!(state.pending.is_empty());
                            let summary = Frame::Summary {
                                job: id,
                                cells: state.emitted,
                                total_runs: state.job.plan.total_runs(),
                                report_fingerprint: state.fingerprint.hex(),
                                wall_ms: state.started.elapsed().as_secs_f64() * 1e3,
                            };
                            write_frame(writer, &summary)?;
                            streams.remove(&id);
                        }
                    }
                    JobEvent::Cancelled => {
                        let cells_streamed = state.emitted;
                        write_frame(
                            writer,
                            &Frame::Cancelled {
                                job: id,
                                cells_streamed,
                            },
                        )?;
                        streams.remove(&id);
                    }
                    JobEvent::Failed { detail } => {
                        write_frame(
                            writer,
                            &Frame::Error {
                                code: ErrorCode::JobFailed,
                                detail,
                                job: Some(id),
                            },
                        )?;
                        streams.remove(&id);
                    }
                }
            }
        }
    }
    Ok(())
}
