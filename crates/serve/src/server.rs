//! The daemon: listener, connection handlers, and the persistent worker
//! pool.
//!
//! # Architecture
//!
//! ```text
//! accept loop ──► connection thread (one per client)
//!                   │  reader thread: NDJSON lines → requests
//!                   │  writer: frames, cells reordered into grid order
//!                   ▼
//!                scheduler: round-robin queue of active jobs
//!                   ▲
//! worker pool ──────┘  N threads, each owning ONE RunArena for life
//! ```
//!
//! Work is scheduled at **cell granularity**: a worker pops the front
//! job, claims its next unclaimed cell, requeues the job at the back (so
//! concurrent jobs interleave fairly), and executes the cell through the
//! sweep engine's [`sg_analysis::CellCursor`] in its own long-lived
//! [`RunArena`] —
//! the same arena across cells, jobs, *and requests*, which is what
//! keeps protocol-instance pools warm daemon-wide. Cancellation is
//! checked between cursor batches ([`ServeOptions::quantum`] runs), so a
//! cancel lands within a few milliseconds even mid-cell.
//!
//! # Determinism
//!
//! Cell execution order is scheduling-dependent; cell *content* is not:
//! the sweep engine's coordinate-pure seeding means every run's seed
//! depends only on its grid position, and the pooled executor is pinned
//! bit-identical to the fresh one. Connection handlers re-order
//! completed cells into grid order before streaming, and fold the
//! summary fingerprint in that order — so the summary frame's
//! `report_fingerprint` is bit-identical to `SweepPlan::run` on the same
//! grid, whatever the daemon had running concurrently.
//!
//! # Overload behavior
//!
//! Admission control is enforced on the connection thread, before a job
//! ever reaches the worker pool: a submit that would exceed
//! [`ServeOptions::max_jobs`], [`ServeOptions::max_queued_runs`], or
//! the per-connection cap answers `rejected` (code `saturated`) within
//! one scheduling quantum of arriving, with a deterministic
//! `retry_after_ms` hint scaled to the backlog. Deadlines ride the same
//! per-quantum check as cancellation, so an expired job stops within
//! one quantum. A reader that stalls while its daemon streams — the
//! slow-loris client — is shed the moment its bounded write queue
//! fills: its jobs are cancelled and its socket closed, while every
//! other connection and the worker pool continue untouched. Draining
//! (the `drain` op or `sg serve`'s SIGTERM handler) finishes accepted
//! jobs, rejects new submits with code `draining`, and says `bye`.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::json::Value as Json;
use serde::{FromJson, ToJson};
use sg_analysis::{engine_epoch, CellReport, Fingerprint, SweepPlan};
use sg_journal::{CellKey, Journal};
use sg_sim::RunArena;

use crate::wire::{ErrorCode, Frame, RejectCode, Request};

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Bind {
    /// A TCP socket address, e.g. `127.0.0.1:7411` (`:0` picks a free
    /// port — read it back from [`ServerHandle::tcp_addr`]).
    Tcp(String),
    /// A unix-domain socket path (removed and re-created on bind).
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Bind {
    /// Parses a CLI/bench address: `unix:/path` or `host:port`.
    pub fn parse(addr: &str) -> Bind {
        #[cfg(unix)]
        if let Some(path) = addr.strip_prefix("unix:") {
            return Bind::Unix(PathBuf::from(path));
        }
        Bind::Tcp(addr.to_string())
    }
}

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads (0 = one per hardware thread).
    pub workers: usize,
    /// Runs executed between cancellation/deadline checks inside one
    /// cell.
    pub quantum: u64,
    /// Jobs admitted but not yet terminal, daemon-wide (0 = unlimited).
    /// The next submit past the cap answers `rejected`/`saturated`.
    pub max_jobs: usize,
    /// Cap on the summed `total_runs` of active jobs (0 = unlimited) —
    /// the queue's memory/backlog bound, since a job's queue footprint
    /// is proportional to its run count.
    pub max_queued_runs: u64,
    /// Active jobs allowed per connection (0 = unlimited).
    pub max_jobs_per_conn: usize,
    /// Per-connection write-queue capacity, in frames. A client whose
    /// reader stalls until the queue fills is shed — its jobs cancelled
    /// and its socket closed — so one slow reader can never wedge the
    /// daemon or other connections.
    pub write_queue: usize,
    /// Kernel send-buffer cap per accepted connection, in bytes (0 = OS
    /// default). Left alone, Linux auto-grows `SO_SNDBUF` into the
    /// megabytes on loopback, so a stalled reader hides behind kernel
    /// buffering and the `write_queue` shed never fires; capping it
    /// makes "bounded per-connection write buffer" mean what it says:
    /// `write_queue` frames plus this many kernel bytes, total.
    pub send_buffer: usize,
    /// Result-journal directory (`sg serve --journal`). When set, every
    /// submit is first resolved against the journal: cells already
    /// stored under the current engine epoch are streamed back instantly
    /// (in grid order, through the same reorder buffer as computed
    /// cells) and only the delta is scheduled; computed cells are
    /// appended write-through. `None` (the default) disables caching.
    pub journal: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            quantum: 64,
            max_jobs: 64,
            max_queued_runs: 50_000_000,
            max_jobs_per_conn: 16,
            write_queue: 256,
            send_buffer: 256 * 1024,
            journal: None,
        }
    }
}

/// The server's deterministic back-off hint for `saturated` rejections:
/// a pure function of the admitted backlog, so a saturated daemon tells
/// every client the same story and tests can pin it.
fn retry_hint_ms(queued_runs: u64) -> u64 {
    (queued_runs / 200).clamp(10, 2_000)
}

/// What a worker reports back to the owning connection, always sent
/// under the job-core lock so terminal events are unique and ordered.
enum JobEvent {
    /// A completed cell (grid index attached); `last` marks the job's
    /// final cell.
    Cell {
        index: usize,
        cell: Box<CellReport>,
        last: bool,
    },
    /// Terminal: the job was cancelled and no further frames will come.
    Cancelled,
    /// Terminal: the job's deadline expired mid-grid.
    DeadlineExceeded,
    /// Terminal: a worker panicked executing this job.
    Failed { detail: String },
}

/// Everything a connection thread can be woken by.
enum ConnEvent {
    /// A parsed request line (or the decode error to report).
    Request(Result<Request, (ErrorCode, String)>),
    /// The client closed or broke the connection.
    Gone,
    /// The daemon finished draining: say `bye` and wind down.
    Stopping,
    /// Progress on a job submitted by this connection.
    Job(u64, JobEvent),
}

/// Mutable per-job scheduling state; one lock per job.
struct JobCore {
    /// Next unclaimed flat cell index.
    next_cell: usize,
    /// Cells currently executing on workers.
    outstanding: usize,
    /// Cells fully executed and reported.
    done: usize,
    /// Set by cancel, deadline expiry, or worker panic; stops claiming
    /// and aborts runs.
    cancelled: bool,
    /// Set by whichever worker first notices the deadline passed, so
    /// the terminal frame reports `deadline-exceeded`, not `cancelled`.
    deadline_hit: bool,
    /// Whether a terminal event (`last` cell, `Cancelled`,
    /// `DeadlineExceeded`, `Failed`) has been emitted — exactly one
    /// ever is.
    terminal_sent: bool,
}

/// One submitted grid, shared between the scheduler, workers, and the
/// owning connection.
struct Job {
    id: u64,
    plan: SweepPlan,
    /// Wall-clock completion budget, from the submit's `deadline_ms`.
    deadline: Option<Instant>,
    /// Lock-free fast path for the in-cell cancellation check.
    cancel: AtomicBool,
    core: Mutex<JobCore>,
    events: Sender<ConnEvent>,
    /// Per-cell journal addresses for write-through appends; empty when
    /// the daemon runs without a journal (`None` marks closure-family
    /// cells, which have no wire form to address).
    journal_keys: Vec<Option<CellKey>>,
    /// Per-cell journal-hit mask; empty without a journal. Hit cells
    /// were streamed by the connection thread at accept time and are
    /// never claimed by workers.
    cached: Vec<bool>,
    /// Back-reference for admission bookkeeping at terminal time (weak:
    /// `Shared` owns the queue that owns jobs).
    shared: Weak<Shared>,
}

impl Job {
    fn cell_count(&self) -> usize {
        self.plan.cell_count()
    }

    /// The first claimable (non-cached) cell index at or after `from`;
    /// `cell_count()` when none remain.
    fn next_unclaimed(&self, mut from: usize) -> usize {
        while self.cached.get(from).copied().unwrap_or(false) {
            from += 1;
        }
        from
    }

    /// Whether the job's deadline (if any) has passed. Checked at the
    /// same points as the cancellation flag, so expiry lands within one
    /// scheduling quantum too.
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Emits the job's unique terminal event and releases its admission
    /// budget. Must be called under the core lock, at most once.
    ///
    /// Event first, release second: releasing the last drained job
    /// broadcasts `Stopping` (→ `bye`) through the same per-connection
    /// channel, and the terminal frame must precede it.
    fn finish(&self, core: &mut JobCore, event: JobEvent) {
        debug_assert!(!core.terminal_sent);
        core.terminal_sent = true;
        let _ = self.events.send(ConnEvent::Job(self.id, event));
        if let Some(shared) = self.shared.upgrade() {
            shared.release(self.plan.total_runs());
        }
    }

    /// The terminal event an aborted (non-panicked) job reports:
    /// deadline expiry wins over plain cancellation.
    fn aborted_event(core: &JobCore) -> JobEvent {
        if core.deadline_hit {
            JobEvent::DeadlineExceeded
        } else {
            JobEvent::Cancelled
        }
    }

    /// Marks the job cancelled; emits the terminal event immediately if
    /// no worker is mid-cell (otherwise the last such worker does).
    fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
        let mut core = self.core.lock().expect("job core");
        core.cancelled = true;
        if core.outstanding == 0 && !core.terminal_sent {
            let event = Job::aborted_event(&core);
            self.finish(&mut core, event);
        }
    }
}

/// Scheduler + lifecycle state shared by every thread of one daemon.
struct Shared {
    /// Round-robin queue of jobs with unclaimed cells.
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Signals workers that the queue changed (or the daemon stops).
    available: Condvar,
    /// Daemon-wide stop flag.
    stop: AtomicBool,
    /// Daemon-wide drain flag: accepted jobs finish, new submits are
    /// rejected with code `draining`, and the last terminal stops the
    /// daemon.
    draining: AtomicBool,
    /// Jobs admitted and not yet terminal.
    active_jobs: AtomicU64,
    /// Summed `total_runs` of active jobs — the admission-control
    /// measure of backlog, released in one piece at terminal time.
    queued_runs: AtomicU64,
    /// Monotonic job-id source.
    next_job: AtomicU64,
    /// Monotonic connection-id source (keys the registry below).
    next_conn: AtomicU64,
    /// Event senders of live connections, so [`Shared::begin_stop`] can
    /// wake every connection loop — a client mid-stream would otherwise
    /// block in `recv()` forever when some other client shuts the
    /// daemon down.
    conns: Mutex<HashMap<u64, Sender<ConnEvent>>>,
    /// Unblocks the accept loop once `stop` is up (self-connect).
    poke: Arc<dyn Fn() + Send + Sync>,
    /// The daemon's result journal (`ServeOptions::journal`): submit
    /// lookups and worker write-through both serialize on this lock.
    journal: Option<Mutex<Journal>>,
    /// Cumulative cells answered from the journal, summed over every
    /// submit since startup (stays 0 without `--journal`). Surfaced in
    /// the `pong` frame and logged when a drain begins.
    journal_hits: AtomicU64,
    /// Cumulative cells that missed the journal and were computed.
    journal_misses: AtomicU64,
    options: ServeOptions,
}

impl Shared {
    /// Enqueues a job for the worker pool.
    fn enqueue(&self, job: Arc<Job>) {
        self.queue.lock().expect("job queue").push_back(job);
        self.available.notify_all();
    }

    /// Blocks until a job is available (or the daemon stops).
    fn next(&self) -> Option<Arc<Job>> {
        let mut queue = self.queue.lock().expect("job queue");
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            queue = self.available.wait(queue).expect("job queue");
        }
    }

    /// Stops the daemon: raises the flag, wakes idle workers, unblocks
    /// the accept loop, and tells every live connection to wind down
    /// (cancelling its jobs and closing its socket, so streaming
    /// clients see EOF rather than a hang).
    fn begin_stop(&self) {
        self.stop_conns(false);
    }

    /// [`Shared::begin_stop`], but connections say `bye` before closing
    /// — the drain-complete goodbye the protocol promises.
    fn begin_drain_stop(&self) {
        self.stop_conns(true);
    }

    fn stop_conns(&self, say_bye: bool) {
        self.stop.store(true, Ordering::SeqCst);
        self.available.notify_all();
        (self.poke)();
        for tx in self.conns.lock().expect("conn registry").values() {
            let _ = tx.send(if say_bye {
                ConnEvent::Stopping
            } else {
                ConnEvent::Gone
            });
        }
    }

    /// Starts draining: no new submits, and once the active-job count
    /// reaches zero the daemon stops with a `bye` on every connection.
    /// Returns the number of jobs still active. Logs the lifetime
    /// journal telemetry on the way out — the drain is the last moment
    /// an operator can read it off a daemon that is about to exit.
    fn begin_drain(&self) -> u64 {
        self.draining.store(true, Ordering::SeqCst);
        if self.journal.is_some() {
            eprintln!(
                "sg-serve: draining; journal served {} cell(s) from cache, computed {}",
                self.journal_hits.load(Ordering::SeqCst),
                self.journal_misses.load(Ordering::SeqCst),
            );
        }
        let active = self.active_jobs.load(Ordering::SeqCst);
        if active == 0 && !self.stop.load(Ordering::SeqCst) {
            self.begin_drain_stop();
        }
        active
    }

    /// Releases one job's admission budget at terminal time, completing
    /// a pending drain if this was the last active job.
    fn release(&self, total_runs: u64) {
        self.queued_runs.fetch_sub(total_runs, Ordering::SeqCst);
        let was = self.active_jobs.fetch_sub(1, Ordering::SeqCst);
        if was == 1 && self.draining.load(Ordering::SeqCst) && !self.stop.load(Ordering::SeqCst) {
            self.begin_drain_stop();
        }
    }

    /// Reserves admission budget for a submit, or explains the refusal.
    /// Reservation is optimistic fetch-add with rollback, so concurrent
    /// submits on different connections cannot both sneak past a cap.
    fn admit(&self, total_runs: u64) -> Result<(), Frame> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(Frame::Rejected {
                code: RejectCode::Draining,
                detail: "daemon is draining and takes no new jobs".to_string(),
                retry_after_ms: None,
            });
        }
        // Roll back through `release` so a drain that started between
        // our reservation and its failure still sees the final zero.
        let max_jobs = self.options.max_jobs as u64;
        let prev = self.active_jobs.fetch_add(1, Ordering::SeqCst);
        if max_jobs > 0 && prev >= max_jobs {
            let hint = retry_hint_ms(self.queued_runs.load(Ordering::SeqCst));
            self.release(0);
            return Err(Frame::Rejected {
                code: RejectCode::Saturated,
                detail: format!("job queue full ({max_jobs} active jobs)"),
                retry_after_ms: Some(hint),
            });
        }
        let max_runs = self.options.max_queued_runs;
        let prev_runs = self.queued_runs.fetch_add(total_runs, Ordering::SeqCst);
        if max_runs > 0 && prev_runs.saturating_add(total_runs) > max_runs {
            self.release(total_runs);
            return Err(Frame::Rejected {
                code: RejectCode::Saturated,
                detail: format!(
                    "run backlog full ({prev_runs} of {max_runs} queued, job needs {total_runs})"
                ),
                retry_after_ms: Some(retry_hint_ms(prev_runs)),
            });
        }
        Ok(())
    }
}

/// A byte stream the daemon can serve — TCP or unix-domain.
trait Conn: io::Read + io::Write + Send {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>>;

    /// Shuts the underlying connection down for real (both directions,
    /// all clones) — closing one dup'd handle alone would not send the
    /// peer an EOF while the reader thread still holds another.
    fn shutdown_conn(&self);
}

impl Conn for TcpStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_conn(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_conn(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// Caps the kernel send buffer of an accepted socket. The kernel
/// otherwise auto-grows `SO_SNDBUF` well past the configured write
/// queue, letting megabytes of frames pile up for a reader that has
/// stopped reading — the user-space queue never fills and the shed
/// path never fires. Failure is ignored: the cap is a bound, not a
/// correctness requirement.
#[cfg(target_os = "linux")]
fn cap_send_buffer(fd: i32, bytes: usize) {
    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    extern "C" {
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
    }
    let value = bytes.min(i32::MAX as usize) as i32;
    let len = std::mem::size_of::<i32>() as u32;
    let _ = unsafe { setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &value, len) };
}

#[cfg(all(unix, not(target_os = "linux")))]
fn cap_send_buffer(_fd: i32, _bytes: usize) {}

impl Listener {
    fn accept(&self, send_buffer: usize) -> io::Result<Box<dyn Conn>> {
        #[cfg(not(unix))]
        let _ = send_buffer;
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true).ok();
                #[cfg(unix)]
                if send_buffer > 0 {
                    cap_send_buffer(std::os::fd::AsRawFd::as_raw_fd(&stream), send_buffer);
                }
                Ok(Box::new(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                if send_buffer > 0 {
                    cap_send_buffer(std::os::fd::AsRawFd::as_raw_fd(&stream), send_buffer);
                }
                Ok(Box::new(stream))
            }
        }
    }

    /// A closure that connects to this listener's address, used to
    /// unblock a blocking `accept` once the stop flag is up. Captures
    /// the *address*, never the listener itself: the accept thread must
    /// stay the socket's only owner, so the socket actually closes (and
    /// late clients get refused instead of parking in the backlog
    /// forever) the moment that thread exits.
    fn poke_fn(&self) -> Arc<dyn Fn() + Send + Sync> {
        match self {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(addr) => Arc::new(move || {
                    let _ = TcpStream::connect(addr);
                }),
                Err(_) => Arc::new(|| {}),
            },
            #[cfg(unix)]
            Listener::Unix(l) => {
                let path = l
                    .local_addr()
                    .ok()
                    .and_then(|addr| addr.as_pathname().map(PathBuf::from));
                Arc::new(move || {
                    if let Some(path) = &path {
                        let _ = UnixStream::connect(path);
                    }
                })
            }
        }
    }
}

/// A running daemon, returned by [`serve`].
pub struct ServerHandle {
    tcp_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP address (for `Bind::Tcp`; `None` on unix sockets).
    /// Binding `:0` and reading the address back is how tests get an
    /// ephemeral port.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Stops the daemon: accept loop, workers, everything. Jobs still
    /// streaming are abandoned (their clients see the connection close).
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    /// A handle that can start a graceful drain from another thread —
    /// `sg serve` wires its SIGTERM watcher to this.
    pub fn drainer(&self) -> Drainer {
        Drainer {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until the daemon stops — i.e. until some client sends the
    /// `shutdown` op (or the process is signalled). This is `sg serve`'s
    /// foreground mode.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.stop_all();
    }

    fn stop_all(&mut self) {
        self.shared.begin_stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_all();
    }
}

/// Starts a graceful drain on a running daemon (see [`Request::Drain`]
/// for the semantics); cloneable into signal-watcher threads.
#[derive(Clone)]
pub struct Drainer {
    shared: Arc<Shared>,
}

impl Drainer {
    /// Begins the drain; returns the number of jobs still active (the
    /// daemon stops once they finish — immediately when zero).
    pub fn drain(&self) -> u64 {
        self.shared.begin_drain()
    }
}

/// Binds and starts a daemon; returns once it is accepting connections.
///
/// # Errors
///
/// Returns the bind/listen error verbatim (address in use, bad unix
/// path, …).
pub fn serve(bind: &Bind, options: ServeOptions) -> io::Result<ServerHandle> {
    let listener = match bind {
        Bind::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr.as_str())?),
        #[cfg(unix)]
        Bind::Unix(path) => {
            // A stale socket file from a previous daemon blocks bind.
            let _ = std::fs::remove_file(path);
            Listener::Unix(UnixListener::bind(path)?)
        }
    };
    let tcp_addr = match &listener {
        Listener::Tcp(l) => Some(l.local_addr()?),
        #[cfg(unix)]
        Listener::Unix(_) => None,
    };
    let workers = match options.workers {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        w => w,
    };
    let poke = listener.poke_fn();
    let journal = match &options.journal {
        None => None,
        Some(dir) => Some(Mutex::new(
            Journal::open(dir).map_err(|e| io::Error::other(e.to_string()))?,
        )),
    };
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        stop: AtomicBool::new(false),
        draining: AtomicBool::new(false),
        active_jobs: AtomicU64::new(0),
        queued_runs: AtomicU64::new(0),
        next_job: AtomicU64::new(1),
        next_conn: AtomicU64::new(1),
        conns: Mutex::new(HashMap::new()),
        poke,
        journal,
        journal_hits: AtomicU64::new(0),
        journal_misses: AtomicU64::new(0),
        options,
    });

    let worker_handles = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("sg-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("sg-serve-accept".to_string())
        .spawn(move || {
            while !accept_shared.stop.load(Ordering::SeqCst) {
                match listener.accept(accept_shared.options.send_buffer) {
                    Ok(conn) => {
                        if accept_shared.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let shared = Arc::clone(&accept_shared);
                        let _ = std::thread::Builder::new()
                            .name("sg-serve-conn".to_string())
                            .spawn(move || handle_connection(conn, &shared));
                    }
                    Err(_) if accept_shared.stop.load(Ordering::SeqCst) => break,
                    Err(_) => continue,
                }
            }
        })
        .expect("spawn accept loop");

    Ok(ServerHandle {
        tcp_addr,
        shared,
        accept: Some(accept),
        workers: worker_handles,
    })
}

/// How one cell execution ended on a worker.
enum CellRun {
    /// Ran to completion.
    Done(Box<CellReport>),
    /// Stopped at a quantum boundary by the cancellation flag.
    Aborted,
    /// Stopped at a quantum boundary by the job's deadline.
    Expired,
}

/// One worker: a long-lived arena and an endless claim-execute loop.
fn worker_loop(shared: &Shared) {
    let mut arena = RunArena::new();
    while let Some(job) = shared.next() {
        // Claim the job's next cell; requeue the job first so siblings
        // can claim its other cells (and other jobs stay interleaved).
        let claimed = {
            let mut core = job.core.lock().expect("job core");
            // Journal hits were streamed at accept time; claims hop
            // over them so workers only ever see the delta.
            core.next_cell = job.next_unclaimed(core.next_cell);
            if core.cancelled || core.next_cell >= job.cell_count() {
                None
            } else if job.expired() {
                // Deadline noticed before any run of this claim: abort
                // the whole job here, the cheapest of the quantum checks.
                job.cancel.store(true, Ordering::Relaxed);
                core.cancelled = true;
                core.deadline_hit = true;
                if core.outstanding == 0 && !core.terminal_sent {
                    job.finish(&mut core, JobEvent::DeadlineExceeded);
                }
                None
            } else {
                let index = core.next_cell;
                core.next_cell = job.next_unclaimed(index + 1);
                core.outstanding += 1;
                Some((index, core.next_cell < job.cell_count()))
            }
        };
        let Some((index, more)) = claimed else {
            continue;
        };
        if more {
            shared.enqueue(Arc::clone(&job));
        }

        let quantum = shared.options.quantum.max(1);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut cursor = job.plan.cell_cursor(index);
            while !cursor.is_done() {
                if job.cancel.load(Ordering::Relaxed) {
                    return CellRun::Aborted;
                }
                if job.expired() {
                    return CellRun::Expired;
                }
                cursor.run_batch_in(&mut arena, quantum);
            }
            CellRun::Done(Box::new(cursor.finish()))
        }));

        match outcome {
            Ok(CellRun::Done(cell)) => {
                // Write-through before the bookkeeping lock: the cell is
                // final either way, and a failed append only costs the
                // next submit a recompute ("absent, never wrong").
                if let Some(journal) = &shared.journal {
                    if let Some(&Some(key)) = job.journal_keys.get(index) {
                        let mut journal = journal.lock().expect("journal");
                        if let Err(e) = journal.append(key, engine_epoch(), &cell.to_json()) {
                            eprintln!("sg-serve: journal append failed: {e}");
                        }
                    }
                }
                let mut core = job.core.lock().expect("job core");
                core.outstanding -= 1;
                core.done += 1;
                if core.cancelled {
                    // Completed after cancel/expiry: drop the cell, and
                    // close the job if we were the last worker on it.
                    if core.outstanding == 0 && !core.terminal_sent {
                        let event = Job::aborted_event(&core);
                        job.finish(&mut core, event);
                    }
                } else {
                    let last = core.done == job.cell_count();
                    if last {
                        core.terminal_sent = true;
                    }
                    let _ = job
                        .events
                        .send(ConnEvent::Job(job.id, JobEvent::Cell { index, cell, last }));
                    // Release only after the final cell event is in the
                    // connection's queue: a drain finishing here sends
                    // `Stopping` down that same queue, and the summary
                    // must beat the `bye`.
                    if last {
                        if let Some(shared) = job.shared.upgrade() {
                            shared.release(job.plan.total_runs());
                        }
                    }
                }
            }
            Ok(aborted @ (CellRun::Aborted | CellRun::Expired)) => {
                let mut core = job.core.lock().expect("job core");
                if matches!(aborted, CellRun::Expired) {
                    job.cancel.store(true, Ordering::Relaxed);
                    core.cancelled = true;
                    core.deadline_hit = true;
                }
                core.outstanding -= 1;
                if core.outstanding == 0 && !core.terminal_sent {
                    let event = Job::aborted_event(&core);
                    job.finish(&mut core, event);
                }
            }
            Err(panic) => {
                // The unwind already dropped the executing key's pooled
                // instances (they were checked out of the arena); every
                // other buffer is overwritten at the start of each run.
                // Quarantine just that key — rebuilding the whole arena
                // here would throw away every sibling key's warmth.
                let (ci, _) = job.plan.cell_coords(index);
                arena.evict_instances(job.plan.configs[ci].pool_key());
                let detail = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "worker panic".to_string());
                job.cancel.store(true, Ordering::Relaxed);
                let mut core = job.core.lock().expect("job core");
                core.cancelled = true;
                core.outstanding -= 1;
                if !core.terminal_sent {
                    job.finish(&mut core, JobEvent::Failed { detail });
                }
            }
        }
    }
}

/// Per-job streaming state on the connection side: reorder buffer,
/// running fingerprint, and frame bookkeeping.
struct StreamState {
    job: Arc<Job>,
    started: Instant,
    /// Completed cells not yet emittable (a lower index is missing).
    /// Journal hits are parked here at accept time, so cached and
    /// computed cells leave through one reorder buffer, in grid order.
    pending: BTreeMap<usize, Box<CellReport>>,
    /// Next grid index to emit.
    next_emit: usize,
    /// Cell frames written so far.
    emitted: usize,
    /// Cells answered from the journal (for the summary frame).
    cached: usize,
    fingerprint: Fingerprint,
}

impl StreamState {
    /// Emits every consecutively-ready pending cell, in grid order,
    /// folding each into the running fingerprint.
    fn emit_ready(&mut self, id: u64, sink: &FrameSink) -> Result<(), ConnExit> {
        while let Some(cell) = self.pending.remove(&self.next_emit) {
            self.fingerprint.mix_cell(&cell);
            let index = self.next_emit;
            self.next_emit += 1;
            self.emitted += 1;
            sink.send(&Frame::Cell {
                job: id,
                index,
                cell,
            })?;
        }
        Ok(())
    }

    /// The job's terminal summary frame.
    fn summary(&self, id: u64) -> Frame {
        Frame::Summary {
            job: id,
            cells: self.emitted,
            total_runs: self.job.plan.total_runs(),
            report_fingerprint: self.fingerprint.hex(),
            wall_ms: self.started.elapsed().as_secs_f64() * 1e3,
            cached_cells: self.cached,
        }
    }
}

/// Validates a submitted plan before it reaches the worker pool, so
/// rejections are structured errors instead of worker panics.
fn validate_plan(plan: &SweepPlan) -> Result<(), String> {
    if plan.configs.is_empty() || plan.adversaries.is_empty() || plan.seeds_per_cell == 0 {
        return Err(
            "empty sweep grid (configs, adversaries, and seeds_per_cell must all be non-empty)"
                .to_string(),
        );
    }
    for config in &plan.configs {
        config
            .spec
            .validate(config.n, config.t)
            .map_err(|e| format!("{}: {e}", config.spec.name()))?;
    }
    Ok(())
}

/// How a connection's event loop ended, deciding the teardown order.
#[derive(PartialEq, Eq)]
enum ConnExit {
    /// Client left, daemon stopping, or a write failed: let the writer
    /// drain its queue before closing the socket.
    Clean,
    /// Slow-loris shed: the write queue filled because the client
    /// stopped reading. Close the socket first — the writer may be
    /// blocked inside the OS send buffer and must be forced out.
    Shed,
    /// This connection received the `shutdown` op: tear down like
    /// `Clean`, then stop the daemon. Deferring `begin_stop` until
    /// after the writer has drained and the socket has closed
    /// gracefully guarantees the `bye` frame reaches the client —
    /// stopping first lets the process exit (and the OS reset the
    /// socket) while the `bye` is still queued.
    Stop,
}

/// How long a full write queue gets to drain before the connection is
/// shed. A healthy reader empties kernel buffers in milliseconds, so a
/// queue that stays full this long means the client has genuinely
/// stopped reading (and the OS send buffer behind it — several MB on
/// loopback — is full too).
const SHED_GRACE_MS: u64 = 500;
const SHED_POLL_MS: u64 = 10;

/// Hands frames to the connection's writer thread with *bounded*
/// patience: a momentarily-full queue (the writer is mid-write) is
/// retried for [`SHED_GRACE_MS`]; one that never drains means the
/// client has stalled while the daemon streams — grounds for shedding
/// it. Blocking is per-connection either way: this sink is only ever
/// used by the connection's own event thread.
struct FrameSink {
    tx: mpsc::SyncSender<String>,
}

impl FrameSink {
    fn send(&self, frame: &Frame) -> Result<(), ConnExit> {
        let mut line = frame.to_json().to_string();
        line.push('\n');
        let mut waited_ms = 0u64;
        loop {
            match self.tx.try_send(line) {
                Ok(()) => return Ok(()),
                Err(mpsc::TrySendError::Disconnected(_)) => return Err(ConnExit::Clean),
                Err(mpsc::TrySendError::Full(back)) => {
                    if waited_ms >= SHED_GRACE_MS {
                        return Err(ConnExit::Shed);
                    }
                    std::thread::sleep(Duration::from_millis(SHED_POLL_MS));
                    waited_ms += SHED_POLL_MS;
                    line = back;
                }
            }
        }
    }
}

/// Writer half: drains queued frame lines onto the socket, batching
/// whatever is ready before each flush. Exits on the first write error
/// (dropping the receiver, which surfaces to the sink as disconnect).
fn write_lines(rx: &Receiver<String>, conn: Box<dyn Conn>) {
    let mut writer = BufWriter::new(conn);
    while let Ok(line) = rx.recv() {
        if writer.write_all(line.as_bytes()).is_err() {
            return;
        }
        while let Ok(next) = rx.try_recv() {
            if writer.write_all(next.as_bytes()).is_err() {
                return;
            }
        }
        if writer.flush().is_err() {
            return;
        }
    }
}

/// Serves one client connection to completion.
fn handle_connection(conn: Box<dyn Conn>, shared: &Arc<Shared>) {
    let Ok(read_half) = conn.try_clone_conn() else {
        return;
    };
    let closer = conn.try_clone_conn().ok();
    let (tx, rx) = mpsc::channel::<ConnEvent>();
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    shared
        .conns
        .lock()
        .expect("conn registry")
        .insert(conn_id, tx.clone());
    let reader_tx = tx.clone();
    let reader = std::thread::Builder::new()
        .name("sg-serve-read".to_string())
        .spawn(move || read_requests(read_half, &reader_tx))
        .expect("spawn connection reader");
    let (line_tx, line_rx) = mpsc::sync_channel::<String>(shared.options.write_queue.max(1));
    let writer = std::thread::Builder::new()
        .name("sg-serve-write".to_string())
        .spawn(move || write_lines(&line_rx, conn))
        .expect("spawn connection writer");

    let sink = FrameSink { tx: line_tx };
    let exit = connection_loop(&rx, &tx, &sink, shared);
    shared.conns.lock().expect("conn registry").remove(&conn_id);
    // Dropping the sink lets the writer drain and exit; shutting the
    // socket down for real sends the client EOF (a dropped clone alone
    // would not, other threads still hold clones) and unblocks our
    // reader. On a shed the order flips: the writer may be wedged in a
    // full OS send buffer, so the socket dies first to force it out —
    // the stalled client was not reading those frames anyway.
    drop(sink);
    match exit {
        ConnExit::Clean | ConnExit::Stop => {
            let _ = writer.join();
            if let Some(closer) = &closer {
                closer.shutdown_conn();
            }
        }
        ConnExit::Shed => {
            if let Some(closer) = &closer {
                closer.shutdown_conn();
            }
            let _ = writer.join();
        }
    }
    if matches!(exit, ConnExit::Stop) {
        // The `bye` is flushed and the socket closed gracefully — now
        // it is safe to let the daemon (and the process) wind down.
        shared.begin_stop();
    }
    let _ = reader.join();
}

/// Reader half: turns NDJSON lines into [`ConnEvent::Request`]s.
fn read_requests(conn: Box<dyn Conn>, tx: &Sender<ConnEvent>) {
    let mut lines = BufReader::new(conn);
    let mut line = String::new();
    loop {
        line.clear();
        match lines.read_line(&mut line) {
            Ok(0) | Err(_) => {
                let _ = tx.send(ConnEvent::Gone);
                return;
            }
            Ok(_) => {
                let text = line.trim();
                if text.is_empty() {
                    continue;
                }
                let parsed = match Json::parse(text) {
                    Err(e) => Err((ErrorCode::BadJson, e.to_string())),
                    Ok(doc) => Request::from_json(&doc).map_err(|e| {
                        if e.detail.contains("unsupported protocol") {
                            (ErrorCode::UnsupportedProto, e.to_string())
                        } else {
                            (ErrorCode::BadRequest, e.to_string())
                        }
                    }),
                };
                if tx.send(ConnEvent::Request(parsed)).is_err() {
                    return;
                }
            }
        }
    }
}

/// The connection's event loop: requests in, frames out. However the
/// loop ends (client EOF, shed, shutdown), every job the connection
/// still owns is cancelled so workers stop burning time for a client
/// that left.
fn connection_loop(
    rx: &Receiver<ConnEvent>,
    tx: &Sender<ConnEvent>,
    sink: &FrameSink,
    shared: &Arc<Shared>,
) -> ConnExit {
    let mut streams: HashMap<u64, StreamState> = HashMap::new();
    let exit = match connection_events(rx, tx, sink, shared, &mut streams) {
        Ok(()) => ConnExit::Clean,
        Err(exit) => exit,
    };
    for state in streams.values() {
        state.job.cancel();
    }
    exit
}

/// The fallible inner loop of [`connection_loop`]; a dead or stalled
/// writer propagates out as [`ConnExit`] and the caller cleans up.
fn connection_events(
    rx: &Receiver<ConnEvent>,
    tx: &Sender<ConnEvent>,
    sink: &FrameSink,
    shared: &Arc<Shared>,
    streams: &mut HashMap<u64, StreamState>,
) -> Result<(), ConnExit> {
    // A shutdown raced this connection's registration: wind down now
    // rather than waiting for an event that may never come.
    if shared.stop.load(Ordering::SeqCst) {
        return Ok(());
    }
    while let Ok(event) = rx.recv() {
        match event {
            ConnEvent::Request(Ok(Request::Ping)) => sink.send(&Frame::Pong {
                journal_hits: shared.journal_hits.load(Ordering::SeqCst),
                journal_misses: shared.journal_misses.load(Ordering::SeqCst),
            })?,
            ConnEvent::Request(Ok(Request::Shutdown)) => {
                sink.send(&Frame::Bye)?;
                // Don't begin_stop here: the caller does, after the
                // writer has flushed the `bye` (see `ConnExit::Stop`).
                return Err(ConnExit::Stop);
            }
            ConnEvent::Request(Ok(Request::Drain)) => {
                // Ack first: the drain frame must precede the `bye`
                // that a zero-job drain triggers immediately.
                let active = shared.active_jobs.load(Ordering::SeqCst);
                sink.send(&Frame::Draining {
                    active_jobs: active,
                })?;
                shared.begin_drain();
            }
            ConnEvent::Request(Ok(Request::Submit { plan, deadline_ms })) => {
                if let Err(detail) = validate_plan(&plan) {
                    sink.send(&Frame::Error {
                        code: ErrorCode::Rejected,
                        detail,
                        job: None,
                    })?;
                    continue;
                }
                let cap = shared.options.max_jobs_per_conn;
                if cap > 0 && streams.len() >= cap {
                    sink.send(&Frame::Rejected {
                        code: RejectCode::Saturated,
                        detail: format!("connection in-flight cap ({cap} jobs) reached"),
                        retry_after_ms: Some(retry_hint_ms(
                            shared.queued_runs.load(Ordering::SeqCst),
                        )),
                    })?;
                    continue;
                }
                let total_runs = plan.total_runs();
                if let Err(rejected) = shared.admit(total_runs) {
                    sink.send(&rejected)?;
                    continue;
                }
                let id = shared.next_job.fetch_add(1, Ordering::Relaxed);
                let cells = plan.cell_count();
                // Resolve the plan against the journal before any worker
                // sees it: hits stream below, only the delta is queued.
                let mut journal_keys = Vec::new();
                let mut hits: Vec<Option<Box<CellReport>>> = Vec::new();
                if let Some(journal) = &shared.journal {
                    let journal = journal.lock().expect("journal");
                    let epoch = engine_epoch();
                    for cell in 0..cells {
                        journal_keys.push(plan.cell_key(cell));
                        hits.push(match plan.cached_cell(&journal, epoch, cell) {
                            Ok(hit) => hit.map(Box::new),
                            Err(warning) => {
                                eprintln!("sg-serve: {warning}");
                                None
                            }
                        });
                    }
                }
                let cached: Vec<bool> = hits.iter().map(Option::is_some).collect();
                let cached_count = hits.iter().flatten().count();
                if shared.journal.is_some() {
                    shared
                        .journal_hits
                        .fetch_add(cached_count as u64, Ordering::SeqCst);
                    shared
                        .journal_misses
                        .fetch_add((cells - cached_count) as u64, Ordering::SeqCst);
                }
                let job = Arc::new(Job {
                    id,
                    plan,
                    deadline: deadline_ms
                        .map(|ms| Instant::now() + std::time::Duration::from_millis(ms)),
                    cancel: AtomicBool::new(false),
                    core: Mutex::new(JobCore {
                        next_cell: 0,
                        outstanding: 0,
                        done: cached_count,
                        cancelled: false,
                        deadline_hit: false,
                        terminal_sent: false,
                    }),
                    events: tx.clone(),
                    journal_keys,
                    cached,
                    shared: Arc::downgrade(shared),
                });
                sink.send(&Frame::Accepted {
                    job: id,
                    cells,
                    total_runs,
                })?;
                let mut state = StreamState {
                    job: Arc::clone(&job),
                    started: Instant::now(),
                    pending: BTreeMap::new(),
                    next_emit: 0,
                    emitted: 0,
                    cached: cached_count,
                    fingerprint: Fingerprint::new(),
                };
                for (index, hit) in hits.into_iter().enumerate() {
                    if let Some(cell) = hit {
                        state.pending.insert(index, cell);
                    }
                }
                state.emit_ready(id, sink)?;
                if cached_count == cells {
                    // Fully warm: no worker will ever touch this job, so
                    // the connection thread owns its terminal frame.
                    // Release before the summary send: both orders put
                    // the summary ahead of any drain-completion `bye`
                    // (frames leave through this thread's sink in call
                    // order), but this one cannot leak the admission
                    // budget if the send fails.
                    job.core.lock().expect("job core").terminal_sent = true;
                    shared.release(total_runs);
                    sink.send(&state.summary(id))?;
                } else {
                    streams.insert(id, state);
                    shared.enqueue(job);
                }
            }
            ConnEvent::Request(Ok(Request::Cancel { job })) => match streams.get(&job) {
                Some(state) => state.job.cancel(),
                None => sink.send(&Frame::Error {
                    code: ErrorCode::UnknownJob,
                    detail: format!("no active job {job} on this connection"),
                    job: Some(job),
                })?,
            },
            ConnEvent::Request(Err((code, detail))) => sink.send(&Frame::Error {
                code,
                detail,
                job: None,
            })?,
            ConnEvent::Gone => break,
            ConnEvent::Stopping => {
                let _ = sink.send(&Frame::Bye);
                break;
            }
            ConnEvent::Job(id, event) => {
                let Some(state) = streams.get_mut(&id) else {
                    continue; // stray event after the job's terminal frame
                };
                match event {
                    JobEvent::Cell { index, cell, last } => {
                        state.pending.insert(index, cell);
                        state.emit_ready(id, sink)?;
                        if last {
                            debug_assert!(state.pending.is_empty());
                            let summary = state.summary(id);
                            sink.send(&summary)?;
                            streams.remove(&id);
                        }
                    }
                    JobEvent::Cancelled => {
                        let cells_streamed = state.emitted;
                        sink.send(&Frame::Cancelled {
                            job: id,
                            cells_streamed,
                        })?;
                        streams.remove(&id);
                    }
                    JobEvent::DeadlineExceeded => {
                        let detail = format!(
                            "deadline exceeded after {} of {} cells; streamed cells remain valid",
                            state.emitted,
                            state.job.cell_count()
                        );
                        sink.send(&Frame::Error {
                            code: ErrorCode::DeadlineExceeded,
                            detail,
                            job: Some(id),
                        })?;
                        streams.remove(&id);
                    }
                    JobEvent::Failed { detail } => {
                        sink.send(&Frame::Error {
                            code: ErrorCode::JobFailed,
                            detail,
                            job: Some(id),
                        })?;
                        streams.remove(&id);
                    }
                }
            }
        }
    }
    Ok(())
}
