//! # sg-serve — the sweep service
//!
//! The reproduction's serving layer: a long-lived daemon that accepts
//! sweep grids ([`sg_analysis::SweepPlan`]) over newline-delimited JSON
//! — localhost TCP or a unix-domain socket — schedules them on a
//! persistent worker pool, and streams [`sg_analysis::CellReport`]s
//! back as cells complete, ending each job with a summary frame whose
//! `report_fingerprint` is **bit-identical** to what `SweepPlan::run`
//! produces for the same grid (the determinism contract CI's
//! `serve-e2e` job enforces).
//!
//! What makes this a service rather than a loop around the batch path:
//!
//! * **Warm pools across requests.** Each worker thread owns one
//!   [`sg_sim::RunArena`] for its entire life, so protocol instances and
//!   execution buffers recycled by PR 2's pooled executor stay warm from
//!   one request to the next.
//! * **Fair interleaving.** Jobs are scheduled round-robin at cell
//!   granularity; two concurrent grids make progress together, and each
//!   still yields exactly its solo results (coordinate-pure seeding).
//! * **Cancellation.** A `cancel` line stops a running grid within one
//!   scheduling quantum, mid-cell included.
//! * **Fault isolation.** Malformed frames get structured `error`
//!   answers; a worker panic fails one job, not the daemon (and costs
//!   only the panicked cell's pooled instances, not the arena).
//! * **Admission control.** Bounded job and run backlogs: a saturated
//!   daemon answers `rejected` with a deterministic `retry_after_ms`
//!   instead of queueing without limit, deadlines (`deadline_ms`) stop
//!   overdue jobs at the cancellation quantum, slow readers are shed
//!   from a bounded per-connection write queue, and `drain` (or
//!   SIGTERM) finishes accepted work before saying `bye` — see
//!   [`server`]'s "Overload behavior" notes and [`load`] for the
//!   harness that proves it.
//!
//! Quickstart (see `examples/sweep_service.rs` for the library-level
//! version):
//!
//! ```text
//! sg serve --port 7411 &
//! sg ping   --addr 127.0.0.1:7411
//! sg submit --addr 127.0.0.1:7411 --alg optimal-king --n 16 --t 5 --seeds 100
//! ```
//!
//! The wire protocol is specified in [`wire`] and summarized in
//! ROADMAP.md's conventions.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod load;
pub mod server;
pub mod wire;

pub use chaos::{ChaosProxy, ChaosSpec};
pub use client::{Client, JobHandle, RetryPolicy, ServeError, StreamedReport};
pub use load::{run_load, LoadOptions, LoadReport};
pub use server::{serve, Bind, Drainer, ServeOptions, ServerHandle};
pub use wire::{ErrorCode, Frame, RejectCode, Request, PROTOCOL};
