//! # sg-serve — the sweep service
//!
//! The reproduction's serving layer: a long-lived daemon that accepts
//! sweep grids ([`sg_analysis::SweepPlan`]) over newline-delimited JSON
//! — localhost TCP or a unix-domain socket — schedules them on a
//! persistent worker pool, and streams [`sg_analysis::CellReport`]s
//! back as cells complete, ending each job with a summary frame whose
//! `report_fingerprint` is **bit-identical** to what `SweepPlan::run`
//! produces for the same grid (the determinism contract CI's
//! `serve-e2e` job enforces).
//!
//! What makes this a service rather than a loop around the batch path:
//!
//! * **Warm pools across requests.** Each worker thread owns one
//!   [`sg_sim::RunArena`] for its entire life, so protocol instances and
//!   execution buffers recycled by PR 2's pooled executor stay warm from
//!   one request to the next.
//! * **Fair interleaving.** Jobs are scheduled round-robin at cell
//!   granularity; two concurrent grids make progress together, and each
//!   still yields exactly its solo results (coordinate-pure seeding).
//! * **Cancellation.** A `cancel` line stops a running grid within one
//!   scheduling quantum, mid-cell included.
//! * **Fault isolation.** Malformed frames get structured `error`
//!   answers; a worker panic fails one job, not the daemon.
//!
//! Quickstart (see `examples/sweep_service.rs` for the library-level
//! version):
//!
//! ```text
//! sg serve --port 7411 &
//! sg ping   --addr 127.0.0.1:7411
//! sg submit --addr 127.0.0.1:7411 --alg optimal-king --n 16 --t 5 --seeds 100
//! ```
//!
//! The wire protocol is specified in [`wire`] and summarized in
//! ROADMAP.md's conventions.

#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, JobHandle, ServeError, StreamedReport};
pub use server::{serve, Bind, ServeOptions, ServerHandle};
pub use wire::{ErrorCode, Frame, Request, PROTOCOL};
