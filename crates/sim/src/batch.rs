//! Lock-step batch execution: up to 64 runs per instruction.
//!
//! The scalar engine already packs one *round* into words — a binary
//! broadcast is a [`PackedBallots`](crate::PackedBallots) bit per sender.
//! This module lifts the same trick one level: all seeds of one sweep cell
//! execute **lock-step** in a structure-of-arrays layout, where a binary
//! broadcast becomes one `u64` per processor-slot spanning up to
//! [`MAX_BATCH_RUNS`] runs, majority tallies become full-width bitwise
//! ops across runs, and per-run divergence (early stop, differing fault
//! sets) is carried by an active-run mask.
//!
//! The division of labour mirrors the scalar engine:
//!
//! * this module owns the *substrate* — the [`BatchArena`] scratch space,
//!   the bit-plane counters ([`LaneCounts`]), and the [`run_batch_with`]
//!   driver that feeds each round's faulty-slot payloads from a
//!   [`BatchAdversary`];
//! * the *protocol semantics* live behind the [`BatchKernel`] trait,
//!   implemented in `sg-core` for the king and phase families (everything
//!   else takes the scalar fallback, per the `set_packed_broadcast`
//!   pattern).
//!
//! # The adversary side
//!
//! Fault injection is batch-aware too. A [`BatchAdversary`] materializes
//! every lane's fault set in one `corrupt_lanes` call, and — when its
//! [`BatchAdversary::vectorized`] flag opts in — classifies all faulty
//! payloads of a round directly into lane masks through
//! [`BatchAdversary::lies`], skipping per-lane payload interning and
//! view assembly entirely. Strategies that cannot vectorize (traced,
//! recording, tape, closure adversaries) ride the [`ScalarBridge`]: the
//! driver materializes per-lane [`AdversaryView`]s and calls each lane's
//! scalar [`Adversary`] in exactly the order the scalar engine would, so
//! the `sg-trace/1` call-order contract is untouched. The vector path is
//! *absent, never wrong*: both paths are bit-identical by construction.
//!
//! # Mixed-width kernels
//!
//! Gear-shifting families (`king-shift`, `dynamic-king`) run a tree
//! prefix whose payloads do not fit one bit per lane. Their kernels
//! implement [`BatchKernel::wide_round`]: lanes still in the prefix are
//! executed internally (per-lane scalar instances, reported back through
//! the `handled` mask), while lanes whose king tail has been seeded stay
//! on the narrow bitwise path. Lanes whose dynamic gear votes diverge
//! from the batch retire through the `deferred` mask and are re-run by
//! the caller on the scalar engine — again absent, never wrong.
//!
//! Per-run outputs are bit-identical to the scalar path by construction:
//! the adversary sees semantically equal views in the same call order,
//! tallies reproduce [`crate::PackedBallots`] classification exactly (first
//! value, `{0, 1}` only), and retired runs are frozen by the active mask
//! rather than removed, so late rounds cannot disturb them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::adversary::{Adversary, AdversaryView};
use crate::engine::{early_stopping_enabled, RunConfig};
use crate::id::{ProcessId, ProcessSet};
use crate::payload::Payload;
use crate::value::{Value, ValueDomain};

/// Whether sweep executors batch seeds of a cell into lock-step groups
/// (`true` by default). The CLI's `--no-batch` escape hatch clears it;
/// CI runs the benchmark sweep both ways and cross-checks the report
/// fingerprints.
static BATCH_RUNS: AtomicBool = AtomicBool::new(true);

/// Enables or disables lock-step run batching (default on). The toggle
/// is read once per batch, so a group of runs is always entirely batched
/// or entirely scalar.
pub fn set_batch_runs(enabled: bool) {
    BATCH_RUNS.store(enabled, Ordering::SeqCst);
}

/// Whether lock-step run batching is active.
pub fn batch_runs_enabled() -> bool {
    BATCH_RUNS.load(Ordering::SeqCst)
}

/// Whether batch executors may use the vectorized adversary path
/// ([`BatchAdversary::lies`]) for families that opt in (`true` by
/// default). The CLI's `--no-batch-adversary` escape hatch clears it,
/// forcing the per-lane [`ScalarBridge`] even for vector-capable
/// families; CI cross-checks the report fingerprints both ways.
static BATCH_ADVERSARIES: AtomicBool = AtomicBool::new(true);

/// Enables or disables the vectorized adversary path (default on). Like
/// [`set_batch_runs`], executors read it once per batch.
pub fn set_batch_adversaries(enabled: bool) {
    BATCH_ADVERSARIES.store(enabled, Ordering::SeqCst);
}

/// Whether the vectorized adversary path is active.
pub fn batch_adversaries_enabled() -> bool {
    BATCH_ADVERSARIES.load(Ordering::SeqCst)
}

/// Maximum runs per lock-step batch: one bit lane per run in a `u64`.
pub const MAX_BATCH_RUNS: usize = 64;

/// Bit planes for per-lane tallies: 7 planes count up to 127, enough for
/// any sender count at `n ≤ 64`.
const COUNT_PLANES: usize = 7;

/// A per-lane counter in bit-plane form: plane `p` holds bit `p` of each
/// lane's count. Adding a lane mask is a ripple-carry increment of every
/// set lane at once; comparisons walk the planes MSB-first.
///
/// # Examples
///
/// ```
/// use sg_sim::batch::LaneCounts;
///
/// let mut c = LaneCounts::default();
/// c.add(0b1011); // lanes 0,1,3 += 1
/// c.add(0b0011); // lanes 0,1   += 1
/// assert_eq!(c.ge(2), 0b0011);
/// assert_eq!(c.ge(1), 0b1011);
/// assert_eq!(c.ge(0), !0);
/// ```
#[derive(Clone, Copy, Default, Debug)]
pub struct LaneCounts {
    planes: [u64; COUNT_PLANES],
}

impl LaneCounts {
    /// Adds 1 to every lane set in `mask`.
    pub fn add(&mut self, mask: u64) {
        let mut carry = mask;
        for plane in self.planes.iter_mut() {
            if carry == 0 {
                break;
            }
            let sum = *plane ^ carry;
            carry &= *plane;
            *plane = sum;
        }
        debug_assert_eq!(carry, 0, "lane counter overflow");
    }

    /// Lanes whose count is `>= c`.
    pub fn ge(&self, c: usize) -> u64 {
        debug_assert!(c < (1 << COUNT_PLANES));
        let mut gt = 0u64;
        let mut eq = !0u64;
        for p in (0..COUNT_PLANES).rev() {
            if (c >> p) & 1 == 1 {
                eq &= self.planes[p];
            } else {
                gt |= eq & self.planes[p];
            }
        }
        gt | eq
    }

    /// Lanes where `self > other`.
    pub fn gt(&self, other: &LaneCounts) -> u64 {
        let mut gt = 0u64;
        let mut eq = !0u64;
        for p in (0..COUNT_PLANES).rev() {
            gt |= eq & self.planes[p] & !other.planes[p];
            eq &= !(self.planes[p] ^ other.planes[p]);
        }
        gt
    }

    /// Adopts `new`'s counts in lanes set in `active`, freezing the rest
    /// — the [`BatchKernel`] state-commit rule lifted to counters, for
    /// kernels that carry a tally across rounds.
    pub fn commit(&mut self, new: &LaneCounts, active: u64) {
        for (old, new) in self.planes.iter_mut().zip(new.planes.iter()) {
            *old = (new & active) | (*old & !active);
        }
    }

    /// The count in one lane (test/debug helper).
    pub fn lane(&self, lane: usize) -> usize {
        let mut c = 0usize;
        for (p, plane) in self.planes.iter().enumerate() {
            c |= (((plane >> lane) & 1) as usize) << p;
        }
        c
    }
}

/// The delivered network of one round, classified for binary tallies:
/// `one[j * n + i]` is the lane mask of runs in which the *first value*
/// of the payload delivered from sender `j` to recipient `i` is
/// `Value(1)`, and `zero[…]` likewise for `Value(0)`. Lanes set in
/// neither received `⊥`, an out-of-domain value, or nothing — exactly
/// the three-way classification [`PackedBallots`](crate::PackedBallots)
/// records and the per-payload fallback reproduces.
///
/// Self slots (`i == j`) are always clear, mirroring the scalar engine's
/// `clear(me)`; kernels substitute their own local state.
pub struct BatchNet<'a> {
    /// System size.
    pub n: usize,
    /// Lane masks of delivered first-value-one, sender-major.
    pub one: &'a [u64],
    /// Lane masks of delivered first-value-zero, sender-major.
    pub zero: &'a [u64],
}

impl BatchNet<'_> {
    /// Lane mask of runs delivering first value `1` from `j` to `i`.
    #[inline]
    pub fn one(&self, j: usize, i: usize) -> u64 {
        self.one[j * self.n + i]
    }

    /// Lane mask of runs delivering first value `0` from `j` to `i`.
    #[inline]
    pub fn zero(&self, j: usize, i: usize) -> u64 {
        self.zero[j * self.n + i]
    }
}

/// The lane-mask view a vectorized adversary sees in one round — the
/// batch counterpart of [`AdversaryView`]. Broadcast classification is
/// per slot: `present[j]` holds the lanes in which slot `j` sent at all
/// this round, `one[j]`/`zero[j]` the lanes in which the sent value
/// reads `1`/`0` (present lanes in neither sent `⊥`). Faulty slots are
/// classified too — their masks describe what the honest *shadow* of
/// that processor would have sent, exactly the
/// [`AdversaryView::shadow_of`] table of the scalar path.
pub struct LaneView<'a> {
    /// Current 1-based round.
    pub round: usize,
    /// The run's full static schedule length.
    pub total_rounds: usize,
    /// System size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// The distinguished source processor.
    pub source: ProcessId,
    /// The source's input value.
    pub source_value: Value,
    /// The agreement domain.
    pub domain: ValueDomain,
    /// Per-slot lane masks: lanes in which the slot broadcasts this round.
    pub present: &'a [u64],
    /// Per-slot lane masks: lanes in which the broadcast value reads `1`.
    pub one: &'a [u64],
    /// Per-slot lane masks: lanes in which the broadcast value reads `0`.
    pub zero: &'a [u64],
    /// Per-slot lane masks of fault status (`faulty[j]` = lanes in which
    /// slot `j` is faulty).
    pub faulty: &'a [u64],
    /// Each lane's fault set, in lane order.
    pub fault_sets: &'a [ProcessSet],
    /// Lanes the adversary must fill this round; all other lanes are
    /// retired or handled elsewhere and must be left untouched.
    pub active: u64,
}

/// Batch-aware fault injection: the adversary side of [`run_batch_with`].
///
/// One value of this trait drives *all* lanes of a batch. Two shapes
/// exist:
///
/// * [`ScalarBridge`] — wraps one scalar [`Adversary`] per lane and
///   replays the scalar engine's exact call order (`corrupt` once per
///   lane up front; per round, faulty senders ascending × recipients
///   ascending). This is the universal fallback and the path traced /
///   recording / tape adversaries must take.
/// * vectorized families (`sg-adversary`'s `BatchFamily`) — opt in via
///   [`BatchAdversary::vectorized`] and classify a whole round of faulty
///   payloads into lane masks in one [`BatchAdversary::lies`] call.
///
/// Either way, [`BatchAdversary::lane`] exposes the underlying scalar
/// adversary of a lane so mixed-width kernels (see
/// [`BatchKernel::wide_round`]) can collect real payload objects for
/// prefix rounds whose messages do not fit one bit.
pub trait BatchAdversary {
    /// Number of lanes (runs) this adversary drives, `1..=`[`MAX_BATCH_RUNS`].
    fn lanes(&self) -> usize;

    /// Materializes every lane's fault set: sets bit `lane` of
    /// `faulty[p]` for each corrupted processor `p` and pushes one
    /// [`ProcessSet`] per lane (lane order) onto `fault_sets`.
    ///
    /// Returns `false` — **without consuming any lane** — when a lane
    /// reports per-edge faults, which the word-per-slot layout cannot
    /// express; callers then re-run every lane on the scalar engine.
    /// (The scalar adversaries stay reusable: poolable lanes are
    /// reseeded for their scalar runs instead of being rebuilt.)
    fn corrupt_lanes(
        &mut self,
        n: usize,
        t: usize,
        source: ProcessId,
        faulty: &mut [u64],
        fault_sets: &mut Vec<ProcessSet>,
    ) -> bool;

    /// Whether this adversary fills rounds through [`BatchAdversary::lies`]
    /// (`true`) or per-lane scalar `payload` calls (`false`, the default).
    fn vectorized(&self) -> bool {
        false
    }

    /// Vector fault injection: classify every faulty slot's payload to
    /// every recipient directly into the delivered-network lane masks
    /// (`net_one[f * n + r]` / `net_zero[…]`), for lanes in
    /// `view.active` only. Lanes set in neither mask deliver `⊥` or
    /// nothing — the same three-way classification as [`BatchNet`].
    ///
    /// Only consulted when [`BatchAdversary::vectorized`] is `true`; the
    /// default is a no-op.
    fn lies(&mut self, view: &LaneView<'_>, net_one: &mut [u64], net_zero: &mut [u64]) {
        let _ = (view, net_one, net_zero);
    }

    /// The scalar adversary driving `lane` — the bridge for per-lane
    /// payload collection (non-vectorized rounds and kernel-internal
    /// wide rounds).
    fn lane(&mut self, lane: usize) -> &mut dyn Adversary;
}

/// The per-lane scalar bridge: one boxed [`Adversary`] per lane, called
/// in the scalar engine's exact order. See [`BatchAdversary`].
pub struct ScalarBridge<'a>(pub &'a mut [Box<dyn Adversary>]);

impl BatchAdversary for ScalarBridge<'_> {
    fn lanes(&self) -> usize {
        self.0.len()
    }

    fn corrupt_lanes(
        &mut self,
        n: usize,
        t: usize,
        source: ProcessId,
        faulty: &mut [u64],
        fault_sets: &mut Vec<ProcessSet>,
    ) -> bool {
        // Edge faults are declared up front (every in-tree adversary's
        // `has_edge_faults` is independent of `corrupt`), so a bailout
        // leaves all lanes unconsumed and reusable for the scalar re-run.
        if self.0.iter().any(|a| a.has_edge_faults()) {
            return false;
        }
        for (lane, adversary) in self.0.iter_mut().enumerate() {
            let set = adversary.corrupt(n, t, source);
            assert_eq!(set.universe(), n, "adversary corrupted the wrong universe");
            for p in set.iter() {
                faulty[p.index()] |= 1u64 << lane;
            }
            fault_sets.push(set);
        }
        true
    }

    fn lane(&mut self, lane: usize) -> &mut dyn Adversary {
        self.0[lane].as_mut()
    }
}

/// What a mixed-width kernel reports for one [`BatchKernel::wide_round`]:
/// which lanes it executed internally and which lanes must leave the
/// batch for the scalar engine.
#[derive(Clone, Copy, Default, Debug)]
pub struct WideRound {
    /// Lanes the kernel fully executed this round (outgoing, adversary,
    /// delivery, and accounting); the driver's narrow bitwise path skips
    /// them.
    pub handled: u64,
    /// Lanes that must retire to the scalar engine (for gear kernels:
    /// lanes whose correct processors' shift votes diverged, so the
    /// batch cannot keep a common schedule). The driver removes them
    /// from the active mask and marks their results
    /// [`BatchRunResult::deferred`].
    pub deferred: u64,
}

/// Protocol semantics for lock-step batch execution: the per-round hooks
/// a family implements so [`run_batch_with`] can drive up to 64 of its
/// runs with full-width bitwise ops. All lane-mask state updates must
/// freeze lanes outside `active` (`new = (active & computed) | (!active
/// & old)`) so early-stopped runs keep their retirement-time state.
pub trait BatchKernel {
    /// Rounds in the worst-case schedule (a hard ceiling; mixed-width
    /// kernels may retire lanes earlier through [`BatchKernel::finished`]).
    fn total_rounds(&self) -> usize;

    /// Resets all lane state for a fresh batch of `lanes` runs.
    fn reset(&mut self, lanes: usize);

    /// Local-computation charge per processor for `round` — must equal
    /// the scalar protocol's per-slot `ctx.charge` total, which the king
    /// family keeps uniform across slots. Kernels with non-uniform or
    /// internally accounted charges return 0 here and report through
    /// [`BatchKernel::lane_ops`] instead.
    fn charge(&self, round: usize) -> u64;

    /// Whether `round` emits a preferred-value snapshot (the events the
    /// stability analysis replays to compute lock-in rounds).
    fn snapshot_round(&self, round: usize) -> bool;

    /// Per-lane refinement of [`BatchKernel::snapshot_round`]: the lanes
    /// for which `round` emits a preference event. The default covers
    /// uniform-schedule kernels (all lanes or none); mixed-width kernels
    /// override it because prefix and tail lanes snapshot on different
    /// rounds.
    fn snapshot_lanes(&self, round: usize) -> u64 {
        if self.snapshot_round(round) {
            !0
        } else {
            0
        }
    }

    /// Executes the non-bitwise part of `round` for kernels with
    /// mixed-width schedules (see [`WideRound`]); the default handles
    /// nothing, which keeps uniform kernels entirely on the narrow path.
    ///
    /// Implementations receive the batch's fault-lane tables and the
    /// [`BatchAdversary`] so they can collect per-lane payloads through
    /// [`BatchAdversary::lane`] in the scalar call order.
    fn wide_round(
        &mut self,
        round: usize,
        config: &RunConfig,
        adversary: &mut dyn BatchAdversary,
        fault_sets: &[ProcessSet],
        faulty: &[u64],
        active: u64,
    ) -> WideRound {
        let _ = (round, config, adversary, fault_sets, faulty, active);
        WideRound::default()
    }

    /// Lanes whose (possibly dynamically shortened) schedule is complete
    /// after `round` — the batch counterpart of a unanimous
    /// [`GearAction::Finished`](crate::GearAction) vote. The driver
    /// retires them with `rounds_used = round`. Default: none (uniform
    /// kernels end at [`BatchKernel::total_rounds`]).
    fn finished(&self, round: usize) -> u64 {
        let _ = round;
        0
    }

    /// Classifies every slot's broadcast for `round` into lane masks:
    /// `present[j]` — lanes in which slot `j` sends at all; `one`/`zero`
    /// — lanes in which the sent value is `1`/`0` (present lanes in
    /// neither send `⊥`). Slots are classified independently of fault
    /// status: the engine routes a faulty slot's broadcast to the shadow
    /// table, exactly like the scalar path. Lanes handled by
    /// [`BatchKernel::wide_round`] must be left clear.
    fn outgoing(&mut self, round: usize, present: &mut [u64], one: &mut [u64], zero: &mut [u64]);

    /// Applies one delivered round to all lane state, updating only
    /// lanes in `active`.
    fn deliver(&mut self, round: usize, net: &BatchNet<'_>, active: u64);

    /// Lanes in which `slot` currently reports ready-to-decide.
    fn ready(&self, slot: usize) -> u64;

    /// Lanes in which `slot`'s current preferred value is `1`.
    fn current_one(&self, slot: usize) -> u64;

    /// Lanes in which `slot` would decide `1` if the run ended now.
    fn decision_one(&self, slot: usize) -> u64;

    /// Honest wire bits accounted internally by the kernel for `lane`
    /// (mixed-width kernels: the prefix's multi-value payloads), added to
    /// the driver's narrow-path accounting at finalize. Default 0.
    fn lane_bits(&self, lane: usize) -> u64 {
        let _ = lane;
        0
    }

    /// Local-computation ops accounted internally by the kernel for
    /// `lane` (the maximum over processor slots, like the scalar
    /// engine's `max_local_ops`), added at finalize. Default 0.
    fn lane_ops(&self, lane: usize) -> u64 {
        let _ = lane;
        0
    }

    /// Fault discoveries recorded for `lane` (the count of `Discovered`
    /// trace events a scalar run would emit across correct processors).
    /// Default 0: the king and phase families discover nothing.
    fn lane_discoveries(&self, lane: usize) -> u64 {
        let _ = lane;
        0
    }
}

/// One recorded preferred-value snapshot: the round, each slot's
/// preferred-value lane mask at that point, and which lanes actually
/// emitted a preference event this round (retired lanes and lanes on a
/// different sub-schedule must not see it).
struct Snapshot {
    round: usize,
    current: Vec<u64>,
    lanes: u64,
}

/// Per-run results of a lock-step batch, in lane order. Field semantics
/// match the scalar [`Outcome`](crate::Outcome)-derived sweep sample
/// exactly.
#[derive(Clone, Copy, Default, Debug)]
pub struct BatchRunResult {
    /// Whether all correct processors decided the same value.
    pub agreement: bool,
    /// Rounds actually executed.
    pub rounds_used: usize,
    /// Whether the run stopped before its static schedule.
    pub early_stopped: bool,
    /// System lock-in round (0 when tracing is off, matching the scalar
    /// path's empty-trace analysis).
    pub lock_in: usize,
    /// Total honest bits put on the wire.
    pub total_bits: u64,
    /// Maximum local computation charged to any one processor.
    pub max_local_ops: u64,
    /// Fault discoveries across correct processors (0 when tracing is
    /// off, and always 0 for the discovery-free king/phase families).
    pub discoveries: u64,
    /// This lane left the batch mid-run (diverging gear votes — see
    /// [`WideRound::deferred`]); every other field is meaningless and the
    /// caller must re-run the lane's seed on the scalar engine.
    pub deferred: bool,
}

/// Reusable scratch for [`run_batch_with`] — the batch-path sibling of
/// the scalar [`RunArena`](crate::RunArena). Holding one per worker
/// thread keeps the steady-state round loop allocation-free.
#[derive(Default)]
pub struct BatchArena {
    // Per-slot broadcast classification for the current round.
    present: Vec<u64>,
    one: Vec<u64>,
    zero: Vec<u64>,
    // Delivered network, sender-major `n × n` lane masks.
    net_one: Vec<u64>,
    net_zero: Vec<u64>,
    // Faulty lane mask per slot, and per-lane fault sets.
    faulty: Vec<u64>,
    fault_sets: Vec<ProcessSet>,
    // Adversary-view scratch, refilled per lane per round.
    view_honest: Vec<Option<Arc<Payload>>>,
    view_shadow: Vec<Option<Arc<Payload>>>,
    // Preferred-value snapshots for the lock-in walk.
    snapshots: Vec<Snapshot>,
    // Per-lane accounting.
    total_bits: Vec<u64>,
    ops: Vec<u64>,
    rounds_used: Vec<usize>,
    early_stopped: Vec<bool>,
    results: Vec<BatchRunResult>,
}

impl BatchArena {
    /// A fresh arena; buffers grow on first use and are recycled after.
    pub fn new() -> Self {
        BatchArena::default()
    }

    /// The per-run results of the most recent [`run_batch_with`] call,
    /// in lane (seed) order.
    pub fn results(&self) -> &[BatchRunResult] {
        &self.results
    }

    fn reset(&mut self, n: usize, lanes: usize) {
        for buf in [
            &mut self.present,
            &mut self.one,
            &mut self.zero,
            &mut self.faulty,
        ] {
            buf.clear();
            buf.resize(n, 0);
        }
        for buf in [&mut self.net_one, &mut self.net_zero] {
            buf.clear();
            buf.resize(n * n, 0);
        }
        self.fault_sets.clear();
        self.view_honest.clear();
        self.view_honest.resize(n, None);
        self.view_shadow.clear();
        self.view_shadow.resize(n, None);
        self.snapshots.clear();
        for buf in [&mut self.total_bits, &mut self.ops] {
            buf.clear();
            buf.resize(lanes, 0);
        }
        self.rounds_used.clear();
        self.rounds_used.resize(lanes, 0);
        self.early_stopped.clear();
        self.early_stopped.resize(lanes, false);
        self.results.clear();
        self.results.resize(lanes, BatchRunResult::default());
    }
}

/// The three interned wire payloads a binary-domain kernel broadcast can
/// classify into, shared with the scalar engine's interning table so
/// adversaries see pointer-equal payloads either way.
fn wire_payloads() -> (Arc<Payload>, Arc<Payload>, Arc<Payload>) {
    (
        Payload::single(Value(1)).into_shared(),
        Payload::single(Value(0)).into_shared(),
        Payload::single(Value(u16::MAX)).into_shared(),
    )
}

/// [`run_batch_with`] over one scalar [`Adversary`] per lane — the
/// universal entry point (and the only one the scalar bridge needs).
///
/// # Panics
///
/// Panics if `adversaries` is empty or longer than [`MAX_BATCH_RUNS`],
/// or if a lane's `corrupt` returns a set over the wrong universe.
pub fn run_batch(
    arena: &mut BatchArena,
    config: &RunConfig,
    kernel: &mut dyn BatchKernel,
    adversaries: &mut [Box<dyn Adversary>],
) -> bool {
    run_batch_with(arena, config, kernel, &mut ScalarBridge(adversaries))
}

/// Executes up to [`MAX_BATCH_RUNS`] runs of one configuration in
/// lock-step. Results land in [`BatchArena::results`], in lane order;
/// lanes flagged [`BatchRunResult::deferred`] left the batch mid-run and
/// must be re-run on the scalar engine.
///
/// Returns `false` — leaving every lane's scalar adversary unconsumed
/// and the arena results empty — if any lane's adversary reports edge
/// faults, which the word-per-slot layout cannot express; callers then
/// take the scalar path with the same (reseeded) adversaries.
///
/// # Panics
///
/// Panics if the adversary drives zero or more than [`MAX_BATCH_RUNS`]
/// lanes, or corrupts the wrong universe.
pub fn run_batch_with(
    arena: &mut BatchArena,
    config: &RunConfig,
    kernel: &mut dyn BatchKernel,
    adversary: &mut dyn BatchAdversary,
) -> bool {
    let n = config.n;
    let lanes = adversary.lanes();
    assert!(
        (1..=MAX_BATCH_RUNS).contains(&lanes),
        "1..=64 lanes per batch"
    );
    arena.reset(n, lanes);

    // Materialize every lane's fault set up front, exactly once per run
    // — the same once-per-run contract the scalar engine honours. An
    // edge-fault bailout happens before any lane is consumed.
    if !adversary.corrupt_lanes(
        n,
        config.t,
        config.source,
        &mut arena.faulty,
        &mut arena.fault_sets,
    ) {
        return false;
    }
    debug_assert_eq!(arena.fault_sets.len(), lanes, "one fault set per lane");

    let total_rounds = kernel.total_rounds();
    kernel.reset(lanes);
    let early = early_stopping_enabled();
    let (p_one, p_zero, p_bot) = wire_payloads();
    let lane_mask = |lane: usize| 1u64 << lane;
    let all_lanes: u64 = if lanes == MAX_BATCH_RUNS {
        !0
    } else {
        (1u64 << lanes) - 1
    };
    let mut active = all_lanes;
    let mut deferred: u64 = 0;
    let src = config.source.index();

    let mut round = 0usize;
    while active != 0 && round < total_rounds {
        round += 1;

        // Mixed-width kernels run their wide (non-bitwise) lanes first;
        // uniform kernels handle nothing and defer nothing.
        let wide = kernel.wide_round(
            round,
            config,
            adversary,
            &arena.fault_sets,
            &arena.faulty,
            active,
        );
        let newly_deferred = wide.deferred & active;
        deferred |= newly_deferred;
        active &= !newly_deferred;
        if active == 0 {
            break;
        }
        let narrow = active & !wide.handled;

        if narrow != 0 {
            for buf in [&mut arena.present, &mut arena.one, &mut arena.zero] {
                buf.iter_mut().for_each(|w| *w = 0);
            }
            kernel.outgoing(round, &mut arena.present, &mut arena.one, &mut arena.zero);

            // Accounting: honest bits on the wire (every narrow-path
            // payload is one value of one bit, fanned out to n − 1
            // recipients) and the uniform per-slot local-op charge.
            let charge = kernel.charge(round);
            for j in 0..n {
                let mut w = arena.present[j] & !arena.faulty[j] & narrow;
                while w != 0 {
                    let lane = w.trailing_zeros() as usize;
                    w &= w - 1;
                    arena.total_bits[lane] += (n as u64) - 1;
                }
            }
            if charge != 0 {
                let mut w = narrow;
                while w != 0 {
                    let lane = w.trailing_zeros() as usize;
                    w &= w - 1;
                    arena.ops[lane] += charge;
                }
            }

            for buf in [&mut arena.net_one, &mut arena.net_zero] {
                buf.iter_mut().for_each(|w| *w = 0);
            }
            if adversary.vectorized() {
                // The vector path: one call classifies every faulty
                // slot's payloads for all narrow lanes at once.
                let view = LaneView {
                    round,
                    total_rounds,
                    n,
                    t: config.t,
                    source: config.source,
                    source_value: config.source_value,
                    domain: config.domain,
                    present: &arena.present,
                    one: &arena.one,
                    zero: &arena.zero,
                    faulty: &arena.faulty,
                    fault_sets: &arena.fault_sets,
                    active: narrow,
                };
                adversary.lies(&view, &mut arena.net_one, &mut arena.net_zero);
            } else {
                // The rushing adversary bridge: per active lane,
                // materialize the view (interned payloads, honest and
                // shadow tables split by that lane's fault set) and
                // collect every faulty sender's payloads in the scalar
                // call order — faulty senders ascending, recipients
                // ascending, self skipped.
                let mut w = narrow;
                while w != 0 {
                    let lane = w.trailing_zeros() as usize;
                    w &= w - 1;
                    if arena.fault_sets[lane].is_empty() {
                        continue;
                    }
                    let bit = lane_mask(lane);
                    for j in 0..n {
                        let payload = if arena.present[j] & bit == 0 {
                            None
                        } else if arena.one[j] & bit != 0 {
                            Some(p_one.clone())
                        } else if arena.zero[j] & bit != 0 {
                            Some(p_zero.clone())
                        } else {
                            Some(p_bot.clone())
                        };
                        if arena.faulty[j] & bit != 0 {
                            arena.view_honest[j] = None;
                            arena.view_shadow[j] = payload;
                        } else {
                            arena.view_honest[j] = payload;
                            arena.view_shadow[j] = None;
                        }
                    }
                    let view = AdversaryView {
                        round,
                        total_rounds,
                        n,
                        t: config.t,
                        source: config.source,
                        source_value: config.source_value,
                        domain: config.domain,
                        faulty: &arena.fault_sets[lane],
                        honest_broadcast: &arena.view_honest,
                        shadow_broadcast: &arena.view_shadow,
                        sigs: None,
                    };
                    let scalar = adversary.lane(lane);
                    for f in arena.fault_sets[lane].iter() {
                        for r in 0..n {
                            if r == f.index() {
                                continue;
                            }
                            let payload = scalar.payload(f, ProcessId(r), &view);
                            match payload.value_at(0) {
                                Some(Value(1)) => arena.net_one[f.index() * n + r] |= bit,
                                Some(Value(0)) => arena.net_zero[f.index() * n + r] |= bit,
                                _ => {}
                            }
                        }
                    }
                }
            }

            // Merge honest broadcasts into the delivered network: in
            // lanes where a slot is correct its classified outgoing
            // reaches every recipient unchanged; faulty lanes already
            // carry the adversary's per-recipient rows.
            for j in 0..n {
                let honest_one = arena.one[j] & arena.present[j] & !arena.faulty[j];
                let honest_zero = arena.zero[j] & arena.present[j] & !arena.faulty[j];
                for i in 0..n {
                    if i == j {
                        arena.net_one[j * n + i] = 0;
                        arena.net_zero[j * n + i] = 0;
                    } else {
                        arena.net_one[j * n + i] |= honest_one;
                        arena.net_zero[j * n + i] |= honest_zero;
                    }
                }
            }

            let net = BatchNet {
                n,
                one: &arena.net_one,
                zero: &arena.net_zero,
            };
            kernel.deliver(round, &net, narrow);
        }

        if config.trace {
            let snap_lanes = kernel.snapshot_lanes(round) & active;
            if snap_lanes != 0 {
                let current: Vec<u64> = (0..n).map(|i| kernel.current_one(i)).collect();
                arena.snapshots.push(Snapshot {
                    round,
                    current,
                    lanes: snap_lanes,
                });
            }
        }

        // Early stop: retire lanes in which every correct processor is
        // ready. The source processor holds the input and is always
        // ready; faulty slots are exempt per lane.
        if early && round < total_rounds {
            let mut stop = active;
            for i in 0..n {
                if i == src {
                    continue;
                }
                stop &= kernel.ready(i) | arena.faulty[i];
            }
            let mut w = stop;
            while w != 0 {
                let lane = w.trailing_zeros() as usize;
                w &= w - 1;
                arena.rounds_used[lane] = round;
                arena.early_stopped[lane] = true;
            }
            active &= !stop;
        }

        // Dynamic-schedule retirement: lanes whose (shortened) gear
        // schedule completed this round — the scalar engine's unanimous
        // `Finished` break, per lane.
        let fin = kernel.finished(round) & active;
        if fin != 0 {
            let mut w = fin;
            while w != 0 {
                let lane = w.trailing_zeros() as usize;
                w &= w - 1;
                arena.rounds_used[lane] = round;
                arena.early_stopped[lane] = round < total_rounds;
            }
            active &= !fin;
        }
    }
    {
        let mut w = active;
        while w != 0 {
            let lane = w.trailing_zeros() as usize;
            w &= w - 1;
            arena.rounds_used[lane] = total_rounds;
        }
    }

    // Finalize per lane: decisions, agreement, and the lock-in walk over
    // the recorded snapshots — the same per-processor candidate scan the
    // stability analysis performs on a scalar trace. Deferred lanes are
    // only marked; their seeds re-run on the scalar engine.
    let decisions: Vec<u64> = (0..n).map(|i| kernel.decision_one(i)).collect();
    for lane in 0..lanes {
        let bit = lane_mask(lane);
        if deferred & bit != 0 {
            arena.results[lane] = BatchRunResult {
                deferred: true,
                ..BatchRunResult::default()
            };
            continue;
        }
        let faulty = &arena.fault_sets[lane];
        let mut agreement = true;
        let mut seen: Option<bool> = None;
        let mut lock_in = 0usize;
        for i in 0..n {
            if faulty.contains(ProcessId(i)) {
                continue;
            }
            let d = decisions[i] & bit != 0;
            match seen {
                None => seen = Some(d),
                Some(prev) => agreement &= prev == d,
            }
            if config.trace {
                let mut candidate: Option<usize> = None;
                let mut any = false;
                for snap in &arena.snapshots {
                    if snap.lanes & bit == 0 {
                        continue;
                    }
                    any = true;
                    if (snap.current[i] & bit != 0) != d {
                        candidate = None;
                    } else if candidate.is_none() {
                        candidate = Some(snap.round);
                    }
                }
                if any {
                    lock_in = lock_in.max(candidate.unwrap_or(arena.rounds_used[lane]));
                }
            }
        }
        arena.results[lane] = BatchRunResult {
            agreement,
            rounds_used: arena.rounds_used[lane],
            early_stopped: arena.early_stopped[lane],
            lock_in,
            total_bits: arena.total_bits[lane] + kernel.lane_bits(lane),
            max_local_ops: arena.ops[lane] + kernel.lane_ops(lane),
            discoveries: if config.trace {
                kernel.lane_discoveries(lane)
            } else {
                0
            },
            deferred: false,
        };
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts_add_and_compare() {
        let mut a = LaneCounts::default();
        for _ in 0..11 {
            a.add(0b01);
        }
        for _ in 0..7 {
            a.add(0b10);
        }
        assert_eq!(a.lane(0), 11);
        assert_eq!(a.lane(1), 7);
        assert_eq!(a.ge(8), 0b01);
        assert_eq!(a.ge(7), 0b11);
        assert_eq!(a.ge(12) & 0b11, 0);

        let mut b = LaneCounts::default();
        for _ in 0..9 {
            b.add(0b11);
        }
        // lane 0: 11 > 9, lane 1: 7 < 9.
        assert_eq!(a.gt(&b) & 0b11, 0b01);
        assert_eq!(b.gt(&a) & 0b11, 0b10);
        assert_eq!(a.gt(&a), 0);
    }

    #[test]
    fn lane_counts_ge_zero_is_universal() {
        let c = LaneCounts::default();
        assert_eq!(c.ge(0), !0);
        assert_eq!(c.ge(1), 0);
    }

    #[test]
    fn batch_toggle_round_trips() {
        assert!(batch_runs_enabled());
        set_batch_runs(false);
        assert!(!batch_runs_enabled());
        set_batch_runs(true);
        assert!(batch_runs_enabled());
    }

    #[test]
    fn batch_adversary_toggle_round_trips() {
        assert!(batch_adversaries_enabled());
        set_batch_adversaries(false);
        assert!(!batch_adversaries_enabled());
        set_batch_adversaries(true);
        assert!(batch_adversaries_enabled());
    }

    #[test]
    fn scalar_bridge_bails_out_before_consuming_any_lane() {
        use crate::adversary::NoFaults;

        /// A corrupt-counting adversary that reports edge faults.
        struct Edgy {
            corrupted: usize,
        }
        impl Adversary for Edgy {
            fn name(&self) -> String {
                "edgy".into()
            }
            fn corrupt(&mut self, n: usize, _t: usize, _source: ProcessId) -> ProcessSet {
                self.corrupted += 1;
                ProcessSet::new(n)
            }
            fn payload(
                &mut self,
                _sender: ProcessId,
                _recipient: ProcessId,
                _view: &AdversaryView<'_>,
            ) -> Payload {
                Payload::Missing
            }
            fn has_edge_faults(&self) -> bool {
                true
            }
        }

        let mut lanes: Vec<Box<dyn Adversary>> =
            vec![Box::new(NoFaults), Box::new(Edgy { corrupted: 0 })];
        let mut bridge = ScalarBridge(&mut lanes);
        let mut faulty = vec![0u64; 4];
        let mut sets = Vec::new();
        assert!(!bridge.corrupt_lanes(4, 1, ProcessId(0), &mut faulty, &mut sets));
        // The bailout consumed nothing: no fault sets pushed, no corrupt
        // calls issued — every lane is reusable for the scalar re-run.
        assert!(sets.is_empty());
        assert!(faulty.iter().all(|&w| w == 0));
    }
}
