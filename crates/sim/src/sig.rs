//! Simulated unforgeable signatures.
//!
//! The paper's algorithms are *unauthenticated*, but it cites the
//! authenticated algorithm of Dolev and Strong (1983), which we provide as
//! a baseline. Rather than pull in real cryptography, the simulator plays
//! the role of a trusted signature oracle: a signature chain is valid only
//! if every extension was actually performed through [`SigRegistry`], so a
//! faulty processor can sign anything *as itself* but can never forge
//! another processor's signature — exactly the property the authenticated
//! model needs (see DESIGN.md §5, Substitutions).

use std::collections::HashMap;

use crate::id::ProcessId;
use crate::value::Value;

/// A value together with a chain of signatures over it.
///
/// A relay `(v, [p₁, …, p_k])` means "p₁ signed v, then p₂ signed that,
/// …". The `token` is the registry's proof that the chain was built
/// legitimately; it is opaque and meaningless without the registry.
#[derive(Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct SignedRelay {
    /// The signed value.
    pub value: Value,
    /// Signers, outermost last.
    pub chain: Vec<ProcessId>,
    token: u64,
}

impl SignedRelay {
    /// The number of signatures on the chain.
    pub fn depth(&self) -> usize {
        self.chain.len()
    }

    /// Message-length cost in bits: the value plus one simulated
    /// fixed-width signature per chain entry.
    ///
    /// We charge [`SIG_BITS`] per signature, a conventional constant so
    /// that authenticated message-length comparisons have a concrete unit.
    pub fn bits(&self, bits_per_value: u64) -> u64 {
        bits_per_value + self.chain.len() as u64 * SIG_BITS
    }
}

/// Simulated width of one signature in bits.
pub const SIG_BITS: u64 = 64;

/// The trusted signature oracle.
///
/// All signing and verification flows through one registry per execution.
/// Chains are keyed by `(value, chain)`; a relay is valid iff the registry
/// issued its token for exactly that key.
///
/// # Examples
///
/// ```
/// use sg_sim::{ProcessId, Value};
/// use sg_sim::sig::SigRegistry;
///
/// let mut reg = SigRegistry::new();
/// let r0 = reg.originate(ProcessId(0), Value(1));
/// let r1 = reg.extend(&r0, ProcessId(2)).expect("valid parent");
/// assert!(reg.is_valid(&r1));
/// assert_eq!(r1.chain, vec![ProcessId(0), ProcessId(2)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SigRegistry {
    issued: HashMap<(Value, Vec<ProcessId>), u64>,
    next_token: u64,
}

impl SigRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SigRegistry::default()
    }

    /// Signs `value` as `signer`, starting a fresh chain.
    pub fn originate(&mut self, signer: ProcessId, value: Value) -> SignedRelay {
        let chain = vec![signer];
        let token = self.issue(value, chain.clone());
        SignedRelay {
            value,
            chain,
            token,
        }
    }

    /// Extends a valid relay with `signer`'s signature.
    ///
    /// Returns `None` if `relay` is not valid (a forgery attempt) or if
    /// `signer` already appears on the chain (re-signing is idempotent in
    /// Dolev–Strong and disallowed here to keep chains minimal).
    pub fn extend(&mut self, relay: &SignedRelay, signer: ProcessId) -> Option<SignedRelay> {
        if !self.is_valid(relay) || relay.chain.contains(&signer) {
            return None;
        }
        let mut chain = relay.chain.clone();
        chain.push(signer);
        let token = self.issue(relay.value, chain.clone());
        Some(SignedRelay {
            value: relay.value,
            chain,
            token,
        })
    }

    /// Whether `relay` was built legitimately through this registry.
    pub fn is_valid(&self, relay: &SignedRelay) -> bool {
        self.issued
            .get(&(relay.value, relay.chain.clone()))
            .is_some_and(|&tok| tok == relay.token)
    }

    fn issue(&mut self, value: Value, chain: Vec<ProcessId>) -> u64 {
        // Issuing the same (value, chain) twice returns the same token, so
        // two honest relays of the same chain compare equal.
        if let Some(&tok) = self.issued.get(&(value, chain.clone())) {
            return tok;
        }
        let tok = self.next_token;
        self.next_token += 1;
        self.issued.insert((value, chain), tok);
        tok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forged_token_is_invalid() {
        let mut reg = SigRegistry::new();
        let real = reg.originate(ProcessId(1), Value(1));
        let forged = SignedRelay {
            value: Value(0),
            chain: vec![ProcessId(0)],
            token: real.token,
        };
        assert!(!reg.is_valid(&forged));
    }

    #[test]
    fn extend_requires_valid_parent() {
        let mut reg = SigRegistry::new();
        let fake = SignedRelay {
            value: Value(1),
            chain: vec![ProcessId(0)],
            token: 999,
        };
        assert!(reg.extend(&fake, ProcessId(1)).is_none());
    }

    #[test]
    fn extend_rejects_duplicate_signer() {
        let mut reg = SigRegistry::new();
        let r = reg.originate(ProcessId(0), Value(1));
        assert!(reg.extend(&r, ProcessId(0)).is_none());
    }

    #[test]
    fn reissue_is_idempotent() {
        let mut reg = SigRegistry::new();
        let a = reg.originate(ProcessId(0), Value(1));
        let b = reg.originate(ProcessId(0), Value(1));
        assert_eq!(a, b);
    }

    #[test]
    fn bits_account_for_chain() {
        let mut reg = SigRegistry::new();
        let r0 = reg.originate(ProcessId(0), Value(1));
        let r1 = reg.extend(&r0, ProcessId(1)).unwrap();
        assert_eq!(r0.bits(1), 1 + SIG_BITS);
        assert_eq!(r1.bits(1), 1 + 2 * SIG_BITS);
    }
}
